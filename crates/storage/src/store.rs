//! The store: named B-tree keyspaces with WAL durability and snapshots.
//!
//! Concurrency model: one `parking_lot::Mutex` around the whole store. The
//! reputation server's write volume (votes, comments, registrations) is
//! modest and every request touches several trees transactionally, so a
//! single lock is both correct and simpler than per-tree latching; the D10
//! throughput benchmarks measure exactly this configuration.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::ops::Bound;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::batch::{BatchOp, WriteBatch};
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::wal::Wal;

/// A tree (keyspace) name. Plain `&str` newtype used to make call sites
/// self-documenting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeName(pub &'static str);

impl std::fmt::Display for TreeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

type Tree = BTreeMap<Vec<u8>, Vec<u8>>;

struct Inner {
    trees: BTreeMap<String, Tree>,
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    ops_since_compaction: u64,
}

/// Counters exposed for the D10 benchmarks and operational visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of trees.
    pub trees: usize,
    /// Total number of live keys across all trees.
    pub keys: usize,
    /// Batches applied since the store was opened.
    pub batches_applied: u64,
    /// Operations applied since the last compaction.
    pub ops_since_compaction: u64,
    /// Current WAL length in bytes (0 for in-memory stores).
    pub wal_bytes: u64,
}

/// An embedded key-value store with named trees.
pub struct Store {
    inner: Mutex<Inner>,
    batches_applied: Mutex<u64>,
}

const SNAPSHOT_FILE: &str = "SNAPSHOT";
const WAL_FILE: &str = "WAL";
const SNAPSHOT_MAGIC: &[u8; 8] = b"SREPSNP1";

impl Store {
    /// Open a durable store rooted at `dir`, creating it if absent. Loads
    /// the last snapshot and replays the WAL on top.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut trees = Self::load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        for payload in Wal::replay(dir.join(WAL_FILE))? {
            let batch = WriteBatch::decode_from_bytes(&payload)?;
            Self::apply_to_trees(&mut trees, &batch);
        }
        let wal = Wal::open(dir.join(WAL_FILE))?;
        Ok(Store {
            inner: Mutex::new(Inner {
                trees,
                wal: Some(wal),
                dir: Some(dir),
                ops_since_compaction: 0,
            }),
            batches_applied: Mutex::new(0),
        })
    }

    /// Open a volatile store with no disk backing. API-identical to a
    /// durable store; used by the agent simulations.
    pub fn in_memory() -> Self {
        Store {
            inner: Mutex::new(Inner {
                trees: BTreeMap::new(),
                wal: None,
                dir: None,
                ops_since_compaction: 0,
            }),
            batches_applied: Mutex::new(0),
        }
    }

    /// Apply `batch` atomically: journal first, then mutate memory.
    pub fn apply(&self, batch: &WriteBatch) -> StorageResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(&batch.encode_to_bytes())?;
            wal.flush()?;
        }
        Self::apply_to_trees(&mut inner.trees, batch);
        inner.ops_since_compaction += batch.len() as u64;
        *self.batches_applied.lock() += 1;
        Ok(())
    }

    /// Single-key put (one-op batch).
    pub fn put(
        &self,
        tree: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
    ) -> StorageResult<()> {
        let mut b = WriteBatch::new();
        b.put(tree, key, value);
        self.apply(&b)
    }

    /// Single-key delete (one-op batch).
    pub fn delete(&self, tree: &str, key: impl Into<Vec<u8>>) -> StorageResult<()> {
        let mut b = WriteBatch::new();
        b.delete(tree, key);
        self.apply(&b)
    }

    /// Fetch a value. Unknown trees read as empty.
    pub fn get(&self, tree: &str, key: &[u8]) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        inner.trees.get(tree).and_then(|t| t.get(key).cloned())
    }

    /// True if `key` exists in `tree`.
    pub fn contains(&self, tree: &str, key: &[u8]) -> bool {
        let inner = self.inner.lock();
        inner.trees.get(tree).is_some_and(|t| t.contains_key(key))
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, tree: &str, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.lock();
        let Some(t) = inner.trees.get(tree) else { return Vec::new() };
        t.range::<Vec<u8>, _>((Bound::Included(&prefix.to_vec()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All pairs in `tree`, in key order.
    pub fn scan_all(&self, tree: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.scan_prefix(tree, &[])
    }

    /// Number of keys in `tree` (0 for unknown trees).
    pub fn tree_len(&self, tree: &str) -> usize {
        let inner = self.inner.lock();
        inner.trees.get(tree).map_or(0, BTreeMap::len)
    }

    /// Names of all trees that have ever been written.
    pub fn tree_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        inner.trees.keys().cloned().collect()
    }

    /// fsync the WAL (no-op in memory).
    pub fn sync(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if let Some(wal) = inner.wal.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL.
    ///
    /// The snapshot is written to a temp file and atomically renamed, so a
    /// crash during compaction leaves the previous snapshot + WAL intact.
    pub fn compact(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let Some(dir) = inner.dir.clone() else { return Ok(()) };

        let bytes = Self::encode_snapshot(&inner.trees);
        let tmp = dir.join("SNAPSHOT.tmp");
        let final_path = dir.join(SNAPSHOT_FILE);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        if let Some(wal) = inner.wal.as_mut() {
            wal.truncate()?;
        }
        inner.ops_since_compaction = 0;
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            trees: inner.trees.len(),
            keys: inner.trees.values().map(BTreeMap::len).sum(),
            batches_applied: *self.batches_applied.lock(),
            ops_since_compaction: inner.ops_since_compaction,
            wal_bytes: inner.wal.as_ref().map_or(0, Wal::len_bytes),
        }
    }

    fn apply_to_trees(trees: &mut BTreeMap<String, Tree>, batch: &WriteBatch) {
        for op in batch.ops() {
            match op {
                BatchOp::Put { tree, key, value } => {
                    trees.entry(tree.clone()).or_default().insert(key.clone(), value.clone());
                }
                BatchOp::Delete { tree, key } => {
                    if let Some(t) = trees.get_mut(tree) {
                        t.remove(key);
                    }
                }
            }
        }
    }

    fn encode_snapshot(trees: &BTreeMap<String, Tree>) -> Vec<u8> {
        let mut w = Writer::with_capacity(4096);
        w.put_varint(trees.len() as u64);
        for (name, tree) in trees {
            w.put_str(name);
            w.put_varint(tree.len() as u64);
            for (k, v) in tree {
                w.put_bytes(k);
                w.put_bytes(v);
            }
        }
        let body = w.finish();
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn load_snapshot(path: &Path) -> StorageResult<BTreeMap<String, Tree>> {
        if !path.exists() {
            return Ok(BTreeMap::new());
        }
        let mut raw = Vec::new();
        fs::File::open(path)?.read_to_end(&mut raw)?;
        let header_ok = raw.get(..8).is_some_and(|magic| magic == SNAPSHOT_MAGIC);
        let crc_bytes: Option<[u8; 4]> = raw.get(8..12).and_then(|slice| slice.try_into().ok());
        let (Some(crc_bytes), Some(body), true) = (crc_bytes, raw.get(12..), header_ok) else {
            return Err(StorageError::Corrupt("snapshot header malformed".into()));
        };
        let crc = u32::from_le_bytes(crc_bytes);
        if crc32(body) != crc {
            return Err(StorageError::Corrupt("snapshot CRC mismatch".into()));
        }
        let mut r = Reader::new(body);
        let tree_count = r.get_varint()? as usize;
        let mut trees = BTreeMap::new();
        for _ in 0..tree_count {
            let name = r.get_str()?;
            let entry_count = r.get_varint()? as usize;
            let mut tree = Tree::new();
            for _ in 0..entry_count {
                let k = r.get_bytes()?;
                let v = r.get_bytes()?;
                tree.insert(k, v);
            }
            trees.insert(name, tree);
        }
        r.expect_end()?;
        Ok(trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softrep-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_delete_in_memory() {
        let s = Store::in_memory();
        s.put("users", b"alice".to_vec(), b"record".to_vec()).unwrap();
        assert_eq!(s.get("users", b"alice").unwrap(), b"record");
        assert!(s.contains("users", b"alice"));
        s.delete("users", b"alice".to_vec()).unwrap();
        assert!(s.get("users", b"alice").is_none());
        assert!(!s.contains("users", b"alice"));
    }

    #[test]
    fn unknown_tree_reads_empty() {
        let s = Store::in_memory();
        assert!(s.get("nope", b"k").is_none());
        assert_eq!(s.tree_len("nope"), 0);
        assert!(s.scan_all("nope").is_empty());
    }

    #[test]
    fn scan_prefix_respects_order_and_bounds() {
        let s = Store::in_memory();
        for k in ["a1", "a2", "a3", "b1", "b2"] {
            s.put("t", k.as_bytes().to_vec(), k.as_bytes().to_vec()).unwrap();
        }
        let hits = s.scan_prefix("t", b"a");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, b"a1");
        assert_eq!(hits[2].0, b"a3");
        assert_eq!(s.scan_prefix("t", b"b2").len(), 1);
        assert_eq!(s.scan_prefix("t", b"c").len(), 0);
        assert_eq!(s.scan_all("t").len(), 5);
    }

    #[test]
    fn batch_is_atomic_across_trees() {
        let s = Store::in_memory();
        let mut b = WriteBatch::new();
        b.put("votes", b"v1".to_vec(), b"10".to_vec());
        b.put("index", b"u1:v1".to_vec(), Vec::new());
        s.apply(&b).unwrap();
        assert!(s.contains("votes", b"v1"));
        assert!(s.contains("index", b"u1:v1"));
        assert_eq!(s.stats().batches_applied, 1);
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let s = Store::open(&dir).unwrap();
            s.put("software", b"abc".to_vec(), b"rating=7".to_vec()).unwrap();
            s.put("software", b"def".to_vec(), b"rating=3".to_vec()).unwrap();
            s.delete("software", b"def".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get("software", b"abc").unwrap(), b"rating=7");
        assert!(s.get("software", b"def").is_none());
        assert_eq!(s.tree_len("software"), 1);
    }

    #[test]
    fn compaction_preserves_data_and_truncates_wal() {
        let dir = tmpdir("compact");
        {
            let s = Store::open(&dir).unwrap();
            for i in 0..100u64 {
                s.put("t", i.to_be_bytes().to_vec(), vec![i as u8]).unwrap();
            }
            assert!(s.stats().wal_bytes > 0);
            s.compact().unwrap();
            assert_eq!(s.stats().wal_bytes, 0);
            assert_eq!(s.stats().ops_since_compaction, 0);
            // Post-compaction writes land in the fresh WAL.
            s.put("t", 200u64.to_be_bytes().to_vec(), vec![200u8.wrapping_add(0)]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.tree_len("t"), 101);
        assert_eq!(s.get("t", &42u64.to_be_bytes()).unwrap(), vec![42]);
        assert_eq!(s.get("t", &200u64.to_be_bytes()).unwrap(), vec![200]);
    }

    #[test]
    fn snapshot_crc_detects_corruption() {
        let dir = tmpdir("snapcrc");
        {
            let s = Store::open(&dir).unwrap();
            s.put("t", b"k".to_vec(), b"v".to_vec()).unwrap();
            s.compact().unwrap();
        }
        // Flip a byte in the snapshot body.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut raw = fs::read(&snap).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        fs::write(&snap, &raw).unwrap();
        assert!(matches!(Store::open(&dir), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn reopen_after_torn_wal_drops_only_torn_batch() {
        let dir = tmpdir("tornwal");
        {
            let s = Store::open(&dir).unwrap();
            s.put("t", b"safe".to_vec(), b"1".to_vec()).unwrap();
            s.put("t", b"torn".to_vec(), b"2".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let wal_path = dir.join(WAL_FILE);
        let raw = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &raw[..raw.len() - 1]).unwrap();

        let s = Store::open(&dir).unwrap();
        assert!(s.contains("t", b"safe"));
        assert!(!s.contains("t", b"torn"));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let s = Store::in_memory();
        s.apply(&WriteBatch::new()).unwrap();
        assert_eq!(s.stats().batches_applied, 0);
    }

    #[test]
    fn stats_count_keys_and_trees() {
        let s = Store::in_memory();
        s.put("a", b"1".to_vec(), b"x".to_vec()).unwrap();
        s.put("a", b"2".to_vec(), b"x".to_vec()).unwrap();
        s.put("b", b"1".to_vec(), b"x".to_vec()).unwrap();
        let st = s.stats();
        assert_eq!(st.trees, 2);
        assert_eq!(st.keys, 3);
        assert_eq!(s.tree_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn overwrite_replaces_value() {
        let s = Store::in_memory();
        s.put("t", b"k".to_vec(), b"old".to_vec()).unwrap();
        s.put("t", b"k".to_vec(), b"new".to_vec()).unwrap();
        assert_eq!(s.get("t", b"k").unwrap(), b"new");
        assert_eq!(s.tree_len("t"), 1);
    }
}
