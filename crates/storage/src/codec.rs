//! Compact binary record codec.
//!
//! Every value the engine persists — WAL entries, snapshot rows, table
//! records — goes through this codec. It is deliberately minimal: varint
//! unsigned integers, zig-zag signed integers, IEEE-754 floats, length-
//! prefixed strings/bytes, and structural combinators (`Option`, `Vec`,
//! tuples). Encoding is byte-stable across runs, which the deterministic
//! aggregation invariant (DESIGN.md §5.5) depends on.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{StorageError, StorageResult};

/// Streaming encoder over a growable buffer.
pub struct Writer {
    buf: BytesMut,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer { buf: BytesMut::with_capacity(64) }
    }

    /// Fresh writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: BytesMut::with_capacity(cap) }
    }

    /// LEB128-style varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Zig-zag encoded signed integer.
    pub fn put_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// IEEE-754 double as 8 little-endian bytes.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Streaming decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn decode_err(what: &str) -> StorageError {
        StorageError::Decode(format!("unexpected end of input reading {what}"))
    }

    /// Decode a varint.
    pub fn get_varint(&mut self) -> StorageResult<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.buf.has_remaining() {
                return Err(Self::decode_err("varint"));
            }
            let byte = self.buf.get_u8();
            if shift >= 64 {
                return Err(StorageError::Decode("varint overflows u64".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Decode a zig-zag signed integer.
    pub fn get_signed(&mut self) -> StorageResult<i64> {
        let raw = self.get_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Decode an f64.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        if self.buf.remaining() < 8 {
            return Err(Self::decode_err("f64"));
        }
        Ok(f64::from_bits(self.buf.get_u64_le()))
    }

    /// Decode one byte.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        if !self.buf.has_remaining() {
            return Err(Self::decode_err("u8"));
        }
        Ok(self.buf.get_u8())
    }

    /// Decode a boolean; any value other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> StorageResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Decode(format!("invalid bool byte {other}"))),
        }
    }

    /// Decode length-prefixed bytes.
    pub fn get_bytes(&mut self) -> StorageResult<Vec<u8>> {
        let len = self.get_varint()? as usize;
        if self.buf.remaining() < len {
            return Err(Self::decode_err("bytes body"));
        }
        let mut out = vec![0u8; len];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Decode a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StorageResult<String> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| StorageError::Decode("invalid UTF-8 string".into()))
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Assert the input was fully consumed (trailing bytes mean schema
    /// drift).
    pub fn expect_end(&self) -> StorageResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::Decode(format!("{} trailing bytes after record", self.remaining())))
        }
    }
}

/// Types that can encode themselves into a [`Writer`].
pub trait Encode {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types that can decode themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Consume this value's encoding from `r`.
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self>;

    /// Convenience: decode a full buffer, requiring exact consumption.
    fn decode_from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! impl_codec_uint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
                let raw = r.get_varint()?;
                <$ty>::try_from(raw)
                    .map_err(|_| StorageError::Decode(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_codec_uint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
}
impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let raw = r.get_varint()?;
        usize::try_from(raw).map_err(|_| StorageError::Decode("usize overflow".into()))
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_signed(*self);
    }
}
impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.get_signed()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}
impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.get_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.get_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.get_str()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        r.get_bytes()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(StorageError::Decode(format!("invalid Option tag {other}"))),
        }
    }
}

/// Encode a sequence as `len` followed by each element.
///
/// A free function rather than `impl Encode for Vec<T>` because that blanket
/// impl would overlap with the byte-optimised `Vec<u8>` impl above.
pub fn put_seq<T: Encode>(w: &mut Writer, items: &[T]) {
    w.put_varint(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

/// Decode a sequence written by [`put_seq`].
pub fn get_seq<T: Decode>(r: &mut Reader<'_>) -> StorageResult<Vec<T>> {
    let len = r.get_varint()? as usize;
    // Guard against hostile lengths: never pre-reserve more than the bytes
    // that could plausibly remain.
    let mut out = Vec::with_capacity(len.min(r.remaining().max(16)));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn signed_roundtrip_boundaries() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -128, 127] {
            let mut w = Writer::new();
            w.put_signed(v);
            let bytes = w.finish();
            assert_eq!(Reader::new(&bytes).get_signed().unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors_not_panics() {
        let mut w = Writer::new();
        w.put_str("hello world");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert!(Option::<u64>::decode_from_bytes(&[7]).is_err());
        assert_eq!(Option::<u64>::decode_from_bytes(&[0]).unwrap(), None);
    }

    #[test]
    fn expect_end_catches_trailing_garbage() {
        let mut w = Writer::new();
        w.put_varint(5);
        w.put_u8(99);
        let bytes = w.finish();
        assert!(u64::decode_from_bytes(&bytes).is_err());
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        assert!(String::decode_from_bytes(&bytes).is_err());
    }

    #[test]
    fn u8_range_check() {
        let mut w = Writer::new();
        w.put_varint(300);
        let bytes = w.finish();
        assert!(u8::decode_from_bytes(&bytes).is_err());
        assert_eq!(u16::decode_from_bytes(&bytes).unwrap(), 300);
    }

    proptest! {
        #[test]
        fn roundtrip_tuple(a: u64, b: i64, c in any::<f64>().prop_filter("NaN breaks eq", |f| !f.is_nan())) {
            let bytes = (a, b, c).encode_to_bytes();
            let (ra, rb, rc) = <(u64, i64, f64)>::decode_from_bytes(&bytes).unwrap();
            prop_assert_eq!((a, b, c), (ra, rb, rc));
        }

        #[test]
        fn roundtrip_string(s: String) {
            let bytes = s.clone().encode_to_bytes();
            prop_assert_eq!(String::decode_from_bytes(&bytes).unwrap(), s);
        }

        #[test]
        fn roundtrip_bytes_and_option(v: Vec<u8>, o: Option<String>) {
            let bytes = (v.clone(), o.clone()).encode_to_bytes();
            let (rv, ro) = <(Vec<u8>, Option<String>)>::decode_from_bytes(&bytes).unwrap();
            prop_assert_eq!(rv, v);
            prop_assert_eq!(ro, o);
        }

        #[test]
        fn encoding_is_deterministic(s: String, n: u64) {
            let one = (s.clone(), n).encode_to_bytes();
            let two = (s, n).encode_to_bytes();
            prop_assert_eq!(one, two);
        }
    }
}
