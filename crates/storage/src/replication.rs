//! Storage-side primitives for WAL-shipping replication (DESIGN.md §15).
//!
//! The model is a single primary and N read replicas. The primary's WAL
//! already journals every committed batch under a monotonically increasing
//! commit sequence number (embedded in each frame — see
//! [`crate::store::Store::apply`]); replication simply ships those frames:
//!
//! * the primary answers subscription reads via
//!   [`crate::Store::replication_read`], serving a gapless run of
//!   committed entries after the subscriber's watermark, or telling it to
//!   bootstrap from a snapshot when compaction has retired that suffix;
//! * a replica applies each shipped batch through [`apply_replicated`],
//!   which folds the *applied-sequence watermark* into the same
//!   [`WriteBatch`] — one atomic commit, so a crash at any instant leaves
//!   watermark and data in agreement and restart resumes idempotently;
//! * a fresh (or diverged) replica installs a full snapshot through
//!   [`install_snapshot`], which brackets the multi-batch import with a
//!   bootstrap sentinel so an interrupted install is detected on restart
//!   and redone rather than trusted.
//!
//! All replica-side metadata lives in the `__repl_meta` tree, which
//! [`crate::Store::content_dump`] excludes — a replica's user-visible
//! contents stay byte-comparable to its primary's.

use crate::batch::WriteBatch;
use crate::codec::Decode;
use crate::error::{StorageError, StorageResult};
use crate::store::Store;

/// Tree holding replica-local replication metadata. The `__repl` prefix
/// keeps it out of [`Store::content_dump`] and out of snapshot shipping.
pub const REPL_META_TREE: &str = "__repl_meta";

/// Key (in [`REPL_META_TREE`]) of the applied-sequence watermark: the
/// newest primary commit sequence number this replica has fully applied,
/// as 8 big-endian bytes.
pub const WATERMARK_KEY: &[u8] = b"applied_seq";

/// Key (in [`REPL_META_TREE`]) of the bootstrap sentinel, present while a
/// snapshot install is in progress. A replica that finds it on startup
/// must discard its state and re-bootstrap.
pub const BOOTSTRAP_KEY: &[u8] = b"bootstrapping";

/// Ops per batch when installing a snapshot. Keeps every journaled frame
/// far below the WAL's 16 MiB entry bound even with large values.
const INSTALL_CHUNK_OPS: usize = 4096;
/// Value bytes per install batch before it is cut early.
const INSTALL_CHUNK_BYTES: usize = 4 * 1024 * 1024;

/// One committed entry shipped to a subscriber: the primary's commit
/// sequence number and the encoded [`WriteBatch`] it journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplEntry {
    /// Commit sequence number the primary assigned this batch.
    pub seq: u64,
    /// The batch, encoded with [`WriteBatch::encode_to_bytes`].
    pub batch: Vec<u8>,
}

/// Result of a [`Store::replication_read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRead {
    /// A gapless run of committed entries starting at `from_seq + 1`
    /// (possibly empty when the subscriber is caught up).
    Entries {
        /// The entries, in sequence order.
        entries: Vec<ReplEntry>,
        /// The primary's newest committed sequence number at the read.
        committed_seq: u64,
        /// Bytes of committed entries past this page (lag in bytes).
        backlog_bytes: u64,
    },
    /// Compaction already retired the requested suffix; the subscriber
    /// must bootstrap from a snapshot before tailing again.
    SnapshotNeeded {
        /// The primary's newest committed sequence number at the read.
        committed_seq: u64,
    },
}

/// The replica's applied-sequence watermark: the newest primary sequence
/// number whose batch is fully applied here (0 before any).
pub fn applied_watermark(store: &Store) -> u64 {
    store
        .get(REPL_META_TREE, WATERMARK_KEY)
        .and_then(|v| <[u8; 8]>::try_from(v.as_slice()).ok())
        .map(u64::from_be_bytes)
        .unwrap_or(0)
}

/// True when a snapshot install was interrupted: the store's contents are
/// a torn mix of old and new state and must not be served or tailed —
/// re-bootstrap instead.
pub fn bootstrap_pending(store: &Store) -> bool {
    store.contains(REPL_META_TREE, BOOTSTRAP_KEY)
}

/// Apply one shipped entry on a replica. The watermark advance rides in
/// the same [`WriteBatch`] as the entry's ops, so the commit is atomic:
/// readers never see a torn batch, and a crash leaves watermark and data
/// consistent — restart simply resubscribes from the watermark.
///
/// Entries at or below the current watermark were already applied (a
/// redelivery after reconnect) and are skipped; an entry further ahead
/// than `watermark + 1` means the stream has a gap and is refused.
pub fn apply_replicated(store: &Store, entry: &ReplEntry) -> StorageResult<()> {
    let watermark = applied_watermark(store);
    if entry.seq <= watermark {
        return Ok(());
    }
    if entry.seq != watermark + 1 {
        return Err(StorageError::Corrupt(format!(
            "replication gap: entry {} arrived at watermark {watermark}",
            entry.seq
        )));
    }
    let mut batch = WriteBatch::decode_from_bytes(&entry.batch)?;
    batch.put(REPL_META_TREE, WATERMARK_KEY.to_vec(), entry.seq.to_be_bytes().to_vec());
    store.apply(&batch)
}

/// Install a full snapshot (bytes from [`Store::export_snapshot`] on the
/// primary) over this replica's store, replacing all user-visible
/// contents. Returns the sequence number the snapshot covers, which
/// becomes the new watermark.
///
/// The import spans many batches, so it cannot be atomic; instead it is
/// *detectably* non-atomic: a bootstrap sentinel is committed first and
/// removed in the same final batch that sets the watermark. The WAL's
/// prefix-replay invariant orders those commits, so any recovered state
/// either predates the install, carries the sentinel (→ re-bootstrap), or
/// is complete.
pub fn install_snapshot(store: &Store, snapshot: &[u8]) -> StorageResult<u64> {
    let (trees, covered_seq) = Store::parse_snapshot(snapshot)?;

    store.put(REPL_META_TREE, BOOTSTRAP_KEY.to_vec(), covered_seq.to_be_bytes().to_vec())?;

    // Clear existing user-visible contents (chunked deletes).
    for name in store.tree_names() {
        if name.starts_with("__repl") {
            continue;
        }
        let mut batch = WriteBatch::new();
        for (key, _) in store.scan_all(&name) {
            batch.delete(&name, key);
            if batch.len() >= INSTALL_CHUNK_OPS {
                store.apply(&batch)?;
                batch = WriteBatch::new();
            }
        }
        store.apply(&batch)?;
    }

    // Load the snapshot's pairs (chunked inserts).
    let mut batch = WriteBatch::new();
    let mut batch_bytes = 0usize;
    for (name, tree) in &trees {
        if name.starts_with("__repl") {
            // A primary that was once a replica may carry stale
            // replication metadata; it is node-local and never shipped.
            continue;
        }
        for (key, value) in tree {
            batch_bytes += key.len() + value.len();
            batch.put(name.as_str(), key.clone(), value.clone());
            if batch.len() >= INSTALL_CHUNK_OPS || batch_bytes >= INSTALL_CHUNK_BYTES {
                store.apply(&batch)?;
                batch = WriteBatch::new();
                batch_bytes = 0;
            }
        }
    }
    // Final batch: watermark in, sentinel out — one atomic commit flips
    // the store from "bootstrapping" to "consistent at covered_seq".
    batch.put(REPL_META_TREE, WATERMARK_KEY.to_vec(), covered_seq.to_be_bytes().to_vec());
    batch.delete(REPL_META_TREE, BOOTSTRAP_KEY.to_vec());
    store.apply(&batch)?;
    store.sync()?;
    Ok(covered_seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softrep-repl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put(store: &Store, tree: &str, k: &str, v: &str) {
        store.put(tree, k.as_bytes().to_vec(), v.as_bytes().to_vec()).unwrap();
    }

    #[test]
    fn tail_replicates_to_identical_contents() {
        let primary = Store::open(tmpdir("tail-p")).unwrap();
        let replica = Store::open(tmpdir("tail-r")).unwrap();
        for i in 0..50 {
            put(&primary, "t", &format!("k{i}"), &format!("v{i}"));
        }
        primary.delete("t", b"k7".to_vec()).unwrap();

        let mut watermark = applied_watermark(&replica);
        loop {
            match primary.replication_read(watermark, 8, 1 << 16).unwrap() {
                ReplRead::Entries { entries, committed_seq, .. } => {
                    for e in &entries {
                        apply_replicated(&replica, e).unwrap();
                    }
                    watermark = applied_watermark(&replica);
                    if watermark == committed_seq {
                        break;
                    }
                }
                ReplRead::SnapshotNeeded { .. } => panic!("nothing compacted yet"),
            }
        }
        assert_eq!(watermark, primary.committed_seq());
        assert_eq!(primary.content_dump(), replica.content_dump());
        assert!(replica.get("t", b"k7").is_none());
    }

    #[test]
    fn caught_up_subscriber_gets_empty_page() {
        let primary = Store::open(tmpdir("caught-up")).unwrap();
        put(&primary, "t", "k", "v");
        let seq = primary.committed_seq();
        match primary.replication_read(seq, 8, 1 << 16).unwrap() {
            ReplRead::Entries { entries, committed_seq, backlog_bytes } => {
                assert!(entries.is_empty());
                assert_eq!(committed_seq, seq);
                assert_eq!(backlog_bytes, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn limits_page_the_stream_and_report_backlog() {
        let primary = Store::open(tmpdir("paged")).unwrap();
        for i in 0..20 {
            put(&primary, "t", &format!("k{i}"), "value-of-some-size");
        }
        let ReplRead::Entries { entries, backlog_bytes, .. } =
            primary.replication_read(0, 5, usize::MAX).unwrap()
        else {
            panic!("expected entries");
        };
        assert_eq!(entries.len(), 5);
        assert_eq!(entries.first().unwrap().seq, 1);
        assert_eq!(entries.last().unwrap().seq, 5);
        assert!(backlog_bytes > 0, "15 undelivered entries must be accounted");
    }

    #[test]
    fn compaction_forces_snapshot_bootstrap() {
        let primary = Store::open(tmpdir("snap-p")).unwrap();
        for i in 0..30 {
            put(&primary, "t", &format!("k{i}"), &format!("v{i}"));
        }
        primary.compact().unwrap();
        // The log was retired: a from-scratch subscriber cannot tail.
        assert!(matches!(
            primary.replication_read(0, 64, 1 << 20).unwrap(),
            ReplRead::SnapshotNeeded { .. }
        ));

        let replica = Store::open(tmpdir("snap-r")).unwrap();
        put(&replica, "stale", "old", "state");
        let (seq, bytes) = primary.export_snapshot();
        let installed = install_snapshot(&replica, &bytes).unwrap();
        assert_eq!(installed, seq);
        assert_eq!(applied_watermark(&replica), seq);
        assert!(!bootstrap_pending(&replica));
        assert_eq!(primary.content_dump(), replica.content_dump());
        assert!(replica.get("stale", b"old").is_none(), "pre-install state replaced");

        // Post-snapshot writes tail normally from the watermark.
        put(&primary, "t", "k-post", "v-post");
        let ReplRead::Entries { entries, .. } = primary.replication_read(seq, 64, 1 << 20).unwrap()
        else {
            panic!("expected entries");
        };
        for e in &entries {
            apply_replicated(&replica, e).unwrap();
        }
        assert_eq!(primary.content_dump(), replica.content_dump());
    }

    #[test]
    fn redelivery_is_idempotent_and_gaps_are_refused() {
        let primary = Store::open(tmpdir("gaps-p")).unwrap();
        let replica = Store::open(tmpdir("gaps-r")).unwrap();
        for i in 0..3 {
            put(&primary, "t", &format!("k{i}"), "v");
        }
        let ReplRead::Entries { entries, .. } = primary.replication_read(0, 64, 1 << 20).unwrap()
        else {
            panic!("expected entries");
        };
        apply_replicated(&replica, &entries[0]).unwrap();
        // Redelivering the same entry is a no-op.
        apply_replicated(&replica, &entries[0]).unwrap();
        assert_eq!(applied_watermark(&replica), 1);
        // Skipping ahead is refused loudly.
        assert!(matches!(apply_replicated(&replica, &entries[2]), Err(StorageError::Corrupt(_))));
        assert_eq!(applied_watermark(&replica), 1);
    }

    #[test]
    fn watermark_survives_reopen() {
        let dir_p = tmpdir("wm-p");
        let dir_r = tmpdir("wm-r");
        let primary = Store::open(&dir_p).unwrap();
        {
            let replica = Store::open(&dir_r).unwrap();
            for i in 0..10 {
                put(&primary, "t", &format!("k{i}"), "v");
            }
            let ReplRead::Entries { entries, .. } =
                primary.replication_read(0, 64, 1 << 20).unwrap()
            else {
                panic!("expected entries");
            };
            for e in &entries {
                apply_replicated(&replica, e).unwrap();
            }
            replica.sync().unwrap();
        }
        let replica = Store::open(&dir_r).unwrap();
        assert_eq!(applied_watermark(&replica), 10);
        assert!(!bootstrap_pending(&replica));
        assert_eq!(primary.content_dump(), replica.content_dump());
    }

    #[test]
    fn primary_sequence_numbering_survives_reopen_and_compaction() {
        let dir = tmpdir("seq-reopen");
        {
            let s = Store::open(&dir).unwrap();
            for i in 0..5 {
                put(&s, "t", &format!("k{i}"), "v");
            }
            assert_eq!(s.committed_seq(), 5);
            s.sync().unwrap();
        }
        {
            let s = Store::open(&dir).unwrap();
            assert_eq!(s.committed_seq(), 5, "ledger resumes from the replayed log");
            put(&s, "t", "k5", "v");
            assert_eq!(s.committed_seq(), 6);
            s.compact().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.committed_seq(), 6, "ledger resumes from the snapshot's covered seq");
        put(&s, "t", "k6", "v");
        assert_eq!(s.committed_seq(), 7);
    }

    #[test]
    fn in_memory_store_refuses_replication_reads() {
        let s = Store::in_memory();
        s.put("t", b"k".to_vec(), b"v".to_vec()).unwrap();
        assert!(matches!(s.replication_read(0, 8, 1 << 16), Err(StorageError::Unsupported(_))));
    }

    #[test]
    fn interrupted_install_leaves_the_sentinel() {
        let primary = Store::open(tmpdir("sentinel-p")).unwrap();
        put(&primary, "t", "k", "v");
        let replica = Store::open(tmpdir("sentinel-r")).unwrap();
        // Simulate the crash window by writing the sentinel the way
        // install_snapshot does, without finishing.
        replica.put(REPL_META_TREE, BOOTSTRAP_KEY.to_vec(), 1u64.to_be_bytes().to_vec()).unwrap();
        assert!(bootstrap_pending(&replica));
        // A completed install clears it.
        let (_, bytes) = primary.export_snapshot();
        install_snapshot(&replica, &bytes).unwrap();
        assert!(!bootstrap_pending(&replica));
    }
}
