//! Group-commit bookkeeping for the sharded store.
//!
//! Every applied batch receives a monotonically increasing *commit
//! sequence number* under the store's commit lock. Durability is tracked
//! separately: a batch is *appended* once its frame sits in the WAL
//! buffer, and *durable* once an `fsync` covering its sequence number has
//! completed. The [`CommitLedger`] records both watermarks plus the
//! single-flight sync state, which is what lets concurrent committers
//! coalesce: while one thread's `sync_data` is in flight, every batch
//! appended in the meantime is covered by the *next* sync, so N waiting
//! writers cost one fsync, not N.
//!
//! The ledger itself is plain data with no interior locking — the store
//! guards it with its commit mutex, and the loom suite drives the same
//! protocol under exhaustive interleavings.

/// How `Store::apply` trades write latency for durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Every `apply` blocks until an fsync covers its batch. Concurrent
    /// writers share group commits, so the cost is one `sync_data` per
    /// *group*, not per batch.
    Always,
    /// `apply` returns once the batch is buffered; an fsync is forced
    /// whenever `every_bytes` of WAL have accumulated since the last one.
    /// Bounds data-at-risk without paying an fsync per batch.
    Batched {
        /// Unsynced-byte threshold that triggers a group fsync.
        every_bytes: u64,
    },
    /// `apply` pushes the frame to the OS page cache and returns. Survives
    /// a process crash but not a power failure unless `Store::sync` is
    /// called — the pre-rewrite engine's only behaviour, kept as the
    /// default for drop-in compatibility.
    #[default]
    Os,
}

/// Construction-time options for [`crate::Store::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Durability mode for `apply` (see [`DurabilityMode`]).
    pub durability: DurabilityMode,
    /// Number of lock stripes for the tree map. Clamped to `1..=256`.
    pub shards: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { durability: DurabilityMode::default(), shards: 16 }
    }
}

/// Sequence-number bookkeeping for group commit. Plain data; callers
/// serialize access (the store uses its commit mutex).
#[derive(Debug, Default)]
pub struct CommitLedger {
    /// Sequence number of the newest appended batch (0 = none yet).
    appended_seq: u64,
    /// Highest sequence number known covered by a completed fsync.
    durable_seq: u64,
    /// True while some thread runs `sync_data` off-lock.
    sync_in_flight: bool,
    /// Bytes appended since the last completed fsync began covering them.
    bytes_since_sync: u64,
    /// Bytes that the in-flight sync will retire from `bytes_since_sync`.
    bytes_in_flight: u64,
    /// Completed group fsyncs.
    group_commits: u64,
    /// Batches that rode an fsync they did not issue (depth − 1 summed).
    fsyncs_saved: u64,
    /// Largest number of batches retired by a single fsync.
    max_group_depth: u64,
}

impl CommitLedger {
    /// Fresh ledger with nothing appended or durable.
    pub fn new() -> Self {
        CommitLedger::default()
    }

    /// Ledger resuming an existing sequence history at `seq` — used on
    /// recovery, where `seq` is the newest commit sequence number the
    /// recovered log chain (snapshot base plus replayed WAL frames)
    /// established. The resume point counts as durable: it was read back
    /// from disk, so an fsync by definition already covered it.
    pub fn starting_at(seq: u64) -> Self {
        CommitLedger { appended_seq: seq, durable_seq: seq, ..CommitLedger::default() }
    }

    /// Record a batch of `bytes` appended to the WAL buffer; returns its
    /// commit sequence number.
    pub fn record_append(&mut self, bytes: u64) -> u64 {
        self.appended_seq += 1;
        self.bytes_since_sync = self.bytes_since_sync.saturating_add(bytes);
        self.appended_seq
    }

    /// True once an fsync covering `seq` has completed.
    pub fn is_durable(&self, seq: u64) -> bool {
        self.durable_seq >= seq
    }

    /// True when `Batched { every_bytes }` owes the disk an fsync.
    pub fn sync_due(&self, every_bytes: u64) -> bool {
        self.bytes_since_sync >= every_bytes.max(1)
    }

    /// Claim the single sync slot. Returns the sequence number the sync
    /// will make durable, or `None` when a sync is already in flight or
    /// there is nothing new to sync. The caller must later report back via
    /// [`CommitLedger::finish_sync`] with the same number.
    pub fn try_begin_sync(&mut self) -> Option<u64> {
        if self.sync_in_flight || self.appended_seq == self.durable_seq {
            return None;
        }
        self.sync_in_flight = true;
        self.bytes_in_flight = self.bytes_since_sync;
        Some(self.appended_seq)
    }

    /// Report the outcome of the sync claimed by
    /// [`CommitLedger::try_begin_sync`]. On success every batch up to
    /// `sync_to` becomes durable and the group counters advance. Returns
    /// the group depth this sync retired (0 on failure or no-op), so the
    /// caller can feed the per-fsync depth distribution to observability
    /// without a second ledger read.
    pub fn finish_sync(&mut self, sync_to: u64, ok: bool) -> u64 {
        self.sync_in_flight = false;
        if !ok {
            self.bytes_in_flight = 0;
            return 0;
        }
        let depth = sync_to.saturating_sub(self.durable_seq);
        if depth > 0 {
            self.group_commits += 1;
            self.fsyncs_saved += depth - 1;
            self.max_group_depth = self.max_group_depth.max(depth);
        }
        self.durable_seq = self.durable_seq.max(sync_to);
        self.bytes_since_sync = self.bytes_since_sync.saturating_sub(self.bytes_in_flight);
        self.bytes_in_flight = 0;
        depth
    }

    /// Everything currently appended is known durable (used after the
    /// compaction path fsyncs the WAL under the commit lock).
    pub fn mark_all_durable(&mut self) {
        if !self.sync_in_flight {
            self.bytes_since_sync = 0;
            self.bytes_in_flight = 0;
        }
        self.durable_seq = self.appended_seq;
    }

    /// Newest appended sequence number.
    pub fn appended_seq(&self) -> u64 {
        self.appended_seq
    }

    /// Highest durable sequence number.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// True while a sync claimed via `try_begin_sync` has not finished.
    pub fn sync_in_flight(&self) -> bool {
        self.sync_in_flight
    }

    /// Completed group fsyncs.
    pub fn group_commits(&self) -> u64 {
        self.group_commits
    }

    /// Fsyncs avoided by riding another batch's group commit.
    pub fn fsyncs_saved(&self) -> u64 {
        self.fsyncs_saved
    }

    /// Largest observed group depth (batches retired by one fsync).
    pub fn max_group_depth(&self) -> u64 {
        self.max_group_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_assign_increasing_sequence_numbers() {
        let mut l = CommitLedger::new();
        assert_eq!(l.record_append(10), 1);
        assert_eq!(l.record_append(10), 2);
        assert!(!l.is_durable(1));
        assert_eq!(l.appended_seq(), 2);
    }

    #[test]
    fn starting_at_resumes_numbering_and_counts_the_base_durable() {
        let mut l = CommitLedger::starting_at(41);
        assert_eq!(l.appended_seq(), 41);
        assert!(l.is_durable(41), "the recovered prefix was read from disk");
        assert_eq!(l.record_append(4), 42);
        assert!(!l.is_durable(42));
        let to = l.try_begin_sync().unwrap();
        l.finish_sync(to, true);
        assert!(l.is_durable(42));
    }

    #[test]
    fn single_flight_sync_coalesces_queued_batches() {
        let mut l = CommitLedger::new();
        let a = l.record_append(8);
        let to = l.try_begin_sync().unwrap();
        assert_eq!(to, a);
        // While the sync is in flight the slot cannot be reclaimed...
        let b = l.record_append(8);
        assert!(l.try_begin_sync().is_none());
        l.finish_sync(to, true);
        assert!(l.is_durable(a));
        assert!(!l.is_durable(b));
        // ...and the batch appended meanwhile is picked up by the next one.
        let to2 = l.try_begin_sync().unwrap();
        assert_eq!(to2, b);
        l.finish_sync(to2, true);
        assert!(l.is_durable(b));
        assert_eq!(l.group_commits(), 2);
        assert_eq!(l.fsyncs_saved(), 0);
    }

    #[test]
    fn group_depth_and_saved_fsyncs_are_counted() {
        let mut l = CommitLedger::new();
        for _ in 0..5 {
            l.record_append(4);
        }
        let to = l.try_begin_sync().unwrap();
        assert_eq!(l.finish_sync(to, true), 5, "finish reports the retired depth");
        assert_eq!(l.group_commits(), 1);
        assert_eq!(l.fsyncs_saved(), 4);
        assert_eq!(l.max_group_depth(), 5);
        assert!(l.try_begin_sync().is_none(), "nothing pending");
    }

    #[test]
    fn failed_sync_leaves_batches_undurable() {
        let mut l = CommitLedger::new();
        let seq = l.record_append(4);
        let to = l.try_begin_sync().unwrap();
        assert_eq!(l.finish_sync(to, false), 0, "failed sync retires nothing");
        assert!(!l.is_durable(seq));
        assert!(!l.sync_in_flight());
        // The retry can claim the slot again.
        assert_eq!(l.try_begin_sync(), Some(seq));
    }

    #[test]
    fn batched_mode_due_accounting_survives_concurrent_appends() {
        let mut l = CommitLedger::new();
        l.record_append(600);
        assert!(l.sync_due(512));
        let to = l.try_begin_sync().unwrap();
        // A batch lands while the sync is in flight; its bytes must not be
        // retired by the older sync.
        l.record_append(600);
        l.finish_sync(to, true);
        assert!(l.sync_due(512), "post-sync append still owes an fsync");
        let to2 = l.try_begin_sync().unwrap();
        l.finish_sync(to2, true);
        assert!(!l.sync_due(512));
    }
}
