//! Typed tables over raw trees.
//!
//! A [`TableSchema`] pairs a tree name with key and record types; a
//! [`Table`] binds the schema to a [`Store`] and exposes typed CRUD plus
//! ordered scans. Keys use an **order-preserving** encoding ([`KeyCodec`])
//! so that prefix scans over composite keys (e.g. "all votes for software
//! S") work directly on the underlying B-tree.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::codec::{Decode, Encode};
use crate::error::StorageResult;
use crate::store::Store;

/// Order-preserving key encoding.
///
/// * Unsigned integers encode as fixed-width big-endian bytes.
/// * Strings and byte strings use the escaped-terminator scheme
///   (`0x00 → 0x00 0xFF`, terminator `0x00 0x01`), which preserves
///   lexicographic order and composes inside tuples.
/// * Tuples concatenate component encodings.
pub trait KeyCodec: Sized {
    /// Append this key's encoding to `out`.
    fn write_key(&self, out: &mut Vec<u8>);

    /// Consume one key from the front of `input`, returning the key and the
    /// unconsumed tail. Returns `None` on malformed input.
    fn read_key(input: &[u8]) -> Option<(Self, &[u8])>;

    /// Encode to a fresh buffer.
    fn to_key_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.write_key(&mut out);
        out
    }

    /// Decode a full key, requiring exact consumption.
    fn from_key_bytes(input: &[u8]) -> Option<Self> {
        let (key, rest) = Self::read_key(input)?;
        rest.is_empty().then_some(key)
    }
}

impl KeyCodec for u64 {
    fn write_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        let head: [u8; 8] = input.get(..8)?.try_into().ok()?;
        Some((u64::from_be_bytes(head), input.get(8..)?))
    }
}

impl KeyCodec for u32 {
    fn write_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        let head: [u8; 4] = input.get(..4)?.try_into().ok()?;
        Some((u32::from_be_bytes(head), input.get(4..)?))
    }
}

const ESCAPE: u8 = 0x00;
const ESCAPED_ZERO: u8 = 0xFF;
const TERMINATOR: u8 = 0x01;

fn write_escaped(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_ZERO);
        } else {
            out.push(b);
        }
    }
    out.push(ESCAPE);
    out.push(TERMINATOR);
}

fn read_escaped(input: &[u8]) -> Option<(Vec<u8>, &[u8])> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(&b) = input.get(i) {
        if b == ESCAPE {
            let next = *input.get(i + 1)?;
            match next {
                ESCAPED_ZERO => {
                    out.push(0x00);
                    i += 2;
                }
                TERMINATOR => return Some((out, input.get(i + 2..)?)),
                _ => return None,
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    None
}

impl KeyCodec for Vec<u8> {
    fn write_key(&self, out: &mut Vec<u8>) {
        write_escaped(self, out);
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        read_escaped(input)
    }
}

impl KeyCodec for String {
    fn write_key(&self, out: &mut Vec<u8>) {
        write_escaped(self.as_bytes(), out);
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        let (raw, rest) = read_escaped(input)?;
        Some((String::from_utf8(raw).ok()?, rest))
    }
}

impl<A: KeyCodec, B: KeyCodec> KeyCodec for (A, B) {
    fn write_key(&self, out: &mut Vec<u8>) {
        self.0.write_key(out);
        self.1.write_key(out);
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        let (a, rest) = A::read_key(input)?;
        let (b, rest) = B::read_key(rest)?;
        Some(((a, b), rest))
    }
}

impl<A: KeyCodec, B: KeyCodec, C: KeyCodec> KeyCodec for (A, B, C) {
    fn write_key(&self, out: &mut Vec<u8>) {
        self.0.write_key(out);
        self.1.write_key(out);
        self.2.write_key(out);
    }

    fn read_key(input: &[u8]) -> Option<(Self, &[u8])> {
        let (a, rest) = A::read_key(input)?;
        let (b, rest) = B::read_key(rest)?;
        let (c, rest) = C::read_key(rest)?;
        Some(((a, b, c), rest))
    }
}

/// Static description of a table: tree name plus key/record types.
pub struct TableSchema<K, V> {
    /// The backing tree name.
    pub tree: &'static str,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> TableSchema<K, V> {
    /// Define a schema over `tree`.
    pub const fn new(tree: &'static str) -> Self {
        TableSchema { tree, _marker: PhantomData }
    }
}

/// A typed table bound to a store.
pub struct Table<K: 'static, V: 'static> {
    store: Arc<Store>,
    schema: &'static TableSchema<K, V>,
}

impl<K: 'static, V: 'static> Clone for Table<K, V> {
    fn clone(&self) -> Self {
        Table { store: Arc::clone(&self.store), schema: self.schema }
    }
}

impl<K: KeyCodec + 'static, V: Encode + Decode + 'static> Table<K, V> {
    /// Bind `schema` to `store`.
    pub fn bind(store: Arc<Store>, schema: &'static TableSchema<K, V>) -> Self {
        Table { store, schema }
    }

    /// The backing tree name.
    pub fn tree(&self) -> &'static str {
        self.schema.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Insert or overwrite the record at `key`.
    pub fn put(&self, key: &K, value: &V) -> StorageResult<()> {
        self.store.put(self.schema.tree, key.to_key_bytes(), value.encode_to_bytes().to_vec())
    }

    /// Fetch the record at `key`.
    pub fn get(&self, key: &K) -> StorageResult<Option<V>> {
        match self.store.get(self.schema.tree, &key.to_key_bytes()) {
            None => Ok(None),
            Some(raw) => Ok(Some(V::decode_from_bytes(&raw)?)),
        }
    }

    /// Remove the record at `key` (no-op if absent).
    pub fn remove(&self, key: &K) -> StorageResult<()> {
        self.store.delete(self.schema.tree, key.to_key_bytes())
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.store.contains(self.schema.tree, &key.to_key_bytes())
    }

    /// All `(key, record)` pairs in key order.
    pub fn scan(&self) -> StorageResult<Vec<(K, V)>> {
        self.decode_pairs(self.store.scan_all(self.schema.tree))
    }

    /// All pairs whose encoded key starts with `prefix`'s encoding. With
    /// composite keys, passing the first component(s) scans that subtree.
    pub fn scan_key_prefix<P: KeyCodec>(&self, prefix: &P) -> StorageResult<Vec<(K, V)>> {
        self.decode_pairs(self.store.scan_prefix(self.schema.tree, &prefix.to_key_bytes()))
    }

    /// Visit each decoded `(key, record)` under `prefix` in key order
    /// without materialising the raw pairs — the decode happens straight
    /// off the borrowed tree entries. The backing shard stays read-locked
    /// for the duration, so the visitor must not call back into the
    /// store. Decode failures abort the scan and surface as an error.
    pub fn for_each_key_prefix<P: KeyCodec>(
        &self,
        prefix: &P,
        mut f: impl FnMut(K, V),
    ) -> StorageResult<()> {
        let mut failed: Option<crate::error::StorageError> = None;
        self.store.for_each_prefix(self.schema.tree, &prefix.to_key_bytes(), |k, v| {
            let Some(key) = K::from_key_bytes(k) else {
                failed = Some(crate::error::StorageError::Decode(format!(
                    "malformed key in tree {}",
                    self.schema.tree
                )));
                return false;
            };
            match V::decode_from_bytes(v) {
                Ok(value) => {
                    f(key, value);
                    true
                }
                Err(e) => {
                    failed = Some(e);
                    false
                }
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.store.tree_len(self.schema.tree)
    }

    /// True when the table has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn decode_pairs(&self, raw: Vec<(Vec<u8>, Vec<u8>)>) -> StorageResult<Vec<(K, V)>> {
        let mut out = Vec::with_capacity(raw.len());
        for (k, v) in raw {
            let key = K::from_key_bytes(&k).ok_or_else(|| {
                crate::error::StorageError::Decode(format!(
                    "malformed key in tree {}",
                    self.schema.tree
                ))
            })?;
            out.push((key, V::decode_from_bytes(&v)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u64_keys_sort_numerically() {
        let mut keys: Vec<Vec<u8>> =
            [3u64, 1, 200, 45, u64::MAX, 0].iter().map(|k| k.to_key_bytes()).collect();
        keys.sort();
        let decoded: Vec<u64> = keys.iter().map(|k| u64::from_key_bytes(k).unwrap()).collect();
        assert_eq!(decoded, vec![0, 1, 3, 45, 200, u64::MAX]);
    }

    #[test]
    fn string_keys_with_embedded_zero_roundtrip() {
        let key = String::from_utf8(vec![b'a', 0, 0, b'b']).unwrap_or_else(|_| unreachable!());
        let bytes = key.to_key_bytes();
        assert_eq!(String::from_key_bytes(&bytes).unwrap(), key);
    }

    #[test]
    fn tuple_keys_compose_and_prefix_scan_works() {
        static SCHEMA: TableSchema<(String, String), u64> = TableSchema::new("votes");
        let table = Table::bind(Arc::new(Store::in_memory()), &SCHEMA);
        table.put(&("softA".into(), "alice".into()), &8).unwrap();
        table.put(&("softA".into(), "bob".into()), &3).unwrap();
        table.put(&("softB".into(), "alice".into()), &10).unwrap();

        let a_votes = table.scan_key_prefix(&"softA".to_string()).unwrap();
        assert_eq!(a_votes.len(), 2);
        assert_eq!(a_votes[0].0 .1, "alice");
        assert_eq!(a_votes[1].0 .1, "bob");

        // "softA" must not also match "softAB" style keys.
        table.put(&("softAB".into(), "eve".into()), &1).unwrap();
        assert_eq!(table.scan_key_prefix(&"softA".to_string()).unwrap().len(), 2);
    }

    #[test]
    fn for_each_key_prefix_visits_decoded_pairs_in_order() {
        static SCHEMA: TableSchema<(String, String), u64> = TableSchema::new("votes");
        let table = Table::bind(Arc::new(Store::in_memory()), &SCHEMA);
        table.put(&("softA".into(), "alice".into()), &8).unwrap();
        table.put(&("softA".into(), "bob".into()), &3).unwrap();
        table.put(&("softB".into(), "alice".into()), &10).unwrap();

        let mut seen = Vec::new();
        table
            .for_each_key_prefix(&"softA".to_string(), |(_, user), score| {
                seen.push((user, score));
            })
            .unwrap();
        assert_eq!(seen, vec![("alice".to_string(), 8), ("bob".to_string(), 3)]);

        // A malformed record surfaces as a decode error, not a panic.
        table
            .store()
            .put("votes", ("softA".to_string(), "zz".to_string()).to_key_bytes(), vec![0xff])
            .unwrap();
        let res = table.for_each_key_prefix(&"softA".to_string(), |_, _| {});
        assert!(res.is_err());
    }

    #[test]
    fn typed_crud_roundtrip() {
        static SCHEMA: TableSchema<u64, (String, u64)> = TableSchema::new("t");
        let table = Table::bind(Arc::new(Store::in_memory()), &SCHEMA);
        assert!(table.is_empty());
        table.put(&7, &("seven".into(), 77)).unwrap();
        assert_eq!(table.get(&7).unwrap().unwrap(), ("seven".into(), 77));
        assert!(table.contains(&7));
        assert_eq!(table.len(), 1);
        table.remove(&7).unwrap();
        assert!(table.get(&7).unwrap().is_none());
    }

    #[test]
    fn scan_returns_key_order() {
        static SCHEMA: TableSchema<u64, u64> = TableSchema::new("nums");
        let table = Table::bind(Arc::new(Store::in_memory()), &SCHEMA);
        for k in [5u64, 1, 9, 3] {
            table.put(&k, &(k * 10)).unwrap();
        }
        let all = table.scan().unwrap();
        let keys: Vec<u64> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn malformed_escape_is_rejected() {
        assert!(read_escaped(&[0x00, 0x02]).is_none());
        assert!(read_escaped(&[0x00]).is_none());
        assert!(read_escaped(b"never terminated").is_none());
    }

    proptest! {
        #[test]
        fn escaped_roundtrip(bytes: Vec<u8>, tail: Vec<u8>) {
            let mut enc = Vec::new();
            write_escaped(&bytes, &mut enc);
            enc.extend_from_slice(&tail);
            let (dec, rest) = read_escaped(&enc).unwrap();
            prop_assert_eq!(dec, bytes);
            prop_assert_eq!(rest, &tail[..]);
        }

        #[test]
        fn escaped_encoding_preserves_order(a: Vec<u8>, b: Vec<u8>) {
            let mut ea = Vec::new();
            let mut eb = Vec::new();
            write_escaped(&a, &mut ea);
            write_escaped(&b, &mut eb);
            prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        }

        #[test]
        fn tuple_key_roundtrip(a in "[a-zA-Z0-9@._-]{0,24}", b: u64) {
            let key = (a.clone(), b);
            let bytes = key.to_key_bytes();
            prop_assert_eq!(<(String, u64)>::from_key_bytes(&bytes).unwrap(), (a, b));
        }
    }
}
