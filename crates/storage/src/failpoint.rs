//! Deterministic failpoint registry for fault-injection testing.
//!
//! A *failpoint* is a named interception site inside the storage engine's
//! I/O layer (see [`crate::vfs`] for the catalogue of site names). Each
//! registered point carries a [`FailAction`] describing when it fires and
//! a [`Fault`] describing what the intercepted operation should do when
//! it does. Everything is deterministic: `Nth` fires on an exact hit
//! count, `Chance` draws from a SplitMix64 stream seeded by the caller,
//! so a failing schedule is replayable from its seed alone.
//!
//! Two registries exist:
//!
//! * **Instance registries** — every [`crate::vfs::SimVfs`] owns a
//!   private [`Failpoints`], so concurrent tests in one binary can
//!   inject faults without seeing each other's configuration.
//! * **The global registry** — consulted by [`crate::vfs::RealVfs`] and
//!   loaded once from the `SOFTREP_FAILPOINTS` environment variable, so
//!   integration binaries can be fault-injected from the outside without
//!   code changes. It is armed only when at least one point is
//!   configured; the disarmed fast path is a single relaxed atomic load,
//!   which is what keeps the production `RealVfs` zero-cost.
//!
//! Spec grammar (comma-separated, whitespace ignored):
//!
//! ```text
//! point[~path-substring]=action
//! action := off | err | torn | err@N | torn@N | err%P:SEED | torn%P:SEED
//! ```
//!
//! `err@3` fires an I/O error on the third evaluation only; `torn%25:7`
//! tears one in four operations on average, drawn from seed 7. The
//! optional `~substring` scopes the point to paths containing the
//! substring, so one test's store directory can be targeted without
//! tripping unrelated stores in the same process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// What a fired failpoint does to the intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the call with an injected I/O error; no state changes.
    Err,
    /// Persist a *prefix* of the operation's effect, then fail: a torn
    /// append or a short fsync. On the real filesystem this degrades to
    /// [`Fault::Err`] — only [`crate::vfs::SimVfs`] can tear
    /// deterministically.
    Torn,
}

/// When a failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Never fires (registered but dormant).
    Off,
    /// Fires on every evaluation.
    Every(Fault),
    /// Fires on exactly the `n`-th evaluation (1-based), then goes quiet.
    Nth(Fault, u64),
    /// Fires with probability `percent`/100 per evaluation, drawn from a
    /// private SplitMix64 stream seeded with the given seed.
    Chance(Fault, u8, u64),
}

/// One registered point: its action plus evaluation bookkeeping.
#[derive(Debug)]
struct Point {
    action: FailAction,
    /// Only paths containing this substring are intercepted.
    path_filter: Option<String>,
    /// Evaluations that passed the path filter.
    hits: u64,
    /// Evaluations that actually fired a fault.
    trips: u64,
    /// Private RNG state for `Chance`.
    rng: u64,
}

/// A set of named failpoints. Cheap when empty: evaluation takes one
/// mutex acquisition and a hash lookup, and the [`crate::vfs::RealVfs`]
/// path never reaches it unless the global registry is armed.
#[derive(Debug, Default)]
pub struct Failpoints {
    points: Mutex<HashMap<String, Point>>,
}

impl Failpoints {
    /// An empty registry.
    pub fn new() -> Self {
        Failpoints::default()
    }

    /// Register (or replace) `name` with `action`, unscoped.
    pub fn set(&self, name: &str, action: FailAction) {
        self.insert(name, None, action);
    }

    /// Register (or replace) `name`, firing only for paths that contain
    /// `path_substring`.
    pub fn set_scoped(&self, name: &str, path_substring: &str, action: FailAction) {
        self.insert(name, Some(path_substring.to_string()), action);
    }

    fn insert(&self, name: &str, path_filter: Option<String>, action: FailAction) {
        let seed = match action {
            FailAction::Chance(_, _, seed) => seed,
            _ => 0,
        };
        self.points
            .lock()
            .insert(name.to_string(), Point { action, path_filter, hits: 0, trips: 0, rng: seed });
    }

    /// Remove `name` entirely.
    pub fn clear(&self, name: &str) {
        self.points.lock().remove(name);
    }

    /// Remove every registered point.
    pub fn clear_all(&self) {
        self.points.lock().clear();
    }

    /// True when no point is registered.
    pub fn is_empty(&self) -> bool {
        self.points.lock().is_empty()
    }

    /// How many times `name` actually fired.
    pub fn trip_count(&self, name: &str) -> u64 {
        self.points.lock().get(name).map_or(0, |p| p.trips)
    }

    /// Evaluate the point `name` against `path`. Returns the fault to
    /// inject, or `None` to let the operation proceed. Each call that
    /// passes the path filter advances the point's hit counter, which is
    /// what `Nth` and `Chance` are keyed on.
    pub fn evaluate(&self, name: &str, path: &str) -> Option<Fault> {
        let mut points = self.points.lock();
        let point = points.get_mut(name)?;
        if let Some(filter) = point.path_filter.as_deref() {
            if !path.contains(filter) {
                return None;
            }
        }
        point.hits += 1;
        let fired = match point.action {
            FailAction::Off => None,
            FailAction::Every(fault) => Some(fault),
            FailAction::Nth(fault, n) => (point.hits == n).then_some(fault),
            FailAction::Chance(fault, percent, _) => {
                let draw = splitmix64(&mut point.rng) % 100;
                (draw < u64::from(percent)).then_some(fault)
            }
        };
        if fired.is_some() {
            point.trips += 1;
        }
        fired
    }

    /// Parse a spec string (see module docs for the grammar) and register
    /// every point in it. Returns the number of points registered.
    pub fn apply_spec(&self, spec: &str) -> Result<usize, String> {
        let mut count = 0usize;
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((target, action)) = clause.split_once('=') else {
                return Err(format!("failpoint clause `{clause}` is missing `=action`"));
            };
            let action = parse_action(action.trim())?;
            let target = target.trim();
            match target.split_once('~') {
                Some((name, filter)) => self.set_scoped(name.trim(), filter.trim(), action),
                None => self.set(target, action),
            }
            count += 1;
        }
        Ok(count)
    }
}

/// Parse one action token: `off`, `err`, `torn`, `err@N`, `torn@N`,
/// `err%P:SEED`, `torn%P:SEED`.
fn parse_action(token: &str) -> Result<FailAction, String> {
    if token == "off" {
        return Ok(FailAction::Off);
    }
    if let Some((kind, rest)) = token.split_once('@') {
        let fault = parse_fault(kind)?;
        let n: u64 = rest.parse().map_err(|_| format!("bad hit count `{rest}` in `{token}`"))?;
        if n == 0 {
            return Err(format!("hit count in `{token}` is 1-based; 0 never fires"));
        }
        return Ok(FailAction::Nth(fault, n));
    }
    if let Some((kind, rest)) = token.split_once('%') {
        let fault = parse_fault(kind)?;
        let Some((percent, seed)) = rest.split_once(':') else {
            return Err(format!("`{token}` needs the form kind%percent:seed"));
        };
        let percent: u8 =
            percent.parse().map_err(|_| format!("bad percent `{percent}` in `{token}`"))?;
        if percent > 100 {
            return Err(format!("percent {percent} > 100 in `{token}`"));
        }
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}` in `{token}`"))?;
        return Ok(FailAction::Chance(fault, percent, seed));
    }
    Ok(FailAction::Every(parse_fault(token)?))
}

fn parse_fault(token: &str) -> Result<Fault, String> {
    match token {
        "err" => Ok(Fault::Err),
        "torn" => Ok(Fault::Torn),
        other => Err(format!("unknown fault kind `{other}` (expected err|torn)")),
    }
}

/// One SplitMix64 step — the same generator the property harness uses,
/// inlined so the storage crate stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// True once the global registry holds at least one point. Checked with a
/// relaxed load on every `RealVfs` operation — the entire production cost
/// of the failpoint system when faults are not being injected.
static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Failpoints> = OnceLock::new();

/// The process-wide registry consulted by `RealVfs`. First use loads
/// `SOFTREP_FAILPOINTS` (a malformed spec is reported to stderr and
/// ignored — a fault injector must never take the process down).
pub fn global() -> &'static Failpoints {
    GLOBAL.get_or_init(|| {
        let points = Failpoints::new();
        if let Ok(spec) = std::env::var("SOFTREP_FAILPOINTS") {
            match points.apply_spec(&spec) {
                Ok(n) if n > 0 => GLOBAL_ARMED.store(true, Ordering::Relaxed),
                Ok(_) => {}
                Err(e) => eprintln!("SOFTREP_FAILPOINTS ignored: {e}"),
            }
        }
        points
    })
}

/// Force the `SOFTREP_FAILPOINTS` load. `RealVfs` construction calls this
/// so env-configured points are armed before the first I/O, while the
/// per-operation fast path stays a single atomic load.
pub fn init_from_env() {
    let _ = global();
}

/// Register a point on the global registry and arm it. Test-only in
/// spirit, but exported so integration binaries can script faults.
pub fn arm_global(name: &str, action: FailAction) {
    global().set(name, action);
    GLOBAL_ARMED.store(true, Ordering::Relaxed);
}

/// Like [`arm_global`] but scoped to paths containing `path_substring`,
/// which is how concurrent tests sharing one process avoid tripping each
/// other's stores.
pub fn arm_global_scoped(name: &str, path_substring: &str, action: FailAction) {
    global().set_scoped(name, path_substring, action);
    GLOBAL_ARMED.store(true, Ordering::Relaxed);
}

/// Remove one point from the global registry; disarms the fast path when
/// the registry ends up empty.
pub fn disarm_global(name: &str) {
    let points = global();
    points.clear(name);
    if points.is_empty() {
        GLOBAL_ARMED.store(false, Ordering::Relaxed);
    }
}

/// Evaluate a global point. Returns `None` without touching the registry
/// when nothing is armed.
pub fn global_evaluate(name: &str, path: &str) -> Option<Fault> {
    if !GLOBAL_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    global().evaluate(name, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_points_never_fire() {
        let fps = Failpoints::new();
        assert_eq!(fps.evaluate("vfs.sync", "/x/WAL"), None);
        assert!(fps.is_empty());
    }

    #[test]
    fn every_and_off_actions() {
        let fps = Failpoints::new();
        fps.set("vfs.sync", FailAction::Every(Fault::Err));
        assert_eq!(fps.evaluate("vfs.sync", "/x"), Some(Fault::Err));
        assert_eq!(fps.evaluate("vfs.sync", "/x"), Some(Fault::Err));
        assert_eq!(fps.trip_count("vfs.sync"), 2);
        fps.set("vfs.sync", FailAction::Off);
        assert_eq!(fps.evaluate("vfs.sync", "/x"), None);
        fps.clear_all();
        assert!(fps.is_empty());
    }

    #[test]
    fn nth_fires_exactly_once_on_the_right_hit() {
        let fps = Failpoints::new();
        fps.set("vfs.append", FailAction::Nth(Fault::Torn, 3));
        assert_eq!(fps.evaluate("vfs.append", "/x"), None);
        assert_eq!(fps.evaluate("vfs.append", "/x"), None);
        assert_eq!(fps.evaluate("vfs.append", "/x"), Some(Fault::Torn));
        assert_eq!(fps.evaluate("vfs.append", "/x"), None);
        assert_eq!(fps.trip_count("vfs.append"), 1);
    }

    #[test]
    fn path_filter_scopes_interception_and_hit_counting() {
        let fps = Failpoints::new();
        fps.set_scoped("vfs.sync", "store-a", FailAction::Nth(Fault::Err, 2));
        // Non-matching paths neither fire nor advance the hit counter.
        assert_eq!(fps.evaluate("vfs.sync", "/tmp/store-b/WAL"), None);
        assert_eq!(fps.evaluate("vfs.sync", "/tmp/store-a/WAL"), None);
        assert_eq!(fps.evaluate("vfs.sync", "/tmp/store-b/WAL"), None);
        assert_eq!(fps.evaluate("vfs.sync", "/tmp/store-a/WAL"), Some(Fault::Err));
    }

    #[test]
    fn chance_stream_is_deterministic_per_seed() {
        let draw = |seed: u64| {
            let fps = Failpoints::new();
            fps.set("p", FailAction::Chance(Fault::Err, 30, seed));
            (0..64).map(|_| fps.evaluate("p", "/x").is_some()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seeds diverge");
        let fired = draw(7).iter().filter(|f| **f).count();
        assert!(fired > 0 && fired < 64, "30% chance fires some but not all of 64 draws");
    }

    #[test]
    fn spec_parsing_round_trips_every_form() {
        let fps = Failpoints::new();
        let n = fps.apply_spec("a=err, b=torn@2, c~sub=err%50:9, d=off,").expect("spec must parse");
        assert_eq!(n, 4);
        assert_eq!(fps.evaluate("a", "/x"), Some(Fault::Err));
        assert_eq!(fps.evaluate("b", "/x"), None);
        assert_eq!(fps.evaluate("b", "/x"), Some(Fault::Torn));
        assert_eq!(fps.evaluate("d", "/x"), None);
        // The scoped point only sees matching paths.
        assert_eq!(fps.evaluate("c", "/other"), None);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        let fps = Failpoints::new();
        for bad in ["a", "a=banana", "a=err@0", "a=err@x", "a=err%200:1", "a=err%50"] {
            let err = fps.apply_spec(bad).expect_err(bad);
            assert!(!err.is_empty(), "error message for `{bad}` must not be empty");
        }
    }

    #[test]
    fn global_registry_is_disarmed_by_default_and_armable() {
        // Uses a name no other test shares: the registry is process-wide.
        assert_eq!(global_evaluate("test.fp.global", "/x"), None);
        arm_global_scoped("test.fp.global", "magic-path", FailAction::Every(Fault::Err));
        assert_eq!(global_evaluate("test.fp.global", "/elsewhere"), None);
        assert_eq!(global_evaluate("test.fp.global", "/magic-path/WAL"), Some(Fault::Err));
        disarm_global("test.fp.global");
        assert_eq!(global_evaluate("test.fp.global", "/magic-path/WAL"), None);
    }
}
