//! Error types for the storage engine.

use std::fmt;
use std::io;

/// Any error produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A persisted value failed to decode (schema drift or corruption that
    /// slipped past the CRC).
    Corrupt(String),
    /// A record failed to decode into the expected type.
    Decode(String),
    /// The named tree does not exist.
    UnknownTree(String),
    /// The WAL refused further writes: an earlier flush failed partway,
    /// so retrying could lay duplicate bytes after a torn frame and make
    /// frames beyond the tear unreachable to replay. Reopen the store to
    /// recover cleanly (replay truncates the tear).
    Poisoned(&'static str),
    /// The operation needs a capability this store does not have (e.g.
    /// replication reads against an in-memory store, which keeps no log).
    Unsupported(&'static str),
    /// A uniqueness constraint (e.g. a unique secondary index) was violated.
    UniqueViolation {
        /// The violated index's tree name.
        index: String,
        /// Hex preview of the conflicting secondary key.
        key: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StorageError::Decode(msg) => write!(f, "record decode error: {msg}"),
            StorageError::UnknownTree(name) => write!(f, "unknown tree: {name}"),
            StorageError::Poisoned(msg) => write!(f, "storage handle poisoned: {msg}"),
            StorageError::Unsupported(msg) => write!(f, "unsupported storage operation: {msg}"),
            StorageError::UniqueViolation { index, key } => {
                write!(f, "unique index {index} already contains key {key}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used across the engine.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::UnknownTree("votes".into());
        assert!(e.to_string().contains("votes"));
        let e = StorageError::UniqueViolation { index: "users_by_email".into(), key: "ab".into() };
        assert!(e.to_string().contains("users_by_email"));
        let e = StorageError::from(io::Error::other("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = StorageError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(StorageError::Corrupt("y".into()).source().is_none());
    }
}
