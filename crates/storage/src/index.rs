//! Secondary indexes maintained transactionally with their base table.
//!
//! An [`IndexedTable`] wraps a base tree plus any number of index trees.
//! Index entries are `(secondary_key, primary_key) → ()` rows; uniqueness
//! (at most one primary key per secondary key) is optionally enforced at
//! write time. The reputation server uses a **unique** index on the hashed
//! e-mail address to implement §3.2's "it is possible to sign up only once
//! per e-mail address", and non-unique indexes for vendor → software
//! lookups.
//!
//! All maintenance happens inside a single [`WriteBatch`], so a crash can
//! never leave an index pointing at a missing record or vice versa.

use std::sync::Arc;

use crate::batch::WriteBatch;
use crate::codec::{Decode, Encode};
use crate::error::{StorageError, StorageResult};
use crate::store::Store;
use crate::table::KeyCodec;

/// How an index treats multiple records with the same secondary key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Any number of primary keys may share a secondary key.
    NonUnique,
    /// At most one primary key per secondary key; violations fail the write.
    Unique,
}

/// Definition of one secondary index over records of type `V`.
pub struct IndexDef<K, V> {
    /// Tree that stores the index rows.
    pub tree: &'static str,
    /// Enforcement mode.
    pub kind: IndexKind,
    /// Extracts the secondary keys for a record (empty = not indexed).
    pub extract: fn(&K, &V) -> Vec<Vec<u8>>,
}

/// A typed table with transactionally-maintained secondary indexes.
pub struct IndexedTable<K, V> {
    store: Arc<Store>,
    tree: &'static str,
    indexes: Vec<IndexDef<K, V>>,
}

impl<K: KeyCodec + Clone, V: Encode + Decode> IndexedTable<K, V> {
    /// Create a table on `tree` with the given index definitions.
    pub fn new(store: Arc<Store>, tree: &'static str, indexes: Vec<IndexDef<K, V>>) -> Self {
        IndexedTable { store, tree, indexes }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The base tree name.
    pub fn tree(&self) -> &'static str {
        self.tree
    }

    /// Insert or overwrite `value` at `key`, updating every index; fails
    /// with [`StorageError::UniqueViolation`] if a unique index would gain
    /// a second primary key, in which case **nothing** is written.
    pub fn put(&self, key: &K, value: &V) -> StorageResult<()> {
        let key_bytes = key.to_key_bytes();
        let old: Option<V> = match self.store.get(self.tree, &key_bytes) {
            Some(raw) => Some(V::decode_from_bytes(&raw)?),
            None => None,
        };

        let mut batch = WriteBatch::new();
        for idx in &self.indexes {
            let new_keys = (idx.extract)(key, value);
            // Unique check before any mutation: a conflicting row must
            // belong to a *different* primary key.
            if idx.kind == IndexKind::Unique {
                for sk in &new_keys {
                    for (row_key, _) in self.store.scan_prefix(idx.tree, &prefix_of(sk)) {
                        let existing_pk = primary_of(&row_key, sk);
                        if existing_pk != key_bytes.as_slice() {
                            return Err(StorageError::UniqueViolation {
                                index: idx.tree.to_string(),
                                key: hex_preview(sk),
                            });
                        }
                    }
                }
            }
            if let Some(old_value) = &old {
                for sk in (idx.extract)(key, old_value) {
                    batch.delete(idx.tree, index_row_key(&sk, &key_bytes));
                }
            }
            for sk in &new_keys {
                batch.put(idx.tree, index_row_key(sk, &key_bytes), Vec::new());
            }
        }
        batch.put(self.tree, key_bytes, value.encode_to_bytes().to_vec());
        self.store.apply(&batch)
    }

    /// Remove the record at `key` together with its index rows.
    pub fn remove(&self, key: &K) -> StorageResult<()> {
        let key_bytes = key.to_key_bytes();
        let Some(raw) = self.store.get(self.tree, &key_bytes) else { return Ok(()) };
        let old = V::decode_from_bytes(&raw)?;

        let mut batch = WriteBatch::new();
        for idx in &self.indexes {
            for sk in (idx.extract)(key, &old) {
                batch.delete(idx.tree, index_row_key(&sk, &key_bytes));
            }
        }
        batch.delete(self.tree, key_bytes);
        self.store.apply(&batch)
    }

    /// Fetch the record at `key`.
    pub fn get(&self, key: &K) -> StorageResult<Option<V>> {
        match self.store.get(self.tree, &key.to_key_bytes()) {
            None => Ok(None),
            Some(raw) => Ok(Some(V::decode_from_bytes(&raw)?)),
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.store.contains(self.tree, &key.to_key_bytes())
    }

    /// Primary keys whose records produced `secondary` in index `tree`.
    pub fn lookup(&self, index_tree: &str, secondary: &[u8]) -> StorageResult<Vec<K>> {
        let rows = self.store.scan_prefix(index_tree, &prefix_of(secondary));
        let mut out = Vec::with_capacity(rows.len());
        for (row_key, _) in rows {
            let pk_bytes = primary_of(&row_key, secondary);
            let pk = K::from_key_bytes(pk_bytes).ok_or_else(|| {
                StorageError::Decode(format!("malformed primary key in index {index_tree}"))
            })?;
            out.push(pk);
        }
        Ok(out)
    }

    /// Records (not just keys) matching `secondary` in `index_tree`.
    pub fn lookup_records(&self, index_tree: &str, secondary: &[u8]) -> StorageResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        for pk in self.lookup(index_tree, secondary)? {
            if let Some(v) = self.get(&pk)? {
                out.push((pk, v));
            }
        }
        Ok(out)
    }

    /// All `(key, record)` pairs in key order.
    pub fn scan(&self) -> StorageResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        for (k, v) in self.store.scan_all(self.tree) {
            let key = K::from_key_bytes(&k).ok_or_else(|| {
                StorageError::Decode(format!("malformed key in tree {}", self.tree))
            })?;
            out.push((key, V::decode_from_bytes(&v)?));
        }
        Ok(out)
    }

    /// Number of records in the base tree.
    pub fn len(&self) -> usize {
        self.store.tree_len(self.tree)
    }

    /// True when the base tree has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Index rows are `escaped(secondary) ++ primary`; the escape terminator
/// makes the secondary component self-delimiting.
fn index_row_key(secondary: &[u8], primary: &[u8]) -> Vec<u8> {
    let mut out = prefix_of(secondary);
    out.extend_from_slice(primary);
    out
}

fn prefix_of(secondary: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(secondary.len() + 2);
    secondary.to_vec().write_key(&mut out);
    out
}

fn primary_of<'a>(row_key: &'a [u8], secondary: &[u8]) -> &'a [u8] {
    &row_key[prefix_of(secondary).len()..]
}

fn hex_preview(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    bytes
        .iter()
        .take(8)
        .flat_map(|&b| [TABLE[(b >> 4) as usize] as char, TABLE[(b & 0xf) as usize] as char])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct UserRec {
        name: String,
        email_hash: Vec<u8>,
        vendor: String,
    }

    impl Encode for UserRec {
        fn encode(&self, w: &mut crate::codec::Writer) {
            w.put_str(&self.name);
            w.put_bytes(&self.email_hash);
            w.put_str(&self.vendor);
        }
    }
    impl Decode for UserRec {
        fn decode(r: &mut crate::codec::Reader<'_>) -> StorageResult<Self> {
            Ok(UserRec { name: r.get_str()?, email_hash: r.get_bytes()?, vendor: r.get_str()? })
        }
    }

    fn table() -> IndexedTable<String, UserRec> {
        IndexedTable::new(
            Arc::new(Store::in_memory()),
            "users",
            vec![
                IndexDef {
                    tree: "users_by_email",
                    kind: IndexKind::Unique,
                    extract: |_, v| vec![v.email_hash.clone()],
                },
                IndexDef {
                    tree: "users_by_vendor",
                    kind: IndexKind::NonUnique,
                    extract: |_, v| vec![v.vendor.as_bytes().to_vec()],
                },
            ],
        )
    }

    fn user(name: &str, email: &[u8], vendor: &str) -> UserRec {
        UserRec { name: name.into(), email_hash: email.to_vec(), vendor: vendor.into() }
    }

    #[test]
    fn unique_index_rejects_duplicate_email() {
        let t = table();
        t.put(&"alice".to_string(), &user("alice", b"E1", "acme")).unwrap();
        let err = t.put(&"bob".to_string(), &user("bob", b"E1", "acme")).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // Nothing about bob must have been written.
        assert!(!t.contains(&"bob".to_string()));
        assert_eq!(t.lookup("users_by_email", b"E1").unwrap(), vec!["alice".to_string()]);
    }

    #[test]
    fn unique_index_allows_self_overwrite() {
        let t = table();
        t.put(&"alice".to_string(), &user("alice", b"E1", "acme")).unwrap();
        // Same user re-registering the same e-mail is an overwrite, not a
        // violation.
        t.put(&"alice".to_string(), &user("alice2", b"E1", "acme")).unwrap();
        assert_eq!(t.get(&"alice".to_string()).unwrap().unwrap().name, "alice2");
    }

    #[test]
    fn index_rows_follow_record_updates() {
        let t = table();
        t.put(&"alice".to_string(), &user("alice", b"E1", "acme")).unwrap();
        t.put(&"alice".to_string(), &user("alice", b"E2", "globex")).unwrap();
        assert!(t.lookup("users_by_email", b"E1").unwrap().is_empty());
        assert_eq!(t.lookup("users_by_email", b"E2").unwrap(), vec!["alice".to_string()]);
        assert!(t.lookup("users_by_vendor", b"acme").unwrap().is_empty());
        assert_eq!(t.lookup("users_by_vendor", b"globex").unwrap().len(), 1);
    }

    #[test]
    fn non_unique_index_collects_all_matches() {
        let t = table();
        t.put(&"a".to_string(), &user("a", b"E1", "acme")).unwrap();
        t.put(&"b".to_string(), &user("b", b"E2", "acme")).unwrap();
        t.put(&"c".to_string(), &user("c", b"E3", "globex")).unwrap();
        let mut acme = t.lookup("users_by_vendor", b"acme").unwrap();
        acme.sort();
        assert_eq!(acme, vec!["a".to_string(), "b".to_string()]);
        let recs = t.lookup_records("users_by_vendor", b"acme").unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn remove_cleans_index_rows() {
        let t = table();
        t.put(&"a".to_string(), &user("a", b"E1", "acme")).unwrap();
        t.remove(&"a".to_string()).unwrap();
        assert!(t.lookup("users_by_email", b"E1").unwrap().is_empty());
        assert!(t.lookup("users_by_vendor", b"acme").unwrap().is_empty());
        assert!(t.is_empty());
        // Removing again is a no-op.
        t.remove(&"a".to_string()).unwrap();
    }

    #[test]
    fn secondary_keys_that_prefix_each_other_do_not_collide() {
        let t = table();
        t.put(&"a".to_string(), &user("a", b"E1", "ac")).unwrap();
        t.put(&"b".to_string(), &user("b", b"E2", "acme")).unwrap();
        assert_eq!(t.lookup("users_by_vendor", b"ac").unwrap(), vec!["a".to_string()]);
        assert_eq!(t.lookup("users_by_vendor", b"acme").unwrap(), vec!["b".to_string()]);
    }

    #[test]
    fn scan_decodes_all_records() {
        let t = table();
        t.put(&"a".to_string(), &user("a", b"E1", "x")).unwrap();
        t.put(&"b".to_string(), &user("b", b"E2", "y")).unwrap();
        let all = t.scan().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a");
        assert_eq!(all[1].1.vendor, "y");
    }
}
