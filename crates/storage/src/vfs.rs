//! Virtual filesystem abstraction over every durable effect the storage
//! engine performs.
//!
//! The WAL and store never touch `std::fs` directly; they go through a
//! [`Vfs`] handle. Production uses [`RealVfs`], a transparent passthrough
//! whose only extra cost is one relaxed atomic load per operation (the
//! global failpoint arm check — see [`crate::failpoint`]). Tests use
//! [`SimVfs`], an in-memory filesystem that models the visible/durable
//! split a real disk has: appends and writes land in the *visible* image
//! immediately, but only an `fsync` (or a metadata operation — rename,
//! remove) advances the *durable* image a crash would leave behind.
//!
//! `SimVfs` also records every operation in an event log. Because the
//! durable image is a pure function of that log, a crash-schedule
//! explorer can run a workload **once**, then reconstruct the exact
//! durable state at every crash point offline ([`durable_image_at`]) —
//! including torn variants where a prefix of the unsynced delta survived
//! — and recover each image with the production `Store::open` path.
//!
//! # Failpoint site catalogue
//!
//! Every operation evaluates one named failpoint before acting (DESIGN.md
//! §13 documents the full matrix):
//!
//! | site           | operation                         | `torn` meaning            |
//! |----------------|-----------------------------------|---------------------------|
//! | `vfs.open`     | open-or-create for append         | —                         |
//! | `vfs.create`   | create/truncate a file            | —                         |
//! | `vfs.read`     | whole-file reads                  | —                         |
//! | `vfs.write`    | whole-file replace                | prefix persists, then EIO |
//! | `vfs.append`   | append to an open handle          | prefix persists, then EIO |
//! | `vfs.sync`     | `sync_data` on an open handle     | short fsync: half the pending delta becomes durable, then EIO |
//! | `vfs.set_len`  | truncate/extend an open handle    | —                         |
//! | `vfs.rename`   | atomic rename                     | —                         |
//! | `vfs.remove`   | unlink                            | —                         |
//! | `vfs.create_dir` | `create_dir_all`                | —                         |
//!
//! On `RealVfs` a `torn` action degrades to a plain error — only the
//! simulator can tear deterministically.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::failpoint::{self, Failpoints, Fault};

/// An open file handle, shared between the WAL owner and the off-lock
/// group committer (which only calls [`VfsFile::sync_data`]).
pub trait VfsFile: Send + Sync {
    /// Append `data` at the end of the file.
    fn append(&self, data: &[u8]) -> StorageResult<()>;
    /// Flush file *data* to the device (fsync without metadata).
    fn sync_data(&self) -> StorageResult<()>;
    /// Truncate (or zero-extend) to exactly `len` bytes.
    fn set_len(&self, len: u64) -> StorageResult<()>;
    /// Read the entire current contents.
    fn read_all(&self) -> StorageResult<Vec<u8>>;
}

/// The filesystem surface the storage engine needs — nothing more.
pub trait Vfs: Send + Sync {
    /// Open `path` for appending, creating it when absent.
    fn open_append(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>>;
    /// Create (truncating when present) `path` for writing.
    fn create(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>>;
    /// Read the whole file, or `None` when it does not exist.
    fn try_read(&self, path: &Path) -> StorageResult<Option<Vec<u8>>>;
    /// Replace the contents of `path` with `data` (no implicit fsync).
    fn write(&self, path: &Path, data: &[u8]) -> StorageResult<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> StorageResult<()>;
    /// Unlink `path`.
    fn remove_file(&self, path: &Path) -> StorageResult<()>;
    /// True when `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Create `path` and its parents as directories.
    fn create_dir_all(&self, path: &Path) -> StorageResult<()>;
}

/// The injected-EIO error every fired failpoint surfaces as. Always a
/// typed [`StorageError::Io`] — a fault injection must never panic.
fn injected(site: &str, path: &Path) -> StorageError {
    StorageError::Io(std::io::Error::other(format!(
        "injected failpoint {site} at {}",
        path.display()
    )))
}

// ---------------------------------------------------------------------
// RealVfs: the production passthrough.
// ---------------------------------------------------------------------

/// Passthrough to `std::fs`. Constructing one arms any failpoints from
/// `SOFTREP_FAILPOINTS`; with nothing armed, every operation pays one
/// relaxed atomic load over the raw syscall.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl RealVfs {
    /// A new handle (also loads `SOFTREP_FAILPOINTS` once per process).
    pub fn new() -> Self {
        failpoint::init_from_env();
        RealVfs
    }
}

/// The shared production VFS handle used by every default-constructed
/// store, so the `Arc` bump is the only per-store cost.
pub fn real() -> Arc<dyn Vfs> {
    static SHARED: OnceLock<Arc<RealVfs>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(RealVfs::new()))) as Arc<dyn Vfs>
}

/// Evaluate a global failpoint for a real-filesystem operation. `torn`
/// degrades to a plain error here: the real kernel cannot tear on cue.
fn real_fail(site: &str, path: &Path) -> StorageResult<()> {
    match failpoint::global_evaluate(site, path.to_string_lossy().as_ref()) {
        Some(_) => Err(injected(site, path)),
        None => Ok(()),
    }
}

struct RealFile {
    path: PathBuf,
    file: File,
}

impl VfsFile for RealFile {
    fn append(&self, data: &[u8]) -> StorageResult<()> {
        real_fail("vfs.append", &self.path)?;
        (&self.file).write_all(data)?;
        Ok(())
    }

    fn sync_data(&self) -> StorageResult<()> {
        real_fail("vfs.sync", &self.path)?;
        self.file.sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> StorageResult<()> {
        real_fail("vfs.set_len", &self.path)?;
        self.file.set_len(len)?;
        Ok(())
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        real_fail("vfs.read", &self.path)?;
        let mut file = &self.file;
        file.seek(SeekFrom::Start(0))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        Ok(raw)
    }
}

impl Vfs for RealVfs {
    fn open_append(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>> {
        real_fail("vfs.open", path)?;
        let file = OpenOptions::new().create(true).append(true).read(true).open(path)?;
        Ok(Arc::new(RealFile { path: path.to_path_buf(), file }))
    }

    fn create(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>> {
        real_fail("vfs.create", path)?;
        let file = File::create(path)?;
        Ok(Arc::new(RealFile { path: path.to_path_buf(), file }))
    }

    fn try_read(&self, path: &Path) -> StorageResult<Option<Vec<u8>>> {
        real_fail("vfs.read", path)?;
        match std::fs::read(path) {
            Ok(raw) => Ok(Some(raw)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> StorageResult<()> {
        real_fail("vfs.write", path)?;
        std::fs::write(path, data)?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> StorageResult<()> {
        real_fail("vfs.rename", from)?;
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> StorageResult<()> {
        real_fail("vfs.remove", path)?;
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> StorageResult<()> {
        real_fail("vfs.create_dir", path)?;
        std::fs::create_dir_all(path)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SimVfs: the deterministic in-memory filesystem.
// ---------------------------------------------------------------------

/// One recorded operation. The event log is the ground truth the crash
/// explorer replays; events that advance the durable image are *durable
/// sites* ([`VfsEvent::is_durable_site`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsEvent {
    /// `open_append` created a file that did not exist.
    Open {
        /// The created path.
        path: PathBuf,
    },
    /// `create` truncated-or-created a file.
    Create {
        /// The created path.
        path: PathBuf,
    },
    /// Bytes appended to the visible image (possibly a torn prefix of a
    /// larger request).
    Append {
        /// The appended path.
        path: PathBuf,
        /// Exactly the bytes that landed.
        data: Vec<u8>,
    },
    /// Visible truncation/extension to `len`.
    SetLen {
        /// The resized path.
        path: PathBuf,
        /// The new visible length.
        len: u64,
    },
    /// Whole-file replace of the visible image.
    WriteFile {
        /// The replaced path.
        path: PathBuf,
        /// The new contents (possibly a torn prefix).
        data: Vec<u8>,
    },
    /// Durable site: fsync promoted the whole visible image.
    Sync {
        /// The synced path.
        path: PathBuf,
    },
    /// Durable site: a short fsync promoted only the first `up_to` bytes
    /// of the visible image.
    SyncPartial {
        /// The synced path.
        path: PathBuf,
        /// Durable length after the short fsync.
        up_to: u64,
    },
    /// Durable site: atomic rename.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// Durable site: unlink.
    Remove {
        /// The removed path.
        path: PathBuf,
    },
}

impl VfsEvent {
    /// True for events that change what a crash would leave on disk.
    pub fn is_durable_site(&self) -> bool {
        matches!(
            self,
            VfsEvent::Sync { .. }
                | VfsEvent::SyncPartial { .. }
                | VfsEvent::Rename { .. }
                | VfsEvent::Remove { .. }
        )
    }

    /// Short human label for failure reports ("sync WAL", "rename WAL").
    pub fn label(&self) -> String {
        fn name(p: &Path) -> String {
            p.file_name().map_or_else(|| p.display().to_string(), |n| n.to_string_lossy().into())
        }
        match self {
            VfsEvent::Open { path } => format!("open {}", name(path)),
            VfsEvent::Create { path } => format!("create {}", name(path)),
            VfsEvent::Append { path, data } => format!("append {}B to {}", data.len(), name(path)),
            VfsEvent::SetLen { path, len } => format!("set_len {} to {len}", name(path)),
            VfsEvent::WriteFile { path, data } => {
                format!("write {}B to {}", data.len(), name(path))
            }
            VfsEvent::Sync { path } => format!("sync {}", name(path)),
            VfsEvent::SyncPartial { path, up_to } => {
                format!("short-sync {} to {up_to}B", name(path))
            }
            VfsEvent::Rename { from, to } => format!("rename {} -> {}", name(from), name(to)),
            VfsEvent::Remove { path } => format!("remove {}", name(path)),
        }
    }
}

/// Which residue a simulated crash leaves for the unsynced delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Only explicitly-durable bytes survive — the most pessimistic disk.
    DurableOnly,
    /// Half of every file's unsynced suffix also survives: a torn append
    /// caught mid-writeback.
    TornHalf,
    /// The whole visible image survives: the kernel wrote everything back
    /// just before power failed.
    AllPending,
}

#[derive(Debug, Default)]
struct SimState {
    /// What every open handle and read sees right now.
    visible: BTreeMap<PathBuf, Vec<u8>>,
    /// What a crash at this instant would leave on disk.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Every operation, in order.
    log: Vec<VfsEvent>,
    /// Count of durable sites in `log` (kept in lockstep).
    durable_sites: usize,
}

impl SimState {
    fn record(&mut self, event: VfsEvent) {
        if event.is_durable_site() {
            self.durable_sites += 1;
        }
        self.log.push(event);
    }
}

/// Deterministic in-memory filesystem with a visible/durable split, an
/// event log, and an instance-local failpoint registry. Clones share the
/// same underlying state, so a test can keep a handle while the store
/// owns another.
///
/// Handles are path-keyed: the simulator assumes single-threaded
/// workloads where no handle outlives a rename of its file (the store's
/// compaction closes the WAL handle before rotating, so the engine's own
/// sequential use is safe).
#[derive(Debug, Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
    failpoints: Arc<Failpoints>,
}

impl SimVfs {
    /// A fresh, empty simulated filesystem.
    pub fn new() -> Self {
        SimVfs::default()
    }

    /// The instance-local failpoint registry driving fault injection.
    pub fn failpoints(&self) -> &Failpoints {
        &self.failpoints
    }

    /// A copy of the full event log so far.
    pub fn event_log(&self) -> Vec<VfsEvent> {
        self.state.lock().log.clone()
    }

    /// How many durable-effect sites the log holds so far.
    pub fn durable_site_count(&self) -> usize {
        self.state.lock().durable_sites
    }

    /// What a crash right now would leave on disk.
    pub fn durable_image(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.state.lock().durable.clone()
    }

    /// The live (page-cache) view of every file.
    pub fn visible_image(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.state.lock().visible.clone()
    }

    fn fail(&self, site: &str, path: &Path) -> Option<Fault> {
        self.failpoints.evaluate(site, path.to_string_lossy().as_ref())
    }
}

/// Reconstruct the durable image after `sites` durable sites have
/// completed and the crash hits before the next one, replaying the
/// recorded `log` from scratch. `style` decides how much of the unsynced
/// delta accumulated since the last durable site also survives. Passing
/// `sites >=` the log's total durable-site count reproduces the final
/// image.
pub fn durable_image_at(
    log: &[VfsEvent],
    sites: usize,
    style: CrashStyle,
) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut visible: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
    let mut durable: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
    let mut applied = 0usize;
    for event in log {
        if event.is_durable_site() {
            if applied == sites {
                break;
            }
            applied += 1;
        }
        match event {
            VfsEvent::Open { path } | VfsEvent::Create { path } => {
                visible.entry(path.clone()).or_default();
                if matches!(event, VfsEvent::Create { .. }) {
                    if let Some(content) = visible.get_mut(path) {
                        content.clear();
                    }
                }
            }
            VfsEvent::Append { path, data } => {
                visible.entry(path.clone()).or_default().extend_from_slice(data);
            }
            VfsEvent::SetLen { path, len } => {
                let content = visible.entry(path.clone()).or_default();
                content.resize(*len as usize, 0);
            }
            VfsEvent::WriteFile { path, data } => {
                visible.insert(path.clone(), data.clone());
            }
            VfsEvent::Sync { path } => {
                let content = visible.get(path).cloned().unwrap_or_default();
                durable.insert(path.clone(), content);
            }
            VfsEvent::SyncPartial { path, up_to } => {
                let content = visible.get(path).cloned().unwrap_or_default();
                let keep = (*up_to as usize).min(content.len());
                durable.insert(
                    path.clone(),
                    content.get(..keep).unwrap_or(content.as_slice()).to_vec(),
                );
            }
            VfsEvent::Rename { from, to } => {
                if let Some(content) = visible.remove(from) {
                    visible.insert(to.clone(), content);
                }
                match durable.remove(from) {
                    Some(content) => {
                        durable.insert(to.clone(), content);
                    }
                    // Renaming a never-synced file: the target's old inode
                    // is gone and the new data was never written back.
                    None => {
                        durable.remove(to);
                    }
                }
            }
            VfsEvent::Remove { path } => {
                visible.remove(path);
                durable.remove(path);
            }
        }
    }
    match style {
        CrashStyle::DurableOnly => durable,
        CrashStyle::AllPending => visible,
        CrashStyle::TornHalf => {
            let mut out = durable;
            for (path, content) in &visible {
                let base_len = out.get(path).map_or(0, Vec::len);
                let base_matches = out.get(path).is_none_or(|base| content.starts_with(base));
                if base_matches && content.len() > base_len {
                    // Half of the unsynced suffix hit the platter.
                    let keep = base_len + (content.len() - base_len) / 2;
                    out.insert(
                        path.clone(),
                        content.get(..keep).unwrap_or(content.as_slice()).to_vec(),
                    );
                }
            }
            out
        }
    }
}

struct SimFile {
    path: PathBuf,
    state: Arc<Mutex<SimState>>,
    failpoints: Arc<Failpoints>,
}

impl SimFile {
    fn fail(&self, site: &str) -> Option<Fault> {
        self.failpoints.evaluate(site, self.path.to_string_lossy().as_ref())
    }
}

impl VfsFile for SimFile {
    fn append(&self, data: &[u8]) -> StorageResult<()> {
        let fault = self.fail("vfs.append");
        let mut state = self.state.lock();
        match fault {
            None => {
                state.visible.entry(self.path.clone()).or_default().extend_from_slice(data);
                state.record(VfsEvent::Append { path: self.path.clone(), data: data.to_vec() });
                Ok(())
            }
            Some(Fault::Torn) => {
                // A prefix of the write lands before the error surfaces.
                let torn = data.get(..data.len() / 2).unwrap_or(data);
                state.visible.entry(self.path.clone()).or_default().extend_from_slice(torn);
                state.record(VfsEvent::Append { path: self.path.clone(), data: torn.to_vec() });
                Err(injected("vfs.append", &self.path))
            }
            Some(Fault::Err) => Err(injected("vfs.append", &self.path)),
        }
    }

    fn sync_data(&self) -> StorageResult<()> {
        let fault = self.fail("vfs.sync");
        let mut state = self.state.lock();
        let content = state.visible.get(&self.path).cloned().unwrap_or_default();
        match fault {
            None => {
                state.durable.insert(self.path.clone(), content);
                state.record(VfsEvent::Sync { path: self.path.clone() });
                Ok(())
            }
            Some(Fault::Torn) => {
                // Short fsync: half the pending delta becomes durable,
                // then the call errors. Only meaningful when the visible
                // image extends the durable one; otherwise degrade to a
                // plain failure with no durable change.
                let base_len = state.durable.get(&self.path).map_or(0, Vec::len);
                let extends =
                    state.durable.get(&self.path).is_none_or(|base| content.starts_with(base));
                if extends && content.len() > base_len {
                    let keep = base_len + (content.len() - base_len) / 2;
                    let partial = content.get(..keep).unwrap_or(content.as_slice()).to_vec();
                    state.durable.insert(self.path.clone(), partial);
                    state.record(VfsEvent::SyncPartial {
                        path: self.path.clone(),
                        up_to: keep as u64,
                    });
                }
                Err(injected("vfs.sync", &self.path))
            }
            Some(Fault::Err) => Err(injected("vfs.sync", &self.path)),
        }
    }

    fn set_len(&self, len: u64) -> StorageResult<()> {
        if self.fail("vfs.set_len").is_some() {
            return Err(injected("vfs.set_len", &self.path));
        }
        let mut state = self.state.lock();
        state.visible.entry(self.path.clone()).or_default().resize(len as usize, 0);
        state.record(VfsEvent::SetLen { path: self.path.clone(), len });
        Ok(())
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        if self.fail("vfs.read").is_some() {
            return Err(injected("vfs.read", &self.path));
        }
        Ok(self.state.lock().visible.get(&self.path).cloned().unwrap_or_default())
    }
}

impl Vfs for SimVfs {
    fn open_append(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>> {
        if self.fail("vfs.open", path).is_some() {
            return Err(injected("vfs.open", path));
        }
        let mut state = self.state.lock();
        if !state.visible.contains_key(path) {
            state.visible.insert(path.to_path_buf(), Vec::new());
            state.record(VfsEvent::Open { path: path.to_path_buf() });
        }
        Ok(Arc::new(SimFile {
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
            failpoints: Arc::clone(&self.failpoints),
        }))
    }

    fn create(&self, path: &Path) -> StorageResult<Arc<dyn VfsFile>> {
        if self.fail("vfs.create", path).is_some() {
            return Err(injected("vfs.create", path));
        }
        let mut state = self.state.lock();
        state.visible.insert(path.to_path_buf(), Vec::new());
        state.record(VfsEvent::Create { path: path.to_path_buf() });
        Ok(Arc::new(SimFile {
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
            failpoints: Arc::clone(&self.failpoints),
        }))
    }

    fn try_read(&self, path: &Path) -> StorageResult<Option<Vec<u8>>> {
        if self.fail("vfs.read", path).is_some() {
            return Err(injected("vfs.read", path));
        }
        Ok(self.state.lock().visible.get(path).cloned())
    }

    fn write(&self, path: &Path, data: &[u8]) -> StorageResult<()> {
        let fault = self.fail("vfs.write", path);
        let mut state = self.state.lock();
        match fault {
            None => {
                state.visible.insert(path.to_path_buf(), data.to_vec());
                state.record(VfsEvent::WriteFile { path: path.to_path_buf(), data: data.to_vec() });
                Ok(())
            }
            Some(Fault::Torn) => {
                let torn = data.get(..data.len() / 2).unwrap_or(data);
                state.visible.insert(path.to_path_buf(), torn.to_vec());
                state.record(VfsEvent::WriteFile { path: path.to_path_buf(), data: torn.to_vec() });
                Err(injected("vfs.write", path))
            }
            Some(Fault::Err) => Err(injected("vfs.write", path)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> StorageResult<()> {
        if self.fail("vfs.rename", from).is_some() {
            // An interrupted rename leaves the source in place — the
            // crash variants before/after the rename site cover the two
            // serialized outcomes an atomic rename can have.
            return Err(injected("vfs.rename", from));
        }
        let mut state = self.state.lock();
        let Some(content) = state.visible.remove(from) else {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("sim rename source missing: {}", from.display()),
            )));
        };
        state.visible.insert(to.to_path_buf(), content);
        match state.durable.remove(from) {
            Some(content) => {
                state.durable.insert(to.to_path_buf(), content);
            }
            None => {
                state.durable.remove(to);
            }
        }
        state.record(VfsEvent::Rename { from: from.to_path_buf(), to: to.to_path_buf() });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> StorageResult<()> {
        if self.fail("vfs.remove", path).is_some() {
            return Err(injected("vfs.remove", path));
        }
        let mut state = self.state.lock();
        if state.visible.remove(path).is_none() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("sim remove of missing file: {}", path.display()),
            )));
        }
        state.durable.remove(path);
        state.record(VfsEvent::Remove { path: path.to_path_buf() });
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().visible.contains_key(path)
    }

    fn create_dir_all(&self, path: &Path) -> StorageResult<()> {
        if self.fail("vfs.create_dir", path).is_some() {
            return Err(injected("vfs.create_dir", path));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailAction;

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/sim").join(name)
    }

    #[test]
    fn appends_are_visible_but_not_durable_until_sync() {
        let vfs = SimVfs::new();
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"hello").unwrap();
        assert_eq!(vfs.visible_image().get(&p("WAL")).unwrap(), b"hello");
        assert!(!vfs.durable_image().contains_key(&p("WAL")), "no fsync yet");
        f.sync_data().unwrap();
        assert_eq!(vfs.durable_image().get(&p("WAL")).unwrap(), b"hello");
        assert_eq!(vfs.durable_site_count(), 1);
    }

    #[test]
    fn rename_and_remove_are_durable_sites() {
        let vfs = SimVfs::new();
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"x").unwrap();
        f.sync_data().unwrap();
        vfs.rename(&p("WAL"), &p("WAL.old")).unwrap();
        assert_eq!(vfs.durable_image().get(&p("WAL.old")).unwrap(), b"x");
        vfs.remove_file(&p("WAL.old")).unwrap();
        assert!(vfs.durable_image().is_empty());
        assert_eq!(vfs.durable_site_count(), 3);
    }

    #[test]
    fn renaming_an_unsynced_file_drops_the_durable_target() {
        let vfs = SimVfs::new();
        vfs.write(&p("SNAPSHOT"), b"old").unwrap();
        let f = vfs.create(&p("SNAPSHOT")).unwrap();
        f.append(b"old-durable").unwrap();
        f.sync_data().unwrap();
        // New snapshot written but never synced, then renamed over.
        vfs.write(&p("SNAPSHOT.tmp"), b"new").unwrap();
        vfs.rename(&p("SNAPSHOT.tmp"), &p("SNAPSHOT")).unwrap();
        assert_eq!(vfs.visible_image().get(&p("SNAPSHOT")).unwrap(), b"new");
        assert!(
            !vfs.durable_image().contains_key(&p("SNAPSHOT")),
            "unsynced rename must not keep the old durable inode"
        );
    }

    #[test]
    fn reconstruction_matches_live_durable_image_at_every_site() {
        let vfs = SimVfs::new();
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"one").unwrap();
        f.sync_data().unwrap();
        f.append(b"two").unwrap();
        f.sync_data().unwrap();
        vfs.rename(&p("WAL"), &p("WAL.old")).unwrap();
        vfs.write(&p("SNAPSHOT"), b"snap").unwrap();
        let snap = vfs.open_append(&p("SNAPSHOT")).unwrap();
        snap.sync_data().unwrap();
        vfs.remove_file(&p("WAL.old")).unwrap();

        let log = vfs.event_log();
        let total = vfs.durable_site_count();
        assert_eq!(total, 5);
        // Reconstructing at the final site count equals the live image.
        assert_eq!(durable_image_at(&log, total, CrashStyle::DurableOnly), vfs.durable_image());
        // At site 1, only the first append is durable.
        let at1 = durable_image_at(&log, 1, CrashStyle::DurableOnly);
        assert_eq!(at1.get(&p("WAL")).unwrap(), b"one");
        // At site 0 with AllPending, the first append is pending residue.
        let at0 = durable_image_at(&log, 0, CrashStyle::AllPending);
        assert_eq!(at0.get(&p("WAL")).unwrap(), b"one");
        assert!(durable_image_at(&log, 0, CrashStyle::DurableOnly).is_empty());
    }

    #[test]
    fn torn_half_grafts_half_of_the_unsynced_suffix() {
        let vfs = SimVfs::new();
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"base").unwrap();
        f.sync_data().unwrap();
        f.append(b"ABCDEFGH").unwrap(); // 8 pending bytes, never synced
        let log = vfs.event_log();
        let torn = durable_image_at(&log, 1, CrashStyle::TornHalf);
        assert_eq!(torn.get(&p("WAL")).unwrap(), b"baseABCD");
    }

    #[test]
    fn injected_sync_error_leaves_durable_image_unchanged() {
        let vfs = SimVfs::new();
        vfs.failpoints().set("vfs.sync", FailAction::Every(Fault::Err));
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"data").unwrap();
        let err = f.sync_data().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "typed Io error, got {err:?}");
        assert!(vfs.durable_image().is_empty());
        // Clearing the point lets a retry succeed — fsync failure is not
        // sticky at the VFS layer.
        vfs.failpoints().clear("vfs.sync");
        f.sync_data().unwrap();
        assert_eq!(vfs.durable_image().get(&p("WAL")).unwrap(), b"data");
    }

    #[test]
    fn torn_append_persists_a_prefix_and_errors() {
        let vfs = SimVfs::new();
        vfs.failpoints().set("vfs.append", FailAction::Nth(Fault::Torn, 2));
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"good").unwrap();
        let err = f.append(b"12345678").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(vfs.visible_image().get(&p("WAL")).unwrap(), b"good1234");
    }

    #[test]
    fn short_fsync_promotes_half_the_delta_then_errors() {
        let vfs = SimVfs::new();
        let f = vfs.open_append(&p("WAL")).unwrap();
        f.append(b"base").unwrap();
        f.sync_data().unwrap();
        vfs.failpoints().set("vfs.sync", FailAction::Every(Fault::Torn));
        f.append(b"ABCDEFGH").unwrap();
        assert!(f.sync_data().is_err());
        assert_eq!(vfs.durable_image().get(&p("WAL")).unwrap(), b"baseABCD");
        assert_eq!(vfs.durable_site_count(), 2, "a short fsync is still a durable site");
    }

    #[test]
    fn failpoints_are_instance_local() {
        let a = SimVfs::new();
        let b = SimVfs::new();
        a.failpoints().set("vfs.open", FailAction::Every(Fault::Err));
        assert!(a.open_append(&p("WAL")).is_err());
        assert!(b.open_append(&p("WAL")).is_ok(), "b's registry is untouched");
    }
}
