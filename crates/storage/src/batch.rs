//! Atomic write batches.
//!
//! A [`WriteBatch`] collects puts and deletes across any number of trees and
//! is applied by [`crate::store::Store::apply`] as a unit: one WAL entry, one
//! in-memory mutation under the store lock. Crash-recovery therefore sees
//! either all of a batch's effects or none — the property the server's
//! "vote + comment + index update" transactions rely on.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{StorageError, StorageResult};

/// One operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key` in `tree`.
    Put {
        /// Target tree.
        tree: String,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` from `tree` (no-op if absent).
    Delete {
        /// Target tree.
        tree: String,
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl BatchOp {
    /// The tree this operation touches.
    pub fn tree(&self) -> &str {
        match self {
            BatchOp::Put { tree, .. } | BatchOp::Delete { tree, .. } => tree,
        }
    }
}

/// An ordered collection of operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queue a put.
    pub fn put(
        &mut self,
        tree: impl Into<String>,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
    ) -> &mut Self {
        self.ops.push(BatchOp::Put { tree: tree.into(), key: key.into(), value: value.into() });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, tree: impl Into<String>, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp::Delete { tree: tree.into(), key: key.into() });
        self
    }

    /// The queued operations, in application order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Merge another batch's operations after this one's.
    pub fn extend(&mut self, other: WriteBatch) {
        self.ops.extend(other.ops);
    }
}

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

impl Encode for WriteBatch {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.ops.len() as u64);
        for op in &self.ops {
            match op {
                BatchOp::Put { tree, key, value } => {
                    w.put_u8(OP_PUT);
                    w.put_str(tree);
                    w.put_bytes(key);
                    w.put_bytes(value);
                }
                BatchOp::Delete { tree, key } => {
                    w.put_u8(OP_DELETE);
                    w.put_str(tree);
                    w.put_bytes(key);
                }
            }
        }
    }
}

impl Decode for WriteBatch {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let count = r.get_varint()? as usize;
        let mut ops = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = r.get_u8()?;
            let tree = r.get_str()?;
            let key = r.get_bytes()?;
            let op = match tag {
                OP_PUT => BatchOp::Put { tree, key, value: r.get_bytes()? },
                OP_DELETE => BatchOp::Delete { tree, key },
                other => return Err(StorageError::Decode(format!("invalid batch op tag {other}"))),
            };
            ops.push(op);
        }
        Ok(WriteBatch { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builder_accumulates_in_order() {
        let mut b = WriteBatch::new();
        b.put("users", b"alice".to_vec(), b"1".to_vec());
        b.delete("votes", b"v1".to_vec());
        assert_eq!(b.len(), 2);
        assert_eq!(b.ops()[0].tree(), "users");
        assert_eq!(b.ops()[1].tree(), "votes");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = WriteBatch::new();
        b.put("t1", b"k1".to_vec(), b"v1".to_vec());
        b.delete("t2", b"k2".to_vec());
        b.put("t1", Vec::new(), Vec::new());
        let bytes = b.encode_to_bytes();
        assert_eq!(WriteBatch::decode_from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut w = Writer::new();
        w.put_varint(1);
        w.put_u8(9);
        w.put_str("t");
        w.put_bytes(b"k");
        assert!(WriteBatch::decode_from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = WriteBatch::new();
        a.put("t", b"1".to_vec(), b"x".to_vec());
        let mut b = WriteBatch::new();
        b.delete("t", b"1".to_vec());
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(matches!(a.ops()[1], BatchOp::Delete { .. }));
    }

    fn arb_op() -> impl Strategy<Value = BatchOp> {
        prop_oneof![
            ("[a-z]{1,8}", any::<Vec<u8>>(), any::<Vec<u8>>()).prop_map(|(t, k, v)| BatchOp::Put {
                tree: t,
                key: k,
                value: v
            }),
            ("[a-z]{1,8}", any::<Vec<u8>>()).prop_map(|(t, k)| BatchOp::Delete { tree: t, key: k }),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(ops in proptest::collection::vec(arb_op(), 0..20)) {
            let batch = WriteBatch { ops };
            let bytes = batch.encode_to_bytes();
            prop_assert_eq!(WriteBatch::decode_from_bytes(&bytes).unwrap(), batch);
        }
    }
}
