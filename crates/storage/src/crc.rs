//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Guards every WAL entry so that torn writes and bit rot are detected on
//! replay (DESIGN.md invariant 6).

/// Lazily-built 256-entry lookup table for the reflected polynomial
/// 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    proptest! {
        #[test]
        fn single_bit_flip_changes_crc(data in proptest::collection::vec(any::<u8>(), 1..256), bit in 0usize..2048) {
            let mut flipped = data.clone();
            let bit = bit % (data.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc32(&data), crc32(&flipped));
        }

        #[test]
        fn deterministic(data: Vec<u8>) {
            prop_assert_eq!(crc32(&data), crc32(&data));
        }
    }
}
