//! Race-detection tests for the storage engine's concurrent protocols.
//!
//! Run with `cargo test -p softrep-storage --features loom --test loom`.
//! Each test executes its body under `loom::model_with_stats`, which
//! re-runs the closure under many seeded schedules; the vendored
//! `parking_lot` yields to the model scheduler around every lock
//! operation, so the production commit ledger and striped shard set are
//! interleaved at every lock boundary without test-only forks in the
//! production code. Every test asserts that the exploration exercised at
//! least three distinct interleavings, the same schedule-diversity floor
//! the server suite uses.
#![cfg(feature = "loom")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use softrep_storage::commit::CommitLedger;
use softrep_storage::{Store, WriteBatch};

const MIN_DISTINCT: usize = 3;

/// The group-commit protocol, modeled exactly as `Store::wait_durable`
/// drives it: each writer appends under the commit lock, then loops —
/// done if its sequence is durable, otherwise it either wins the
/// single-flight sync slot (performs the "fsync" off-lock, retires every
/// sequence up to its own) or yields and re-checks. The ledger must end
/// with every sequence durable, no sync marked in flight, and the
/// simulated fsync count exactly equal to the group-commit count — i.e.
/// `fsyncs + fsyncs_saved == writers`, the whole point of group commit.
#[test]
fn group_commit_ledger_retires_every_writer_with_one_fsync_per_group() {
    const WRITERS: u64 = 3;
    let stats = loom::model_with_stats(|| {
        let ledger = Arc::new(Mutex::new(CommitLedger::new()));
        let fsyncs = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                let fsyncs = Arc::clone(&fsyncs);
                loom::thread::spawn(move || {
                    let seq = ledger.lock().record_append(64);
                    loop {
                        let begun = {
                            let mut guard = ledger.lock();
                            if guard.is_durable(seq) {
                                return;
                            }
                            guard.try_begin_sync()
                        };
                        match begun {
                            Some(sync_to) => {
                                // The expensive part happens off-lock, so
                                // later appends can queue behind it and
                                // share the *next* sync.
                                fsyncs.fetch_add(1, Ordering::SeqCst);
                                ledger.lock().finish_sync(sync_to, true);
                            }
                            None => loom::thread::yield_now(),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }

        let guard = ledger.lock();
        assert_eq!(guard.appended_seq(), WRITERS);
        assert_eq!(guard.durable_seq(), WRITERS, "every writer observed durability");
        assert!(!guard.sync_in_flight(), "the sync slot is always released");
        let fsyncs = fsyncs.load(Ordering::SeqCst);
        assert_eq!(fsyncs, guard.group_commits(), "each won sync slot performs exactly one fsync");
        assert_eq!(
            guard.group_commits() + guard.fsyncs_saved(),
            WRITERS,
            "every append is either its group's fsync or a saved one"
        );
        assert!(guard.max_group_depth() >= 1 && guard.max_group_depth() <= WRITERS);
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

/// Cross-tree batch atomicity on the striped read path: a batch touching
/// two trees (which may live on different stripes) must never be half
/// visible. The reader polls tree `b` first and tree `a` second; because
/// `apply` holds every affected stripe's write lock simultaneously, any
/// schedule in which the reader sees the `b` write must also see the `a`
/// write.
#[test]
fn cross_stripe_batch_is_never_half_visible() {
    let stats = loom::model_with_stats(|| {
        let store = Arc::new(Store::in_memory());

        let writer = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                let mut batch = WriteBatch::new();
                batch.put("a", b"k".to_vec(), b"va".to_vec());
                batch.put("b", b"k".to_vec(), b"vb".to_vec());
                store.apply(&batch).expect("apply");
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                let b_seen = store.get("b", b"k").is_some();
                loom::thread::yield_now();
                let a_seen = store.get("a", b"k").is_some();
                (b_seen, a_seen)
            })
        };

        writer.join().expect("writer");
        let (b_seen, a_seen) = reader.join().expect("reader");
        assert!(!(b_seen && !a_seen), "reader saw tree b's write without tree a's: the batch tore");

        // Once the writer has joined, the whole batch is visible.
        assert_eq!(store.get("a", b"k").as_deref(), Some(&b"va"[..]));
        assert_eq!(store.get("b", b"k").as_deref(), Some(&b"vb"[..]));
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

/// Concurrent writers to different trees with an interleaved reader: the
/// commit lock serialises the appends, the stripes serve the reads, and
/// nothing deadlocks or loses a write under any explored schedule.
#[test]
fn concurrent_writers_on_distinct_trees_all_land() {
    let stats = loom::model_with_stats(|| {
        let store = Arc::new(Store::in_memory());

        let handles: Vec<_> = (0u8..2)
            .map(|w| {
                let store = Arc::clone(&store);
                loom::thread::spawn(move || {
                    let tree = format!("tree-{w}");
                    let mut batch = WriteBatch::new();
                    batch.put(tree, vec![w], vec![w]);
                    store.apply(&batch).expect("apply");
                })
            })
            .collect();
        let reader = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                // Reads may race the writers; they must simply never
                // block on WAL work or observe a torn tree map.
                let _ = store.tree_len("tree-0");
                loom::thread::yield_now();
                let _ = store.get("tree-1", &[1]);
            })
        };
        for h in handles {
            h.join().expect("writer");
        }
        reader.join().expect("reader");

        assert_eq!(store.get("tree-0", &[0]).as_deref(), Some(&[0u8][..]));
        assert_eq!(store.get("tree-1", &[1]).as_deref(), Some(&[1u8][..]));
        assert_eq!(store.stats().batches_applied, 2);
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}
