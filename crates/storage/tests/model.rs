//! Model-based testing: the store against a reference `BTreeMap` model,
//! through random operation sequences, durable reopen cycles, and
//! compactions interleaved at arbitrary points.

use std::collections::BTreeMap;

use proptest::prelude::*;

use softrep_storage::{Store, WriteBatch};

#[derive(Debug, Clone)]
enum Op {
    Put { tree: u8, key: Vec<u8>, value: Vec<u8> },
    Delete { tree: u8, key: Vec<u8> },
    Batch { ops: Vec<(u8, Vec<u8>, Option<Vec<u8>>)> },
    Compact,
    Reopen,
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Small key space on purpose: collisions exercise overwrite/delete.
    proptest::collection::vec(0u8..8, 1..4)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, arb_key(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(tree, key, value)| Op::Put { tree, key, value }),
        2 => (0u8..3, arb_key()).prop_map(|(tree, key)| Op::Delete { tree, key }),
        2 => proptest::collection::vec(
                (0u8..3, arb_key(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..8))),
                1..6,
            ).prop_map(|ops| Op::Batch { ops }),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn tree_name(tree: u8) -> String {
    format!("tree{tree}")
}

type Model = BTreeMap<(String, Vec<u8>), Vec<u8>>;

fn apply_to_model(model: &mut Model, op: &Op) {
    match op {
        Op::Put { tree, key, value } => {
            model.insert((tree_name(*tree), key.clone()), value.clone());
        }
        Op::Delete { tree, key } => {
            model.remove(&(tree_name(*tree), key.clone()));
        }
        Op::Batch { ops } => {
            for (tree, key, value) in ops {
                match value {
                    Some(v) => {
                        model.insert((tree_name(*tree), key.clone()), v.clone());
                    }
                    None => {
                        model.remove(&(tree_name(*tree), key.clone()));
                    }
                }
            }
        }
        Op::Compact | Op::Reopen => {}
    }
}

fn check_equivalence(store: &Store, model: &Model) {
    for tree in 0u8..3 {
        let name = tree_name(tree);
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter(|((t, _), _)| *t == name)
            .map(|((_, k), v)| (k.clone(), v.clone()))
            .collect();
        let actual = store.scan_all(&name);
        assert_eq!(actual, expected, "tree {name} diverged from the model");
        assert_eq!(store.tree_len(&name), expected.len());
        for (k, v) in &expected {
            assert_eq!(store.get(&name, k).as_ref(), Some(v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn in_memory_store_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let store = Store::in_memory();
        let mut model = Model::new();
        for op in &ops {
            match op {
                Op::Put { tree, key, value } => {
                    store.put(tree_name(*tree).as_str(), key.clone(), value.clone()).unwrap();
                }
                Op::Delete { tree, key } => {
                    store.delete(tree_name(*tree).as_str(), key.clone()).unwrap();
                }
                Op::Batch { ops } => {
                    let mut batch = WriteBatch::new();
                    for (tree, key, value) in ops {
                        match value {
                            Some(v) => batch.put(tree_name(*tree), key.clone(), v.clone()),
                            None => batch.delete(tree_name(*tree), key.clone()),
                        };
                    }
                    store.apply(&batch).unwrap();
                }
                Op::Compact | Op::Reopen => { /* no-ops in memory */ }
            }
            apply_to_model(&mut model, op);
        }
        check_equivalence(&store, &model);
    }

    #[test]
    fn durable_store_matches_model_across_reopens(
        ops in proptest::collection::vec(arb_op(), 1..40),
        case_id in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "softrep-model-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir).unwrap();
        let mut model = Model::new();

        for op in &ops {
            match op {
                Op::Put { tree, key, value } => {
                    store.put(tree_name(*tree).as_str(), key.clone(), value.clone()).unwrap();
                }
                Op::Delete { tree, key } => {
                    store.delete(tree_name(*tree).as_str(), key.clone()).unwrap();
                }
                Op::Batch { ops } => {
                    let mut batch = WriteBatch::new();
                    for (tree, key, value) in ops {
                        match value {
                            Some(v) => batch.put(tree_name(*tree), key.clone(), v.clone()),
                            None => batch.delete(tree_name(*tree), key.clone()),
                        };
                    }
                    store.apply(&batch).unwrap();
                }
                Op::Compact => store.compact().unwrap(),
                Op::Reopen => {
                    store.sync().unwrap();
                    drop(store);
                    store = Store::open(&dir).unwrap();
                }
            }
            apply_to_model(&mut model, op);
        }
        check_equivalence(&store, &model);

        // One final reopen must also preserve everything.
        store.sync().unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        check_equivalence(&store, &model);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_never_corrupt_earlier_state(
        ops in proptest::collection::vec(
            (0u8..2, arb_key(), proptest::collection::vec(any::<u8>(), 0..12)),
            2..20,
        ),
        cut in 1usize..64,
        case_id in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "softrep-torn-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            for (tree, key, value) in &ops {
                store.put(tree_name(*tree).as_str(), key.clone(), value.clone()).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear an arbitrary number of bytes off the WAL tail.
        let wal = dir.join("WAL");
        let bytes = std::fs::read(&wal).unwrap();
        let keep = bytes.len().saturating_sub(cut);
        std::fs::write(&wal, &bytes[..keep]).unwrap();

        // Recovery must succeed and yield a *prefix* of the write history.
        let store = Store::open(&dir).unwrap();
        let mut prefix_model = Model::new();
        let mut matched = store.tree_len(&tree_name(0)) == 0 && store.tree_len(&tree_name(1)) == 0;
        for i in 0..=ops.len() {
            if i > 0 {
                let (tree, key, value) = &ops[i - 1];
                prefix_model.insert((tree_name(*tree), key.clone()), value.clone());
            }
            let candidate: Vec<(String, Vec<u8>, Vec<u8>)> = prefix_model
                .iter()
                .map(|((t, k), v)| (t.clone(), k.clone(), v.clone()))
                .collect();
            let all_present = candidate
                .iter()
                .all(|(t, k, v)| store.get(t, k).as_ref() == Some(v));
            let sizes_match = store.tree_len(&tree_name(0)) + store.tree_len(&tree_name(1))
                == prefix_model.len();
            if all_present && sizes_match {
                matched = true;
            }
        }
        prop_assert!(matched, "recovered state is not any prefix of the write history");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
