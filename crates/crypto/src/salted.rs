//! Salted + peppered digests for stored credentials.
//!
//! The server stores only "a username, hashed password and a hashed e-mail
//! address" (§3.2). Section 2.2 refines the e-mail hash: a plain hash is
//! still brute-forceable from a dictionary of addresses, so the paper
//! proposes "concatenating the e-mail address with a secret string before
//! calculating the hash". We realise this as:
//!
//! * a server-wide [`SecretPepper`] (the paper's secret string) applied via
//!   HMAC, so a database-only breach cannot dictionary-attack e-mails; and
//! * per-record random salts plus iterated hashing ([`PasswordHash`]) for
//!   passwords, so equal passwords do not produce equal records.
//!
//! Experiment D8 (`exp_d8_privacy`) attacks these digests with a dictionary
//! to measure exactly the defence the paper argues for.

use rand::RngCore;

use crate::hex;
use crate::hmac::{constant_time_eq, hmac_sha256};
use crate::sha256::Sha256;

/// Server-wide secret used to pepper e-mail digests.
///
/// As long as the pepper stays out of the breached database, dictionary
/// attacks on the stored e-mail hashes are computationally useless.
#[derive(Clone)]
pub struct SecretPepper {
    secret: Vec<u8>,
}

impl SecretPepper {
    /// Wrap an operator-supplied secret string.
    pub fn new(secret: impl Into<Vec<u8>>) -> Self {
        SecretPepper { secret: secret.into() }
    }

    /// Generate a random 32-byte pepper.
    pub fn random(rng: &mut impl RngCore) -> Self {
        let mut secret = vec![0u8; 32];
        rng.fill_bytes(&mut secret);
        SecretPepper { secret }
    }

    /// Digest an e-mail address with the pepper. Addresses are lowercased
    /// and trimmed first so that `A@x.com` and `a@x.com ` dedupe together —
    /// the whole point of storing the hash is duplicate-account detection.
    pub fn email_digest(&self, email: &str) -> SaltedDigest {
        let canonical = email.trim().to_ascii_lowercase();
        SaltedDigest { bytes: hmac_sha256(&self.secret, canonical.as_bytes()) }
    }

    /// Digest an e-mail **without** the pepper — the naive scheme the paper
    /// warns about. Exists so experiment D8 can contrast the two.
    pub fn email_digest_unpeppered(email: &str) -> SaltedDigest {
        let canonical = email.trim().to_ascii_lowercase();
        SaltedDigest { bytes: Sha256::digest(canonical.as_bytes()) }
    }
}

/// An opaque 32-byte credential digest, comparable and hex-renderable but
/// deliberately not reversible.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaltedDigest {
    bytes: [u8; 32],
}

impl SaltedDigest {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// Hex rendering used as a storage key.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.bytes)
    }

    /// Parse back from hex (64 chars).
    pub fn from_hex(s: &str) -> Option<Self> {
        let raw = hex::decode(s)?;
        let bytes: [u8; 32] = raw.try_into().ok()?;
        Some(SaltedDigest { bytes })
    }
}

impl std::fmt::Debug for SaltedDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Truncated on purpose: debug logs must not become a digest oracle.
        write!(f, "SaltedDigest({}…)", &self.to_hex()[..8])
    }
}

/// Iterated, salted password hash (PBKDF-style; SHA-256 chained over
/// `salt || password` for a tunable iteration count).
#[derive(Clone, PartialEq, Eq)]
pub struct PasswordHash {
    salt: [u8; 16],
    iterations: u32,
    digest: [u8; 32],
}

/// Default work factor. High enough to be meaningfully iterated, low enough
/// that the agent simulations (thousands of registrations) stay fast.
pub const DEFAULT_PASSWORD_ITERATIONS: u32 = 1_000;

impl PasswordHash {
    /// Hash `password` under a fresh random salt.
    pub fn create(password: &str, rng: &mut impl RngCore) -> Self {
        Self::create_with_iterations(password, DEFAULT_PASSWORD_ITERATIONS, rng)
    }

    /// Hash with an explicit work factor (for tests and benchmarks).
    pub fn create_with_iterations(password: &str, iterations: u32, rng: &mut impl RngCore) -> Self {
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        let digest = Self::derive(&salt, iterations.max(1), password);
        PasswordHash { salt, iterations: iterations.max(1), digest }
    }

    /// Check `password` against this record in constant time.
    pub fn verify(&self, password: &str) -> bool {
        let candidate = Self::derive(&self.salt, self.iterations, password);
        constant_time_eq(&candidate, &self.digest)
    }

    fn derive(salt: &[u8; 16], iterations: u32, password: &str) -> [u8; 32] {
        let mut state = Sha256::new();
        state.update(salt);
        state.update(password.as_bytes());
        let mut acc = state.finalize();
        for _ in 1..iterations {
            let mut h = Sha256::new();
            h.update(&acc);
            h.update(salt);
            acc = h.finalize();
        }
        acc
    }

    /// Serialise to `iterations$salt_hex$digest_hex` for storage.
    pub fn encode(&self) -> String {
        format!("{}${}${}", self.iterations, hex::encode(&self.salt), hex::encode(&self.digest))
    }

    /// Parse the [`encode`](Self::encode) format.
    pub fn decode(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, '$');
        let iterations: u32 = parts.next()?.parse().ok()?;
        let salt: [u8; 16] = hex::decode(parts.next()?)?.try_into().ok()?;
        let digest: [u8; 32] = hex::decode(parts.next()?)?.try_into().ok()?;
        Some(PasswordHash { salt, iterations, digest })
    }
}

impl std::fmt::Debug for PasswordHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PasswordHash(iterations={})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn email_digest_canonicalises() {
        let pepper = SecretPepper::new("server secret");
        let a = pepper.email_digest("Alice@Example.COM");
        let b = pepper.email_digest("  alice@example.com ");
        assert_eq!(a, b);
    }

    #[test]
    fn email_digest_depends_on_pepper() {
        let p1 = SecretPepper::new("secret-one");
        let p2 = SecretPepper::new("secret-two");
        assert_ne!(p1.email_digest("a@b.c"), p2.email_digest("a@b.c"));
    }

    #[test]
    fn unpeppered_digest_is_dictionary_attackable() {
        // The naive scheme: anyone can recompute the digest from a guess.
        let stored = SecretPepper::email_digest_unpeppered("victim@mail.com");
        let guess = SecretPepper::email_digest_unpeppered("victim@mail.com");
        assert_eq!(stored, guess);
    }

    #[test]
    fn password_verify_accepts_correct_rejects_wrong() {
        let mut r = rng();
        let ph = PasswordHash::create_with_iterations("hunter2", 10, &mut r);
        assert!(ph.verify("hunter2"));
        assert!(!ph.verify("hunter3"));
        assert!(!ph.verify(""));
    }

    #[test]
    fn equal_passwords_get_distinct_records() {
        let mut r = rng();
        let a = PasswordHash::create_with_iterations("same", 10, &mut r);
        let b = PasswordHash::create_with_iterations("same", 10, &mut r);
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn password_hash_encodes_and_decodes() {
        let mut r = rng();
        let ph = PasswordHash::create_with_iterations("round-trip", 25, &mut r);
        let decoded = PasswordHash::decode(&ph.encode()).unwrap();
        assert!(decoded.verify("round-trip"));
        assert!(!decoded.verify("round-trap"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PasswordHash::decode("").is_none());
        assert!(PasswordHash::decode("10$zz$yy").is_none());
        assert!(PasswordHash::decode("not-a-number$aa$bb").is_none());
    }

    #[test]
    fn salted_digest_hex_roundtrip() {
        let pepper = SecretPepper::new("s");
        let d = pepper.email_digest("x@y.z");
        assert_eq!(SaltedDigest::from_hex(&d.to_hex()).unwrap(), d);
        assert!(SaltedDigest::from_hex("abcd").is_none());
    }

    proptest! {
        #[test]
        fn verify_only_accepts_original(pw1 in "[a-zA-Z0-9]{1,20}", pw2 in "[a-zA-Z0-9]{1,20}") {
            let mut r = rng();
            let ph = PasswordHash::create_with_iterations(&pw1, 5, &mut r);
            prop_assert_eq!(ph.verify(&pw2), pw1 == pw2);
        }

        #[test]
        fn distinct_emails_distinct_digests(a in "[a-z]{1,12}@[a-z]{1,8}\\.com", b in "[a-z]{1,12}@[a-z]{1,8}\\.com") {
            prop_assume!(a != b);
            let pepper = SecretPepper::new("p");
            prop_assert_ne!(pepper.email_digest(&a), pepper.email_digest(&b));
        }
    }
}
