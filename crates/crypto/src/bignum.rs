//! Arbitrary-precision unsigned integers, from scratch.
//!
//! The substrate for [`crate::rsa`] (and through it the blind-signature
//! pseudonym scheme of §5). Little-endian `u64` limbs, no leading zero
//! limbs (so the representation is canonical and `==` is structural).
//!
//! The operation set is exactly what modular crypto needs: comparison,
//! add/sub, schoolbook multiplication, binary long division, modular
//! exponentiation (square-and-multiply), modular inverse (extended
//! Euclid), gcd, random sampling and Miller–Rabin primality.
//! Everything is safe Rust with `u128` intermediates.

use rand::Rng;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing (most-significant) zeros.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// To big-endian bytes (minimal; empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the top limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this an even number?
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() as u32 * 64 - top.leading_zeros(),
        }
    }

    /// The value of bit `i` (0 = least significant).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        self.limbs.get(limb).is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    fn normalise(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Comparison.
    pub fn cmp_ref(&self, other: &BigUint) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        std::cmp::Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u128;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u128::from(self.limbs.get(i).copied().unwrap_or(0));
            let b = u128::from(other.limbs.get(i).copied().unwrap_or(0));
            let sum = a + b + carry;
            limbs.push(sum as u64);
            carry = sum >> 64;
        }
        if carry > 0 {
            limbs.push(carry as u64);
        }
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// `self - other`; panics on underflow (callers compare first).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self.cmp_ref(other) != std::cmp::Ordering::Less, "BigUint subtraction underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = i128::from(self.limbs[i]);
            let b = i128::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u64);
        }
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = u128::from(limbs[idx]) + u128::from(a) * u128::from(b) + carry;
                limbs[idx] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(limbs[idx]) + carry;
                limbs[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// `(self / divisor, self % divisor)` via binary long division.
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_ref(divisor) == std::cmp::Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient_limbs = vec![0u64; (shift / 64 + 1) as usize];
        let mut d = divisor.shl(shift);
        let mut i = shift as i64;
        while i >= 0 {
            if remainder.cmp_ref(&d) != std::cmp::Ordering::Less {
                remainder = remainder.sub(&d);
                quotient_limbs[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            d = d.shr1();
            i -= 1;
        }
        let mut q = BigUint { limbs: quotient_limbs };
        q.normalise();
        (q, remainder)
    }

    /// Right shift by one bit.
    pub fn shr1(&self) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut carry = 0u64;
        for &l in self.limbs.iter().rev() {
            limbs.push((l >> 1) | (carry << 63));
            carry = l & 1;
        }
        limbs.reverse();
        let mut n = BigUint { limbs };
        n.normalise();
        n
    }

    /// `self mod n`.
    pub fn rem(&self, n: &BigUint) -> BigUint {
        self.div_rem(n).1
    }

    /// `self * other mod n`.
    pub fn mul_mod(&self, other: &BigUint, n: &BigUint) -> BigUint {
        self.mul(other).rem(n)
    }

    /// `self ^ exp mod n` (left-to-right square-and-multiply).
    pub fn mod_exp(&self, exp: &BigUint, n: &BigUint) -> BigUint {
        assert!(!n.is_zero(), "modulus must be positive");
        if n == &BigUint::one() {
            return BigUint::zero();
        }
        let base = self.rem(n);
        let mut acc = BigUint::one();
        let bits = exp.bits();
        for i in (0..bits).rev() {
            acc = acc.mul_mod(&acc, n);
            if exp.bit(i) {
                acc = acc.mul_mod(&base, n);
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: the `x` with `self·x ≡ 1 (mod n)`, or `None` when
    /// `gcd(self, n) ≠ 1`. Extended Euclid with signed coefficients.
    pub fn mod_inverse(&self, n: &BigUint) -> Option<BigUint> {
        if n.is_zero() {
            return None;
        }
        // (old_r, r) remainders; (old_s, s) Bézout coefficients as
        // (magnitude, is_negative).
        let mut old_r = self.rem(n);
        let mut r = n.clone();
        let mut old_s = (BigUint::one(), false);
        let mut s = (BigUint::zero(), false);

        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            // new_s = old_s - q*s (signed).
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_r = std::mem::replace(&mut r, rem);
            old_s = std::mem::replace(&mut s, new_s);
        }
        if old_r != BigUint::one() {
            return None;
        }
        // Reduce old_s into [0, n).
        let (mag, neg) = old_s;
        let mag = mag.rem(n);
        Some(if neg && !mag.is_zero() { n.sub(&mag) } else { mag })
    }

    /// Uniform random value in `[0, bound)`. Panics on a zero bound.
    pub fn random_below(bound: &BigUint, rng: &mut impl Rng) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        let bytes = bits.div_ceil(8) as usize;
        loop {
            let mut buf = vec![0u8; bytes];
            rng.fill(&mut buf[..]);
            // Mask excess high bits so rejection sampling terminates fast.
            let excess = (bytes as u32 * 8) - bits;
            if excess > 0 {
                buf[0] &= 0xFF >> excess;
            }
            let candidate = BigUint::from_bytes_be(&buf);
            if candidate.cmp_ref(bound) == std::cmp::Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random integer with exactly `bits` bits (top bit set).
    pub fn random_bits(bits: u32, rng: &mut impl Rng) -> BigUint {
        assert!(bits > 0);
        let bytes = bits.div_ceil(8) as usize;
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        let excess = (bytes as u32 * 8) - bits;
        buf[0] &= 0xFF >> excess;
        buf[0] |= 0x80 >> excess; // force the top bit
        BigUint::from_bytes_be(&buf)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random
    /// bases (error probability ≤ 4^-rounds).
    pub fn is_probable_prime(&self, rounds: u32, rng: &mut impl Rng) -> bool {
        let two = BigUint::from_u64(2);
        if self.cmp_ref(&two) == std::cmp::Ordering::Less {
            return false;
        }
        if self == &two {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Quick trial division by small primes.
        for p in SMALL_PRIMES {
            let p_big = BigUint::from_u64(p);
            if self == &p_big {
                return true;
            }
            if self.rem(&p_big).is_zero() {
                return false;
            }
        }

        // n - 1 = d · 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0u32;
        while d.is_even() {
            d = d.shr1();
            s += 1;
        }

        'witness: for _ in 0..rounds {
            // a in [2, n-2].
            let a = loop {
                let candidate = BigUint::random_below(&n_minus_1, rng);
                if candidate.cmp_ref(&two) != std::cmp::Ordering::Less {
                    break candidate;
                }
            };
            let mut x = a.mod_exp(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn gen_prime(bits: u32, rng: &mut impl Rng) -> BigUint {
        assert!(bits >= 8, "prime sizes below 8 bits are pointless");
        loop {
            let mut candidate = BigUint::random_bits(bits, rng);
            // Force odd.
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.bits() == bits && candidate.is_probable_prime(20, rng) {
                return candidate;
            }
        }
    }

    /// Hex rendering (lowercase, no prefix, "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        crate::hex::encode(&self.to_bytes_be()).trim_start_matches('0').to_string()
    }

    /// Parse from hex.
    pub fn from_hex(s: &str) -> Option<BigUint> {
        let padded = if s.len() % 2 == 1 { format!("0{s}") } else { s.to_string() };
        crate::hex::decode(&padded).map(|b| BigUint::from_bytes_be(&b))
    }
}

/// Signed subtraction on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0.cmp_ref(&b.0) != std::cmp::Ordering::Less {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // -a - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
        // -a - (-b) = b - a.
        (true, true) => {
            if b.0.cmp_ref(&a.0) != std::cmp::Ordering::Less {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(Ord::cmp(self, other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_ref(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_arithmetic_matches_u128() {
        let a = n(0xFFFF_FFFF_FFFF_FFFF);
        let b = n(2);
        assert_eq!(a.add(&b).to_hex(), "10000000000000001");
        assert_eq!(a.mul(&b).to_hex(), "1fffffffffffffffe");
        assert_eq!(a.sub(&n(1)).to_hex(), "fffffffffffffffe");
        let (q, r) = a.div_rem(&n(10));
        assert_eq!(q.to_hex(), "1999999999999999");
        assert_eq!(r, n(5));
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x01],
            vec![0xFF; 9],
            vec![0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
        ];
        for bytes in cases {
            let v = BigUint::from_bytes_be(&bytes);
            let back = v.to_bytes_be();
            // Leading zeros are canonicalised away.
            let expected: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, expected);
        }
    }

    #[test]
    fn bit_accessors() {
        let v = BigUint::from_hex("8000000000000001").unwrap();
        assert_eq!(v.bits(), 64);
        assert!(v.bit(0));
        assert!(v.bit(63));
        assert!(!v.bit(1));
        assert!(!v.bit(64));
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn mod_exp_known_values() {
        // 5^117 mod 19 = 1 (Fermat: 5^18 ≡ 1, 117 = 6*18+9; 5^9 mod 19 = 1).
        assert_eq!(n(5).mod_exp(&n(117), &n(19)), n(1));
        // 2^10 mod 1000 = 24.
        assert_eq!(n(2).mod_exp(&n(10), &n(1000)), n(24));
        // x^0 = 1.
        assert_eq!(n(7).mod_exp(&BigUint::zero(), &n(13)), n(1));
        // mod 1 = 0.
        assert_eq!(n(7).mod_exp(&n(3), &n(1)), BigUint::zero());
    }

    #[test]
    fn mod_inverse_known_values() {
        // 3 * 5 = 15 ≡ 1 (mod 7).
        assert_eq!(n(3).mod_inverse(&n(7)).unwrap(), n(5));
        // gcd(6, 9) = 3: no inverse.
        assert!(n(6).mod_inverse(&n(9)).is_none());
        // Inverse of 1 is 1.
        assert_eq!(n(1).mod_inverse(&n(97)).unwrap(), n(1));
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 97, 7919, 104_729] {
            assert!(n(p).is_probable_prime(20, &mut rng), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 7917, 104_730, 341, 561, 645, 1105] {
            // 341/561/645/1105 are base-2 pseudoprimes / Carmichael numbers.
            assert!(!n(c).is_probable_prime(20, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn gen_prime_produces_primes_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [16u32, 64, 128] {
            let p = BigUint::gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(p.is_probable_prime(20, &mut rng));
        }
    }

    #[test]
    fn hex_roundtrip() {
        for hex in ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            assert_eq!(BigUint::from_hex(hex).unwrap().to_hex(), hex);
        }
        assert_eq!(BigUint::zero().to_hex(), "0");
    }

    fn arb_biguint() -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(|b| BigUint::from_bytes_be(&b))
    }

    proptest! {
        #[test]
        fn add_sub_roundtrip(a in arb_biguint(), b in arb_biguint()) {
            let sum = a.add(&b);
            prop_assert_eq!(sum.sub(&b), a.clone());
            prop_assert_eq!(sum.sub(&a), b);
        }

        #[test]
        fn mul_div_roundtrip(a in arb_biguint(), b in arb_biguint()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r.cmp_ref(&b) == std::cmp::Ordering::Less);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let product = n(a).mul(&n(b));
            let expected = u128::from(a) * u128::from(b);
            let mut bytes = [0u8; 16];
            bytes.copy_from_slice(&expected.to_be_bytes());
            prop_assert_eq!(product, BigUint::from_bytes_be(&bytes));
        }

        #[test]
        fn mod_exp_matches_naive(base in 0u64..1000, exp in 0u64..24, modulus in 2u64..1000) {
            let expected = {
                let mut acc: u128 = 1;
                for _ in 0..exp {
                    acc = acc * u128::from(base) % u128::from(modulus);
                }
                acc as u64
            };
            prop_assert_eq!(n(base).mod_exp(&n(exp), &n(modulus)), n(expected));
        }

        #[test]
        fn mod_inverse_is_an_inverse(a in 1u64..10_000, m in 2u64..10_000) {
            if let Some(inv) = n(a).mod_inverse(&n(m)) {
                prop_assert_eq!(n(a).mul_mod(&inv, &n(m)), n(1 % m));
            } else {
                prop_assert!(n(a).gcd(&n(m)) != n(1));
            }
        }

        #[test]
        fn shifts_are_consistent(a in arb_biguint(), bits in 0u32..100) {
            let shifted = a.shl(bits);
            let mut back = shifted;
            for _ in 0..bits {
                back = back.shr1();
            }
            prop_assert_eq!(back, a);
        }

        #[test]
        fn random_below_respects_bound(seed: u64, bound_bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
            let bound = BigUint::from_bytes_be(&bound_bytes);
            prop_assume!(!bound.is_zero());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..5 {
                let v = BigUint::random_below(&bound, &mut rng);
                prop_assert!(v.cmp_ref(&bound) == std::cmp::Ordering::Less);
            }
        }
    }
}
