//! Minimal hex encoding/decoding helpers.
//!
//! Used for digest rendering, database keys, and test vectors across the
//! workspace; kept here so no crate needs an external hex dependency.

/// Encode `bytes` as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (upper or lower case). Returns `None` on odd length
/// or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_known_bytes() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decodes_known_strings() {
        assert_eq!(decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(decode("00FF10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_odd_length_and_bad_chars() {
        assert!(decode("abc").is_none());
        assert!(decode("zz").is_none());
        assert!(decode("0g").is_none());
    }

    proptest! {
        #[test]
        fn roundtrip(bytes: Vec<u8>) {
            let enc = encode(&bytes);
            prop_assert_eq!(decode(&enc).unwrap(), bytes);
        }

        #[test]
        fn encode_is_lowercase_hex(bytes: Vec<u8>) {
            let enc = encode(&bytes);
            prop_assert!(enc.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
            prop_assert_eq!(enc.len(), bytes.len() * 2);
        }
    }
}
