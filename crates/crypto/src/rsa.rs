//! RSA over [`crate::bignum`], including Chaum blind signatures.
//!
//! Built for the §5 pseudonym proposal ("investigate how pseudonyms could
//! be used as a way to protect user privacy and anonymity, e.g. through
//! the use of idemix"): the reputation server blind-signs pseudonym
//! tokens for verified members, so a redeemed token proves membership
//! without revealing *which* member — the unlinkability idemix provides,
//! realised with the classic Chaum construction.
//!
//! Signing uses the full-domain-hash style `SHA-256(message)` as the RSA
//! input (adequate for the 32-byte random tokens this scheme signs;
//! general-purpose RSA-PSS padding is out of scope and documented as
//! such).

use rand::Rng;

use crate::bignum::BigUint;
use crate::sha256::Sha256;

/// The public (verification) half of an RSA key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    /// Public exponent (65537).
    pub e: BigUint,
}

/// A full RSA keypair.
#[derive(Debug, Clone)]
pub struct RsaKeypair {
    public: RsaPublicKey,
    d: BigUint,
}

/// An RSA signature (the value `s = m^d mod n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaSignature(pub BigUint);

impl RsaKeypair {
    /// Generate a keypair with a modulus of `bits` bits (two `bits/2`
    /// primes). 1024 is the experiment default; tests use smaller keys.
    pub fn generate(bits: u32, rng: &mut impl Rng) -> Self {
        assert!(bits >= 64, "modulus below 64 bits is meaningless");
        let e = BigUint::from_u64(65_537);
        loop {
            let p = BigUint::gen_prime(bits / 2, rng);
            let q = BigUint::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.mod_inverse(&phi) else { continue };
            return RsaKeypair { public: RsaPublicKey { n, e }, d };
        }
    }

    /// The verification key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Sign `message` (hashed internally).
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let m = hash_to_group(message, &self.public.n);
        RsaSignature(m.mod_exp(&self.d, &self.public.n))
    }

    /// Apply the private exponent to a raw group element — the server-side
    /// step of blind signing (the server never sees the message).
    pub fn sign_raw(&self, blinded: &BigUint) -> BigUint {
        blinded.rem(&self.public.n).mod_exp(&self.d, &self.public.n)
    }
}

impl RsaPublicKey {
    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &RsaSignature) -> bool {
        if signature.0.cmp_ref(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let expected = hash_to_group(message, &self.n);
        signature.0.mod_exp(&self.e, &self.n) == expected
    }
}

/// Map a message into Z_n via SHA-256 (full-domain-hash style, single
/// block — sufficient for ≥512-bit moduli over 256-bit digests).
fn hash_to_group(message: &[u8], n: &BigUint) -> BigUint {
    BigUint::from_bytes_be(&Sha256::digest(message)).rem(n)
}

/// Client-side state of one blind-signing exchange.
pub struct BlindingSession {
    r: BigUint,
    message: Vec<u8>,
    public: RsaPublicKey,
}

impl BlindingSession {
    /// Blind `message` under `public`: returns the session (keep private)
    /// and the blinded element to send to the signer.
    ///
    /// Blinding: `m' = m · r^e mod n` for random invertible `r` — the
    /// signer sees a uniformly random group element.
    pub fn blind(message: &[u8], public: &RsaPublicKey, rng: &mut impl Rng) -> (Self, BigUint) {
        let m = hash_to_group(message, &public.n);
        let r = loop {
            let candidate = BigUint::random_below(&public.n, rng);
            if !candidate.is_zero() && candidate.gcd(&public.n) == BigUint::one() {
                break candidate;
            }
        };
        let blinded = m.mul_mod(&r.mod_exp(&public.e, &public.n), &public.n);
        (BlindingSession { r, message: message.to_vec(), public: public.clone() }, blinded)
    }

    /// Unblind the signer's response: `s = s' · r⁻¹ mod n` is a valid
    /// signature on the original message. Returns `None` when the signer
    /// responded with garbage (the unblinded value fails verification).
    pub fn unblind(self, blind_signature: &BigUint) -> Option<RsaSignature> {
        let r_inv = self.r.mod_inverse(&self.public.n)?;
        let signature = RsaSignature(blind_signature.mul_mod(&r_inv, &self.public.n));
        self.public.verify(&self.message, &signature).then_some(signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeypair {
        // 256-bit keys keep debug-mode tests fast; the scheme is
        // size-agnostic and the experiments use 1024.
        let mut rng = StdRng::seed_from_u64(1);
        RsaKeypair::generate(256, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let sig = kp.sign(b"pseudonym token 42");
        assert!(kp.public_key().verify(b"pseudonym token 42", &sig));
        assert!(!kp.public_key().verify(b"pseudonym token 43", &sig));
    }

    #[test]
    fn signatures_do_not_transfer_between_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp1 = RsaKeypair::generate(256, &mut rng);
        let kp2 = RsaKeypair::generate(256, &mut rng);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn oversized_signature_values_are_rejected() {
        let kp = keypair();
        let huge = RsaSignature(kp.public_key().n.add(&BigUint::one()));
        assert!(!kp.public_key().verify(b"msg", &huge));
    }

    #[test]
    fn blind_signature_roundtrip_and_unlinkability_shape() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(3);

        let token = b"random-pseudonym-token-bytes";
        let (session, blinded) = BlindingSession::blind(token, kp.public_key(), &mut rng);

        // What the signer sees is not the hashed message…
        let m = hash_to_group(token, &kp.public_key().n);
        assert_ne!(blinded, m, "blinding must hide the message");

        // …yet the unblinded result verifies as a plain signature.
        let blind_sig = kp.sign_raw(&blinded);
        let signature = session.unblind(&blind_sig).expect("valid signature");
        assert!(kp.public_key().verify(token, &signature));
        // And equals the signature the signer would have produced directly
        // (determinism of RSA: s = m^d).
        assert_eq!(signature, kp.sign(token));
    }

    #[test]
    fn two_blindings_of_the_same_token_look_unrelated() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(4);
        let (_, blinded1) = BlindingSession::blind(b"tok", kp.public_key(), &mut rng);
        let (_, blinded2) = BlindingSession::blind(b"tok", kp.public_key(), &mut rng);
        assert_ne!(blinded1, blinded2, "fresh randomness per blinding");
    }

    #[test]
    fn garbage_blind_response_is_rejected() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(5);
        let (session, _) = BlindingSession::blind(b"tok", kp.public_key(), &mut rng);
        assert!(session.unblind(&BigUint::from_u64(12_345)).is_none());
    }
}
