//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The keyed digest behind the paper's brute-force defence for stored e-mail
//! hashes (§2.2): "concatenating the e-mail address with a secret string
//! before calculating the hash, rendering brute force attacks computationally
//! impossible as long as the secret string is kept secret." HMAC is the
//! standard construction for exactly this keyed-hash role.

use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than a block are first hashed down.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let kd = Sha256::digest(key);
        key_block[..32].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality for MAC/digest comparison.
///
/// Avoids early-exit timing leaks when the server verifies password or
/// e-mail digests during authentication.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_key_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_key_longer_than_block() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex::encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn constant_time_eq_behaves() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }

    proptest! {
        #[test]
        fn different_keys_different_macs(key1: Vec<u8>, key2: Vec<u8>, msg: Vec<u8>) {
            prop_assume!(key1 != key2);
            prop_assert_ne!(hmac_sha256(&key1, &msg), hmac_sha256(&key2, &msg));
        }

        #[test]
        fn ct_eq_matches_eq(a: Vec<u8>, b: Vec<u8>) {
            prop_assert_eq!(constant_time_eq(&a, &b), a == b);
        }
    }
}
