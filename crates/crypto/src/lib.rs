#![warn(missing_docs)]

//! Cryptographic primitives for the softwareputation reputation system.
//!
//! Everything here is implemented from scratch on top of the standard
//! library, because the reproduction rules forbid external crypto crates.
//! The primitives mirror what the paper (Boldt et al., SDM 2007) relies on:
//!
//! * [`sha1`] — the hash the paper names for software fingerprints (§3.3).
//! * [`sha256`] — the modern alternative offered alongside SHA-1.
//! * [`hmac`] — keyed digests used for salted/peppered e-mail hashing (§2.2).
//! * [`salted`] — salted + peppered e-mail and password digests with key
//!   stretching, matching the paper's "concatenate with a secret string"
//!   brute-force defence.
//! * [`puzzle`] — client puzzles ("computational penalties through variable
//!   hash guessing", §5 / ref \[3\]) used to throttle account registration.
//! * [`ots`] — Lamport and Winternitz one-time signatures used to model
//!   vendor code-signing for the enhanced white-listing proposal (§4.2).
//! * [`stream`] — a deterministic counter-mode stream cipher used as the
//!   per-hop layer cipher in the Tor-style anonymity substrate (§2.2).
//! * [`bignum`] / [`rsa`] — arbitrary-precision arithmetic and RSA with
//!   Chaum blind signatures, realising the §5 pseudonym proposal
//!   ("e.g. through the use of idemix") without external crates.
//! * [`hex`] — small hex encode/decode helpers shared by the workspace.
//!
//! # Security disclaimer
//!
//! These implementations are written for fidelity to the paper and for
//! reproducible experiments, not as audited production cryptography. SHA-1
//! in particular is kept because the paper specifies it; new deployments
//! should prefer [`sha256`].

pub mod bignum;
pub mod digest;
pub mod hex;
pub mod hmac;
pub mod ots;
pub mod puzzle;
pub mod rsa;
pub mod salted;
pub mod sha1;
pub mod sha256;
pub mod stream;

pub use digest::{Digest, DigestAlgorithm};
pub use hmac::hmac_sha256;
pub use salted::{PasswordHash, SaltedDigest, SecretPepper};
pub use sha1::Sha1;
pub use sha256::Sha256;
