//! Deterministic counter-mode stream cipher built on SHA-256.
//!
//! Used by `softrep-anonymity` as the per-hop layer cipher of the Tor-style
//! mix network (§2.2). Each relay shares a symmetric key with the circuit
//! builder; layers are added/removed by XORing with the keystream
//! `SHA-256(key || counter)`, i.e. encryption and decryption are the same
//! operation. A random per-message nonce is mixed into the keystream so key
//! reuse across messages does not reuse keystream.

use rand::RngCore;

use crate::sha256::Sha256;

/// A symmetric layer key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct StreamKey {
    bytes: [u8; 32],
}

impl StreamKey {
    /// Wrap explicit key bytes.
    pub fn new(bytes: [u8; 32]) -> Self {
        StreamKey { bytes }
    }

    /// Generate a random key.
    pub fn random(rng: &mut impl RngCore) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        StreamKey { bytes }
    }

    /// Derive a sub-key by hashing this key with a label; used to give each
    /// relay hop an independent key from one circuit secret.
    pub fn derive(&self, label: &[u8]) -> StreamKey {
        let mut h = Sha256::new();
        h.update(&self.bytes);
        h.update(label);
        StreamKey { bytes: h.finalize() }
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

impl std::fmt::Debug for StreamKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StreamKey(…)") // never log key material
    }
}

/// XOR `data` in place with the keystream for (`key`, `nonce`).
///
/// Applying it twice with the same parameters restores the plaintext.
pub fn apply_keystream(key: &StreamKey, nonce: &[u8; 16], data: &mut [u8]) {
    for (counter, chunk) in data.chunks_mut(32).enumerate() {
        let mut h = Sha256::new();
        h.update(key.as_bytes());
        h.update(nonce);
        h.update(&(counter as u64).to_be_bytes());
        let block = h.finalize();
        for (byte, k) in chunk.iter_mut().zip(block.iter()) {
            *byte ^= k;
        }
    }
}

/// Encrypt `plaintext` under `key` with a fresh random nonce; returns
/// `nonce || ciphertext`.
pub fn seal(key: &StreamKey, plaintext: &[u8], rng: &mut impl RngCore) -> Vec<u8> {
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    let mut out = Vec::with_capacity(16 + plaintext.len());
    out.extend_from_slice(&nonce);
    out.extend_from_slice(plaintext);
    apply_keystream(key, &nonce, &mut out[16..]);
    out
}

/// Invert [`seal`]: split off the nonce and decrypt. Returns `None` if the
/// message is too short to contain a nonce.
pub fn open(key: &StreamKey, sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 16 {
        return None;
    }
    let nonce: [u8; 16] = sealed[..16].try_into().expect("length checked");
    let mut plaintext = sealed[16..].to_vec();
    apply_keystream(key, &nonce, &mut plaintext);
    Some(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut r = rng();
        let key = StreamKey::random(&mut r);
        let sealed = seal(&key, b"query: software rating", &mut r);
        assert_eq!(open(&key, &sealed).unwrap(), b"query: software rating");
    }

    #[test]
    fn wrong_key_scrambles() {
        let mut r = rng();
        let k1 = StreamKey::random(&mut r);
        let k2 = StreamKey::random(&mut r);
        let sealed = seal(&k1, b"secret request", &mut r);
        assert_ne!(open(&k2, &sealed).unwrap(), b"secret request");
    }

    #[test]
    fn same_plaintext_different_ciphertexts() {
        let mut r = rng();
        let key = StreamKey::random(&mut r);
        let a = seal(&key, b"repeat", &mut r);
        let b = seal(&key, b"repeat", &mut r);
        assert_ne!(a, b, "random nonce must prevent deterministic ciphertexts");
    }

    #[test]
    fn open_rejects_truncated() {
        let key = StreamKey::random(&mut rng());
        assert!(open(&key, &[0u8; 10]).is_none());
    }

    #[test]
    fn derived_keys_differ_by_label() {
        let base = StreamKey::new([7u8; 32]);
        assert_ne!(base.derive(b"hop-0").as_bytes(), base.derive(b"hop-1").as_bytes());
        assert_eq!(base.derive(b"hop-0").as_bytes(), base.derive(b"hop-0").as_bytes());
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let mut r = rng();
        let key = StreamKey::random(&mut r);
        let sealed = seal(&key, b"", &mut r);
        assert_eq!(open(&key, &sealed).unwrap(), b"");
    }

    proptest! {
        #[test]
        fn keystream_is_involutive(key_bytes: [u8; 32], nonce: [u8; 16], mut data: Vec<u8>) {
            let key = StreamKey::new(key_bytes);
            let original = data.clone();
            apply_keystream(&key, &nonce, &mut data);
            apply_keystream(&key, &nonce, &mut data);
            prop_assert_eq!(data, original);
        }

        #[test]
        fn roundtrip_arbitrary(data: Vec<u8>, seed: u64) {
            let mut r = StdRng::seed_from_u64(seed);
            let key = StreamKey::random(&mut r);
            let sealed = seal(&key, &data, &mut r);
            prop_assert_eq!(open(&key, &sealed).unwrap(), data);
        }
    }
}
