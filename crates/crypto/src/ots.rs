//! Hash-based one-time signatures for vendor code-signing.
//!
//! The paper's "enhanced white listing" proposal (§4.2) auto-allows files
//! "digitally signed by a trusted vendor e.g., Microsoft or Adobe". To model
//! this without importing external crypto, we implement real (not stubbed)
//! signatures from our own hash primitives:
//!
//! * [`LamportKeypair`] — the classic Lamport scheme: 256 secret pairs,
//!   reveal one of each pair per message bit.
//! * [`WinternitzKeypair`] — the space-efficient W-OTS variant (w = 16,
//!   i.e. 4 bits per chain) with the standard checksum that prevents
//!   forgery-by-advancing-chains.
//!
//! Both are *one-time* schemes: each keypair signs exactly one message (in
//! our setting, one executable release). The vendor registry in
//! `softrep-client` therefore stores one public key per signed release,
//! which matches how the experiments use them.

use rand::RngCore;

use crate::sha256::Sha256;

/// Number of message bits signed (we always sign SHA-256 digests).
const MSG_BITS: usize = 256;

/// A Lamport one-time signing keypair.
pub struct LamportKeypair {
    /// `secrets[bit][value]` — 256 pairs of 32-byte preimages.
    secrets: Box<[[[u8; 32]; 2]; MSG_BITS]>,
    public: LamportPublicKey,
}

/// The public half: hashes of every preimage.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    hashes: Box<[[[u8; 32]; 2]; MSG_BITS]>,
}

/// A Lamport signature: one revealed preimage per message bit.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveals: Box<[[u8; 32]; MSG_BITS]>,
}

impl LamportKeypair {
    /// Generate a fresh keypair from `rng`.
    pub fn generate(rng: &mut impl RngCore) -> Self {
        let mut secrets = Box::new([[[0u8; 32]; 2]; MSG_BITS]);
        let mut hashes = Box::new([[[0u8; 32]; 2]; MSG_BITS]);
        for bit in 0..MSG_BITS {
            for v in 0..2 {
                rng.fill_bytes(&mut secrets[bit][v]);
                hashes[bit][v] = Sha256::digest(&secrets[bit][v]);
            }
        }
        LamportKeypair { secrets, public: LamportPublicKey { hashes } }
    }

    /// The verifying key to publish.
    pub fn public_key(&self) -> &LamportPublicKey {
        &self.public
    }

    /// Sign `message` (it is hashed internally, so any length is fine).
    pub fn sign(&self, message: &[u8]) -> LamportSignature {
        let digest = Sha256::digest(message);
        let mut reveals = Box::new([[0u8; 32]; MSG_BITS]);
        for bit in 0..MSG_BITS {
            let value = bit_of(&digest, bit);
            reveals[bit] = self.secrets[bit][value];
        }
        LamportSignature { reveals }
    }
}

impl LamportPublicKey {
    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &LamportSignature) -> bool {
        let digest = Sha256::digest(message);
        for bit in 0..MSG_BITS {
            let value = bit_of(&digest, bit);
            if Sha256::digest(&signature.reveals[bit]) != self.hashes[bit][value] {
                return false;
            }
        }
        true
    }

    /// A compact fingerprint of the public key (hash of all pair hashes),
    /// used as the registry identifier for a signed release.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for pair in self.hashes.iter() {
            h.update(&pair[0]);
            h.update(&pair[1]);
        }
        h.finalize()
    }
}

fn bit_of(digest: &[u8; 32], bit: usize) -> usize {
    ((digest[bit / 8] >> (7 - bit % 8)) & 1) as usize
}

// ---------------------------------------------------------------------------
// Winternitz OTS
// ---------------------------------------------------------------------------

/// Chain parameter: 4 bits per chain (w = 16).
const W_BITS: usize = 4;
const W: u32 = 1 << W_BITS;
/// 256-bit digest / 4 bits = 64 message chains.
const MSG_CHAINS: usize = MSG_BITS / W_BITS;
/// Checksum: max value 64 * 15 = 960 < 2^10, so 3 chains of 4 bits cover it.
const CHECKSUM_CHAINS: usize = 3;
const TOTAL_CHAINS: usize = MSG_CHAINS + CHECKSUM_CHAINS;

/// A Winternitz one-time keypair (w = 16). Signatures are 67 × 32 bytes,
/// an ~8× size reduction over Lamport.
pub struct WinternitzKeypair {
    secrets: Box<[[u8; 32]; TOTAL_CHAINS]>,
    public: WinternitzPublicKey,
}

/// The Winternitz verifying key: each chain's secret hashed `W - 1` times.
#[derive(Clone, PartialEq, Eq)]
pub struct WinternitzPublicKey {
    ends: Box<[[u8; 32]; TOTAL_CHAINS]>,
}

/// A Winternitz signature: each chain advanced by its digit value.
#[derive(Clone, PartialEq, Eq)]
pub struct WinternitzSignature {
    chains: Box<[[u8; 32]; TOTAL_CHAINS]>,
}

impl WinternitzKeypair {
    /// Generate a fresh keypair from `rng`.
    pub fn generate(rng: &mut impl RngCore) -> Self {
        let mut secrets = Box::new([[0u8; 32]; TOTAL_CHAINS]);
        let mut ends = Box::new([[0u8; 32]; TOTAL_CHAINS]);
        for i in 0..TOTAL_CHAINS {
            rng.fill_bytes(&mut secrets[i]);
            ends[i] = iterate_hash(&secrets[i], W - 1);
        }
        WinternitzKeypair { secrets, public: WinternitzPublicKey { ends } }
    }

    /// The verifying key to publish.
    pub fn public_key(&self) -> &WinternitzPublicKey {
        &self.public
    }

    /// Sign `message`.
    pub fn sign(&self, message: &[u8]) -> WinternitzSignature {
        let digits = digits_with_checksum(message);
        let mut chains = Box::new([[0u8; 32]; TOTAL_CHAINS]);
        for (i, chain) in chains.iter_mut().enumerate() {
            *chain = iterate_hash(&self.secrets[i], u32::from(digits[i]));
        }
        WinternitzSignature { chains }
    }
}

impl WinternitzPublicKey {
    /// Verify `signature` over `message` by completing every chain.
    pub fn verify(&self, message: &[u8], signature: &WinternitzSignature) -> bool {
        let digits = digits_with_checksum(message);
        for (i, chain) in signature.chains.iter().enumerate() {
            let completed = iterate_hash(chain, W - 1 - u32::from(digits[i]));
            if completed != self.ends[i] {
                return false;
            }
        }
        true
    }

    /// Compact registry fingerprint.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for end in self.ends.iter() {
            h.update(end);
        }
        h.finalize()
    }
}

/// Split the message digest into 4-bit digits and append the Winternitz
/// checksum digits. The checksum makes every digit *decrease* somewhere if
/// an attacker advances any message chain, so forgeries require inverting
/// the hash.
fn digits_with_checksum(message: &[u8]) -> [u8; TOTAL_CHAINS] {
    let digest = Sha256::digest(message);
    let mut digits = [0u8; TOTAL_CHAINS];
    for (i, d) in digits.iter_mut().take(MSG_CHAINS).enumerate() {
        let byte = digest[i / 2];
        *d = if i.is_multiple_of(2) { byte >> 4 } else { byte & 0x0f };
    }
    let checksum: u32 = digits[..MSG_CHAINS].iter().map(|&d| W - 1 - u32::from(d)).sum();
    digits[MSG_CHAINS] = ((checksum >> 8) & 0x0f) as u8;
    digits[MSG_CHAINS + 1] = ((checksum >> 4) & 0x0f) as u8;
    digits[MSG_CHAINS + 2] = (checksum & 0x0f) as u8;
    digits
}

fn iterate_hash(start: &[u8; 32], times: u32) -> [u8; 32] {
    let mut acc = *start;
    for _ in 0..times {
        acc = Sha256::digest(&acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn lamport_sign_verify_roundtrip() {
        let kp = LamportKeypair::generate(&mut rng());
        let sig = kp.sign(b"vendor release 1.0");
        assert!(kp.public_key().verify(b"vendor release 1.0", &sig));
    }

    #[test]
    fn lamport_rejects_modified_message() {
        let kp = LamportKeypair::generate(&mut rng());
        let sig = kp.sign(b"original binary bytes");
        assert!(!kp.public_key().verify(b"tampered binary bytes", &sig));
    }

    #[test]
    fn lamport_rejects_signature_from_other_key() {
        let mut r = rng();
        let kp1 = LamportKeypair::generate(&mut r);
        let kp2 = LamportKeypair::generate(&mut r);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn lamport_rejects_bit_flipped_signature() {
        let kp = LamportKeypair::generate(&mut rng());
        let mut sig = kp.sign(b"msg");
        sig.reveals[17][0] ^= 0x01;
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn winternitz_sign_verify_roundtrip() {
        let kp = WinternitzKeypair::generate(&mut rng());
        let sig = kp.sign(b"setup.exe contents");
        assert!(kp.public_key().verify(b"setup.exe contents", &sig));
    }

    #[test]
    fn winternitz_rejects_modified_message() {
        let kp = WinternitzKeypair::generate(&mut rng());
        let sig = kp.sign(b"clean installer");
        assert!(!kp.public_key().verify(b"bundled adware installer", &sig));
    }

    #[test]
    fn winternitz_rejects_advanced_chain_forgery() {
        // The classic attack W-OTS checksums exist to stop: advance one
        // message chain by a hash step and claim a higher digit.
        let kp = WinternitzKeypair::generate(&mut rng());
        let mut sig = kp.sign(b"msg");
        sig.chains[0] = Sha256::digest(&sig.chains[0]);
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn winternitz_rejects_other_key() {
        let mut r = rng();
        let kp1 = WinternitzKeypair::generate(&mut r);
        let kp2 = WinternitzKeypair::generate(&mut r);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let mut r = rng();
        let kp1 = WinternitzKeypair::generate(&mut r);
        let kp2 = WinternitzKeypair::generate(&mut r);
        assert_eq!(kp1.public_key().fingerprint(), kp1.public_key().fingerprint());
        assert_ne!(kp1.public_key().fingerprint(), kp2.public_key().fingerprint());
        let lk = LamportKeypair::generate(&mut r);
        assert_eq!(lk.public_key().fingerprint(), lk.public_key().fingerprint());
    }

    #[test]
    fn digit_checksum_covers_range() {
        // All-zero digest digits yield maximum checksum 960 = 0x3c0.
        let digits = digits_with_checksum(b"");
        let checksum: u32 = digits[..MSG_CHAINS].iter().map(|&d| W - 1 - u32::from(d)).sum();
        let reconstructed = (u32::from(digits[MSG_CHAINS]) << 8)
            | (u32::from(digits[MSG_CHAINS + 1]) << 4)
            | u32::from(digits[MSG_CHAINS + 2]);
        assert_eq!(checksum, reconstructed);
    }
}
