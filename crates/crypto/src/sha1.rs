//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The paper fingerprints each executable with "a generated SHA-1 digest"
//! (§3.3); the reputation database keys every software record by this value,
//! which is why identity is broken by any byte change (a feature the paper
//! relies on: "it is impossible to alter the program's behaviour and still
//! keep the ratings").
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! retained for fidelity. [`crate::sha256`] provides the modern option.

/// Incremental SHA-1 hasher.
///
/// ```
/// use softrep_crypto::sha1::Sha1;
/// let d = Sha1::digest(b"abc");
/// assert_eq!(softrep_crypto::hex::encode(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-full buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Apply padding and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Length is appended outside of `update` accounting.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    fn hexdigest(data: &[u8]) -> String {
        hex::encode(&Sha1::digest(data))
    }

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn empty_vector() {
        assert_eq!(hexdigest(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(hexdigest(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hexdigest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hexdigest(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hexdigest(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn boundary_lengths_55_56_57_63_64_65() {
        // Exercise every padding branch around the block boundary.
        for n in [55usize, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0x42u8; n];
            let once = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), once, "length {n}");
        }
    }

    proptest! {
        #[test]
        fn incremental_equals_oneshot(data: Vec<u8>, split in 0usize..1024) {
            let split = split.min(data.len());
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha1::digest(&data));
        }

        #[test]
        fn distinct_inputs_distinct_digests(a: Vec<u8>, b: Vec<u8>) {
            prop_assume!(a != b);
            prop_assert_ne!(Sha1::digest(&a), Sha1::digest(&b));
        }
    }
}
