//! Common digest abstractions shared by [`crate::sha1`] and [`crate::sha256`].

use std::fmt;

use crate::hex;

/// The digest algorithms available for software fingerprinting.
///
/// The paper names SHA-1 explicitly (§3.3: "a generated SHA-1 digest");
/// SHA-256 is offered as the modern equivalent so experiments can compare
/// fingerprinting cost without changing identity semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DigestAlgorithm {
    /// 160-bit SHA-1, as specified in the paper.
    #[default]
    Sha1,
    /// 256-bit SHA-2.
    Sha256,
}

impl DigestAlgorithm {
    /// Length of the produced digest in bytes.
    pub fn output_len(self) -> usize {
        match self {
            DigestAlgorithm::Sha1 => 20,
            DigestAlgorithm::Sha256 => 32,
        }
    }

    /// Digest `data` with this algorithm.
    pub fn digest(self, data: &[u8]) -> Digest {
        match self {
            DigestAlgorithm::Sha1 => Digest::from_sha1(crate::sha1::Sha1::digest(data)),
            DigestAlgorithm::Sha256 => Digest::from_sha256(crate::sha256::Sha256::digest(data)),
        }
    }
}

impl fmt::Display for DigestAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigestAlgorithm::Sha1 => f.write_str("sha1"),
            DigestAlgorithm::Sha256 => f.write_str("sha256"),
        }
    }
}

/// An algorithm-tagged digest value.
///
/// Stored inline (no heap allocation); digests shorter than 32 bytes are
/// zero-padded internally and compared only over their real length.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest {
    algorithm: DigestAlgorithm,
    bytes: [u8; 32],
}

impl Digest {
    /// Wrap a raw SHA-1 output.
    pub fn from_sha1(raw: [u8; 20]) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..20].copy_from_slice(&raw);
        Digest { algorithm: DigestAlgorithm::Sha1, bytes }
    }

    /// Wrap a raw SHA-256 output.
    pub fn from_sha256(raw: [u8; 32]) -> Self {
        Digest { algorithm: DigestAlgorithm::Sha256, bytes: raw }
    }

    /// The algorithm that produced this digest.
    pub fn algorithm(&self) -> DigestAlgorithm {
        self.algorithm
    }

    /// The digest bytes (length depends on the algorithm).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.algorithm.output_len()]
    }

    /// Lowercase hex rendering, e.g. for database keys and display.
    pub fn to_hex(&self) -> String {
        hex::encode(self.as_bytes())
    }

    /// Parse a digest back from its algorithm tag and hex string.
    pub fn from_hex(algorithm: DigestAlgorithm, s: &str) -> Option<Self> {
        let raw = hex::decode(s)?;
        if raw.len() != algorithm.output_len() {
            return None;
        }
        let mut bytes = [0u8; 32];
        bytes[..raw.len()].copy_from_slice(&raw);
        Some(Digest { algorithm, bytes })
    }

    /// A short (8 hex char) prefix used in human-facing reports.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.algorithm, self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_digest_roundtrips_hex() {
        let d = DigestAlgorithm::Sha1.digest(b"abc");
        let parsed = Digest::from_hex(DigestAlgorithm::Sha1, &d.to_hex()).unwrap();
        assert_eq!(d, parsed);
        assert_eq!(d.as_bytes().len(), 20);
    }

    #[test]
    fn sha256_digest_roundtrips_hex() {
        let d = DigestAlgorithm::Sha256.digest(b"abc");
        let parsed = Digest::from_hex(DigestAlgorithm::Sha256, &d.to_hex()).unwrap();
        assert_eq!(d, parsed);
        assert_eq!(d.as_bytes().len(), 32);
    }

    #[test]
    fn digests_of_different_algorithms_never_compare_equal() {
        let a = DigestAlgorithm::Sha1.digest(b"x");
        let b = DigestAlgorithm::Sha256.digest(b"x");
        assert_ne!(a, b);
    }

    #[test]
    fn from_hex_rejects_wrong_length() {
        assert!(Digest::from_hex(DigestAlgorithm::Sha1, "abcd").is_none());
        let h = DigestAlgorithm::Sha256.digest(b"x").to_hex();
        assert!(Digest::from_hex(DigestAlgorithm::Sha1, &h).is_none());
    }

    #[test]
    fn short_is_prefix_of_hex() {
        let d = DigestAlgorithm::Sha1.digest(b"hello");
        assert!(d.to_hex().starts_with(&d.short()));
        assert_eq!(d.short().len(), 8);
    }
}
