//! Client puzzles: "computational penalties through variable hash guessing".
//!
//! Section 5 of the paper proposes DoS-resistant account creation following
//! Aura et al. \[3\]: before the server accepts a registration, the client must
//! solve a puzzle whose cost the server can tune. This models the same
//! "non-automatable process" role the CAPTCHA plays in §2.1 — both impose a
//! per-account cost that makes mass Sybil registration expensive.
//!
//! The puzzle: given a random challenge `c` and difficulty `d`, find a nonce
//! `n` such that `SHA-256(c || n)` starts with `d` zero bits. Expected search
//! cost is `2^d` hash evaluations; verification is a single hash.

use rand::RngCore;

use crate::hex;
use crate::sha256::Sha256;

/// A puzzle challenge issued by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// Random server-chosen bytes binding the puzzle to one registration.
    pub nonce: [u8; 16],
    /// Required number of leading zero bits in the solution digest.
    pub difficulty: u8,
}

/// A client's claimed solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solution {
    /// The nonce found by brute-force search.
    pub nonce: u64,
}

impl Challenge {
    /// Issue a new challenge at `difficulty` leading zero bits.
    ///
    /// Difficulties above 32 are clamped: they would make even the legitimate
    /// registration path take minutes, which no deployment would configure.
    pub fn issue(difficulty: u8, rng: &mut impl RngCore) -> Self {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        Challenge { nonce, difficulty: difficulty.min(32) }
    }

    /// Brute-force a solution. Returns the solution and the number of hash
    /// evaluations performed (the measured cost, used by experiment D3).
    pub fn solve(&self) -> (Solution, u64) {
        let mut attempts = 0u64;
        for candidate in 0u64.. {
            attempts += 1;
            if self.check_nonce(candidate) {
                return (Solution { nonce: candidate }, attempts);
            }
        }
        unreachable!("a solution exists for every difficulty <= 32")
    }

    /// Verify a claimed solution with a single hash evaluation.
    pub fn verify(&self, solution: Solution) -> bool {
        self.check_nonce(solution.nonce)
    }

    fn check_nonce(&self, nonce: u64) -> bool {
        let mut h = Sha256::new();
        h.update(&self.nonce);
        h.update(&nonce.to_be_bytes());
        let digest = h.finalize();
        leading_zero_bits(&digest) >= u32::from(self.difficulty)
    }

    /// Serialise for the wire: `difficulty:nonce_hex`.
    pub fn encode(&self) -> String {
        format!("{}:{}", self.difficulty, hex::encode(&self.nonce))
    }

    /// Parse the [`encode`](Self::encode) format.
    pub fn decode(s: &str) -> Option<Self> {
        let (d, n) = s.split_once(':')?;
        let difficulty: u8 = d.parse().ok()?;
        let nonce: [u8; 16] = hex::decode(n)?.try_into().ok()?;
        Some(Challenge { nonce, difficulty })
    }
}

fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut bits = 0;
    for &b in digest {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn zero_difficulty_is_free() {
        let c = Challenge::issue(0, &mut rng());
        let (sol, attempts) = c.solve();
        assert_eq!(attempts, 1);
        assert!(c.verify(sol));
    }

    #[test]
    fn solutions_verify_and_non_solutions_do_not() {
        // Fixed seed, so both outcomes below are deterministic. `solve`
        // returns the *smallest* valid nonce, hence every smaller nonce is a
        // verified non-solution.
        let c = Challenge::issue(8, &mut rng());
        let (sol, attempts) = c.solve();
        assert!(c.verify(sol));
        for wrong in 0..sol.nonce {
            assert!(!c.verify(Solution { nonce: wrong }));
        }
        assert_eq!(attempts, sol.nonce + 1);
    }

    #[test]
    fn harder_puzzles_cost_more_on_average() {
        let mut r = rng();
        let mut cost = |difficulty: u8| -> u64 {
            let trials = 20;
            let mut total = 0;
            for _ in 0..trials {
                let c = Challenge::issue(difficulty, &mut r);
                total += c.solve().1;
            }
            total / trials
        };
        let easy = cost(2);
        let hard = cost(8);
        assert!(hard > easy, "difficulty 8 ({hard}) should out-cost difficulty 2 ({easy})");
    }

    #[test]
    fn difficulty_is_clamped() {
        let c = Challenge::issue(200, &mut rng());
        assert_eq!(c.difficulty, 32);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = Challenge::issue(12, &mut rng());
        assert_eq!(Challenge::decode(&c.encode()).unwrap(), c);
        assert!(Challenge::decode("nonsense").is_none());
        assert!(Challenge::decode("12:zz").is_none());
    }

    #[test]
    fn solution_does_not_transfer_between_challenges() {
        let mut r = rng();
        let a = Challenge::issue(10, &mut r);
        let b = Challenge::issue(10, &mut r);
        let (sol, _) = a.solve();
        // With 2^-10 probability this could verify; use fixed seed so the
        // test is deterministic and verified to be a counterexample.
        assert!(a.verify(sol));
        assert!(!b.verify(sol));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn solved_puzzles_always_verify(difficulty in 0u8..10, seed: u64) {
            let mut r = StdRng::seed_from_u64(seed);
            let c = Challenge::issue(difficulty, &mut r);
            let (sol, attempts) = c.solve();
            prop_assert!(c.verify(sol));
            prop_assert!(attempts >= 1);
        }
    }
}
