//! Golden fixture tests for the dataflow passes.
//!
//! Each directory under `crates/lint/fixtures/` is a miniature workspace
//! run through the full lint. `expected.txt` holds the rendered
//! diagnostics, one per line as `file:line: rule: message` — empty for
//! the clean counterparts. Regenerate an expectation by running with
//! `SOFTREP_LINT_FIXTURES=regen`.

use std::path::PathBuf;

fn check_fixture(name: &str) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let diags = softrep_lint::run_lint(&root).expect("fixture lints");
    let rendered: String = diags
        .iter()
        .map(|d| format!("{}:{}: {}: {}\n", d.file, d.line, d.rule, d.message))
        .collect();
    let expected_path = root.join("expected.txt");
    if std::env::var("SOFTREP_LINT_FIXTURES").as_deref() == Ok("regen") {
        std::fs::write(&expected_path, &rendered).expect("write expected.txt");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).expect("expected.txt exists");
    assert_eq!(rendered, expected, "fixture `{name}` diverged from its golden file");
}

#[test]
fn taint_leak_is_reported() {
    check_fixture("taint_leak");
}

#[test]
fn taint_clean_counterpart_passes() {
    check_fixture("taint_clean");
}

#[test]
fn seeded_lock_cycle_is_reported() {
    check_fixture("lock_cycle");
}

#[test]
fn consistent_lock_order_passes() {
    check_fixture("lock_clean");
}

#[test]
fn unordered_stripe_accumulation_is_reported() {
    check_fixture("stripe_order_bad");
}

#[test]
fn btree_ordered_stripe_accumulation_passes() {
    check_fixture("stripe_order_clean");
}

#[test]
fn fsync_under_guard_is_reported() {
    check_fixture("guard_fsync");
}

#[test]
fn fsync_after_guard_drop_passes() {
    check_fixture("guard_clean");
}

#[test]
fn violation_fixtures_name_the_expected_rule() {
    // Belt and braces: the golden files themselves must claim the rule
    // the fixture was seeded for, so a regen cannot silently neutralize
    // a fixture by recording an empty expectation.
    for (name, rule) in [
        ("taint_leak", "taint"),
        ("lock_cycle", "lockorder"),
        ("stripe_order_bad", "lockorder"),
        ("guard_fsync", "guard-io"),
    ] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
            .join("expected.txt");
        let expected = std::fs::read_to_string(&path).expect("expected.txt exists");
        assert!(
            expected.contains(&format!(" {rule}: ")),
            "fixture `{name}` golden file does not report `{rule}`: {expected:?}"
        );
    }
}
