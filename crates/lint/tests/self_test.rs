//! End-to-end self-tests: run the built `softrep-lint` binary on the real
//! workspace (must be clean) and on fixture trees with seeded violations
//! (must fail with file:line diagnostics).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint_binary() -> &'static str {
    env!("CARGO_BIN_EXE_softrep-lint")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

fn run_on(root: &Path) -> Output {
    Command::new(lint_binary()).arg(root).output().expect("spawn softrep-lint")
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("rel paths have parents")).expect("mkdir");
    std::fs::write(path, contents).expect("write fixture");
}

fn fixture_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softrep-lint-bin-{name}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean fixture");
    }
    std::fs::create_dir_all(&dir).expect("mkdir fixture");
    dir
}

#[test]
fn real_workspace_is_clean() {
    let out = run_on(&workspace_root());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "softrep-lint flagged the workspace:\n{stdout}\n{stderr}");
    assert!(stdout.trim().is_empty(), "clean run printed diagnostics:\n{stdout}");
}

#[test]
fn seeded_unwrap_fails_with_file_and_line() {
    let root = fixture_root("unwrap");
    write(&root, "crates/proto/src/message.rs", "pub enum Request { Ping }");
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    write(
        &root,
        "crates/storage/src/wal.rs",
        "fn replay(raw: &[u8]) -> u8 {\n    let len = raw.first().unwrap();\n    raw[1] + len\n}\n",
    );
    let out = run_on(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/storage/src/wal.rs:2: [panic]"),
        "missing unwrap diagnostic:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/storage/src/wal.rs:3: [panic]"),
        "missing indexing diagnostic:\n{stdout}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn array_literal_after_a_keyword_is_not_an_index_expression() {
    // `for x in [A, B]` and `return [..]` put `[` right after a keyword
    // the lexer tokenizes as Ident; only real `container[index]` panics.
    let root = fixture_root("array-literal");
    write(&root, "crates/proto/src/message.rs", "pub enum Request { Ping }");
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    write(
        &root,
        "crates/storage/src/wal.rs",
        "fn scan() -> [u8; 2] {\n    for name in [\"a\", \"b\"] {\n        let _ = name;\n    }\n    return [0, 1];\n}\n",
    );
    let out = run_on(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "array literals flagged as indexing:\n{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_clock_and_trust_violations_fail() {
    let root = fixture_root("clock-trust");
    write(&root, "crates/proto/src/message.rs", "pub enum Request { Ping }");
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    write(
        &root,
        "crates/core/src/aggregate.rs",
        "fn stamp() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\nfn boost(r: &mut Rec) {\n    r.trust += 10.0;\n}\n",
    );
    let out = run_on(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/aggregate.rs:2: [clock]"),
        "missing clock diagnostic:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/aggregate.rs:5: [trust]"),
        "missing trust diagnostic:\n{stdout}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_missing_request_arm_fails() {
    let root = fixture_root("exhaustive");
    write(
        &root,
        "crates/proto/src/message.rs",
        "pub enum Request { Ping, Shutdown { reason: String } }",
    );
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    let out = run_on(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("[exhaustive]") && stdout.contains("Request::Shutdown"),
        "missing exhaustiveness diagnostic:\n{stdout}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn allow_directive_turns_failure_into_clean_exit() {
    let root = fixture_root("allow");
    write(&root, "crates/proto/src/message.rs", "pub enum Request { Ping }");
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    write(
        &root,
        "crates/core/src/db.rs",
        "fn f(v: &[u8]) -> u8 {\n    v[0] // lint: allow(panic, \"length checked by caller\")\n}\n",
    );
    let out = run_on(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "allow directive ignored:\n{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_proto_without_handler_is_not_an_error() {
    // Exhaustiveness is only checked when the handler file is in the tree,
    // so a partial fixture without proto/handler still lints cleanly.
    let root = fixture_root("no-proto");
    write(&root, "crates/core/src/db.rs", "fn ok() {}");
    let out = run_on(&root);
    assert!(out.status.success());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn handler_without_proto_exits_with_driver_error() {
    let root = fixture_root("no-proto-handler");
    write(
        &root,
        "crates/server/src/handler.rs",
        "fn h(r: &Request) { match r { Request::Ping => {} } }",
    );
    let out = run_on(&root);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("proto source not found"), "stderr:\n{stderr}");
    std::fs::remove_dir_all(&root).ok();
}
