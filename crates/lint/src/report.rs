//! Machine-readable output: JSON diagnostics, the checked-in baseline,
//! and the `--stats` summary.
//!
//! The JSON schema is a flat array of findings:
//!
//! ```json
//! [
//!   {"file": "crates/server/src/web.rs", "line": 262, "rule": "taint",
//!    "message": "…"}
//! ]
//! ```
//!
//! The baseline (`lint-baseline.json`, same schema) records findings CI
//! tolerates; a run fails only on findings *not* in the baseline,
//! matching on `(file, rule, message)` as a multiset — line numbers
//! churn with unrelated edits and are ignored. Regenerate it with
//! `SOFTREP_LINT_BASELINE=regen`. Everything here is hand-rolled: the
//! lint stays dependency-free.

use std::collections::BTreeMap;

use crate::rules::Diagnostic;

/// Serialize diagnostics to the JSON schema above (stable order: the
/// caller sorts).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            json_string(d.rule),
            json_string(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One baseline entry: `(file, rule, message)` — the line is ignored.
pub type BaselineKey = (String, String, String);

/// Parse a baseline document. Accepts exactly the schema [`to_json`]
/// writes; returns `None` on malformed input so the caller can fail
/// loudly rather than treat a corrupt baseline as empty.
pub fn parse_baseline(json: &str) -> Option<Vec<BaselineKey>> {
    let mut p = Parser { chars: json.chars().collect(), pos: 0 };
    p.skip_ws();
    let entries = p.array()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return None;
    }
    let mut out = Vec::new();
    for obj in entries {
        let file = obj.get("file")?.clone();
        let rule = obj.get("rule")?.clone();
        let message = obj.get("message")?.clone();
        out.push((file, rule, message));
    }
    Some(out)
}

/// Findings not covered by the baseline, as a multiset difference on
/// `(file, rule, message)`.
pub fn new_findings<'d>(diags: &'d [Diagnostic], baseline: &[BaselineKey]) -> Vec<&'d Diagnostic> {
    let mut budget: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
    for (f, r, m) in baseline {
        *budget.entry((f.as_str(), r.as_str(), m.as_str())).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for d in diags {
        let key = (d.file.as_str(), d.rule, d.message.as_str());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.push(d),
        }
    }
    out
}

/// The `--stats` summary block (written to stderr by the CLI).
pub fn stats_block(rules: &[&str], files_scanned: usize, diags: &[Diagnostic]) -> String {
    let mut by_rule: BTreeMap<&str, usize> = rules.iter().map(|&r| (r, 0)).collect();
    for d in diags {
        *by_rule.entry(d.rule).or_insert(0) += 1;
    }
    let mut out = format!(
        "softrep-lint stats: {} rules, {} files scanned, {} finding(s)\n",
        rules.len(),
        files_scanned,
        diags.len()
    );
    for (rule, count) in &by_rule {
        out.push_str(&format!("  {rule:<12} {count}\n"));
    }
    out
}

/// A minimal parser for the baseline's own JSON subset: an array of flat
/// objects whose values are strings or unsigned integers.
struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        (self.bump()? == c).then_some(())
    }

    fn array(&mut self) -> Option<Vec<BTreeMap<String, String>>> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            out.push(self.object()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Some(out),
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<BTreeMap<String, String>> {
        self.expect('{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            self.skip_ws();
            let value = match self.peek()? {
                '"' => self.string()?,
                c if c.is_ascii_digit() => {
                    let mut n = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        n.push(self.bump()?);
                    }
                    n
                }
                _ => return None,
            };
            out.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Some(out),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Some(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    '/' => out.push('/'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            v = v * 16 + self.bump()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &'static str, message: &str) -> Diagnostic {
        Diagnostic { file: file.into(), line, rule, message: message.into() }
    }

    #[test]
    fn json_roundtrips_through_the_baseline_parser() {
        let diags = vec![
            diag("crates/a.rs", 3, "taint", "quote \" backslash \\ newline \n done"),
            diag("crates/b.rs", 7, "lockorder", "cycle A -> B -> A"),
        ];
        let json = to_json(&diags);
        let parsed = parse_baseline(&json).expect("roundtrip parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "crates/a.rs");
        assert!(parsed[0].2.contains("quote \" backslash \\ newline \n done"));
    }

    #[test]
    fn empty_baseline_parses() {
        assert_eq!(parse_baseline("[]\n"), Some(vec![]));
        assert_eq!(parse_baseline("[\n]\n"), Some(vec![]));
    }

    #[test]
    fn malformed_baseline_is_rejected_not_emptied() {
        assert_eq!(parse_baseline("{"), None);
        assert_eq!(parse_baseline("[{\"file\": \"x\"}]"), None); // missing keys
        assert_eq!(parse_baseline("[] trailing"), None);
    }

    #[test]
    fn diff_ignores_lines_and_respects_multiplicity() {
        let diags = vec![
            diag("f.rs", 10, "taint", "m1"),
            diag("f.rs", 20, "taint", "m1"),
            diag("f.rs", 30, "panic", "m2"),
        ];
        let baseline = vec![("f.rs".to_string(), "taint".to_string(), "m1".to_string())];
        let new = new_findings(&diags, &baseline);
        // One m1 absorbed by the baseline, the second m1 and m2 are new.
        assert_eq!(new.len(), 2);
        assert!(new.iter().any(|d| d.message == "m1" && d.line == 20));
        assert!(new.iter().any(|d| d.message == "m2"));
    }

    #[test]
    fn stats_block_lists_every_rule() {
        let diags = vec![diag("f.rs", 1, "taint", "m")];
        let s = stats_block(&["panic", "taint"], 42, &diags);
        assert!(s.contains("2 rules"), "{s}");
        assert!(s.contains("42 files"), "{s}");
        assert!(s.contains("taint"), "{s}");
        assert!(s.contains("panic"), "{s}");
    }
}
