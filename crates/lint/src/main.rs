//! CLI driver for the workspace lint: `cargo run -p softrep-lint`.
//!
//! ```text
//! softrep-lint [ROOT] [--format text|json] [--baseline PATH] [--stats]
//! ```
//!
//! Prints one `{file}:{line}: [{rule}] {message}` per finding (or a JSON
//! array with `--format json`) and exits nonzero if anything was
//! flagged. With `--baseline PATH`, findings already recorded in the
//! baseline are tolerated and only *new* ones are printed and fail the
//! run; regenerate the baseline from the current tree with
//! `SOFTREP_LINT_BASELINE=regen`. `--stats` writes a per-rule coverage
//! summary to stderr.

use std::path::PathBuf;
use std::process::exit;

struct Args {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), json: false, baseline: None, stats: false };
    let mut it = std::env::args().skip(1);
    let mut saw_root = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value: text or json")?;
                match v.as_str() {
                    "json" => args.json = true,
                    "text" => args.json = false,
                    other => return Err(format!("unknown format `{other}` (text or json)")),
                }
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--stats" => args.stats = true,
            other if !other.starts_with('-') && !saw_root => {
                args.root = PathBuf::from(other);
                saw_root = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("softrep-lint: {e}");
            exit(2);
        }
    };

    let report = match softrep_lint::run_lint_report(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("softrep-lint: {e}");
            exit(2);
        }
    };

    if args.stats {
        eprint!(
            "{}",
            softrep_lint::report::stats_block(
                softrep_lint::RULES,
                report.files_scanned,
                &report.diagnostics
            )
        );
    }

    // Baseline handling: regen rewrites it; otherwise it absorbs known
    // findings so CI fails only on new ones.
    let regen = std::env::var("SOFTREP_LINT_BASELINE").is_ok_and(|v| v == "regen");
    let mut baseline = Vec::new();
    if let Some(path) = &args.baseline {
        if regen {
            let json = softrep_lint::report::to_json(&report.diagnostics);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("softrep-lint: writing baseline {}: {e}", path.display());
                exit(2);
            }
            eprintln!(
                "softrep-lint: baseline regenerated with {} finding(s) at {}",
                report.diagnostics.len(),
                path.display()
            );
            exit(0);
        }
        match std::fs::read_to_string(path) {
            Ok(text) => match softrep_lint::report::parse_baseline(&text) {
                Some(entries) => baseline = entries,
                None => {
                    eprintln!("softrep-lint: malformed baseline at {}", path.display());
                    exit(2);
                }
            },
            Err(e) => {
                eprintln!("softrep-lint: reading baseline {}: {e}", path.display());
                exit(2);
            }
        }
    }

    let new: Vec<&softrep_lint::Diagnostic> =
        softrep_lint::report::new_findings(&report.diagnostics, &baseline);

    if args.json {
        let owned: Vec<softrep_lint::Diagnostic> = new.iter().map(|d| (*d).clone()).collect();
        print!("{}", softrep_lint::report::to_json(&owned));
    } else {
        for d in &new {
            println!("{d}");
        }
    }

    if new.is_empty() {
        eprintln!("softrep-lint: clean ({} rules enforced)", softrep_lint::RULES.len());
        exit(0);
    }
    eprintln!("softrep-lint: {} new violation(s)", new.len());
    exit(1);
}
