//! CLI driver for the workspace lint: `cargo run -p softrep-lint`.
//!
//! Prints one `{file}:{line}: [{rule}] {message}` per finding and exits
//! nonzero if anything was flagged. Pass a directory argument to lint a
//! tree other than the current workspace.

use std::path::PathBuf;

fn main() {
    let root = std::env::args_os().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));

    let diags = match softrep_lint::run_lint(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("softrep-lint: {e}");
            std::process::exit(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("softrep-lint: clean ({} rules enforced)", 4);
        std::process::exit(0);
    }
    eprintln!("softrep-lint: {} violation(s)", diags.len());
    std::process::exit(1);
}
