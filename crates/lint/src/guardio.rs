//! Rule `guard-io` — no lock guard may be held across blocking I/O.
//!
//! The WAL group-commit design (DESIGN.md §9) gets its throughput from
//! `fsync` running *outside* the commit lock; the worker pool's shutdown
//! joins threads without holding registry locks; the TCP front end never
//! sleeps under a guard. Those properties previously relied on review
//! discipline. This pass reuses the `lockorder` guard-liveness model and
//! flags any blocking call — fsync/`sync_*`, socket frame and stream
//! reads/writes, `flush`, `accept`/`connect`, `thread::sleep`, thread
//! `join` — whose statement falls inside a guard's live interval.
//!
//! Deliberate holds (a flush that must be covered by the commit lock for
//! ordering, say) are suppressed inline with a written reason, which the
//! `suppression` rule audits.

use crate::cfg::Function;
use crate::lexer::TokenKind;
use crate::lockorder;
use crate::rules::{Diagnostic, FileCheck};

/// Calls that block the calling thread.
const BLOCKING: &[&str] = &[
    "sync",
    "sync_all",
    "sync_data",
    "fsync",
    "sleep",
    "read_frame",
    "write_frame",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "flush",
    "accept",
    "connect",
    "recv",
    "join",
    "join_all",
];

/// Run the pass over every function in the file.
pub fn check(fc: &FileCheck, funcs: &[Function], out: &mut Vec<Diagnostic>) {
    let toks = fc.tokens();
    let owners = lockorder::impl_ranges(toks, "");
    for func in funcs {
        let guards = lockorder::guards(fc, func, &owners);
        if guards.is_empty() {
            continue;
        }
        for (id, stmt) in func.stmts.iter().enumerate() {
            let hi = stmt.hi.min(toks.len());
            for k in stmt.lo..hi {
                let t = &toks[k];
                if t.kind != TokenKind::Ident
                    || !BLOCKING.contains(&t.text.as_str())
                    || fc.in_test(k)
                {
                    continue;
                }
                // A call: `.name(` or `path::name(`; not `fn name(`.
                let prev = k.checked_sub(1).map(|p| toks[p].text.as_str()).unwrap_or("");
                let next = toks.get(k + 1).map(|n| n.text.as_str()).unwrap_or("");
                if next != "(" || prev == "fn" {
                    continue;
                }
                if !(prev == "." || prev == "::") {
                    continue;
                }
                // `join`/`recv` block only as the zero-argument thread/
                // channel methods; `Path::join(p)` and `recv_timeout(d)`
                // relatives take arguments.
                if matches!(t.text.as_str(), "join" | "recv")
                    && !toks.get(k + 2).is_some_and(|n| n.text == ")")
                {
                    continue;
                }
                for g in &guards {
                    let (lo, hi_stmt) = g.live;
                    let held = id >= lo
                        && id <= hi_stmt
                        && (id != g.stmt || k > g.token)
                        // The guard acquisition itself chains into the
                        // blocking call's receiver only when it is the
                        // same expression; same-statement cases require
                        // the lock to come first.
                        && !(id == g.stmt && k < g.token);
                    if held {
                        fc.push(
                            out,
                            "guard-io",
                            t.line,
                            format!(
                                "blocking `{}` called while `{}` guard is held (fn {}); \
                                 release the guard before I/O",
                                t.text, g.family, func.name
                            ),
                        );
                        break; // one finding per blocking call site
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let fc = FileCheck::new(path, src);
        let funcs = fc.functions();
        let mut out = Vec::new();
        check(&fc, &funcs, &mut out);
        out
    }

    #[test]
    fn fsync_under_guard_is_flagged() {
        let src = "impl Wal { fn append(&self) {\n    let file = self.file.lock();\n    file.sync_all();\n} }";
        let d = diags("crates/storage/src/wal.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "guard-io");
        assert!(d[0].message.contains("sync_all"), "{}", d[0].message);
    }

    #[test]
    fn fsync_after_drop_is_clean() {
        let src = "impl Wal { fn append(&self) {\n    let buf = { let q = self.queue.lock(); q.take() };\n    self.file_handle().sync_all();\n} }";
        assert!(diags("crates/storage/src/wal.rs", src).is_empty());
    }

    #[test]
    fn explicit_drop_before_io_is_clean() {
        let src = "impl Wal { fn append(&self) {\n    let q = self.queue.lock();\n    drop(q);\n    self.file_handle().sync_all();\n} }";
        assert!(diags("crates/storage/src/wal.rs", src).is_empty());
    }

    #[test]
    fn sleep_under_guard_is_flagged() {
        let src = "impl Pool { fn tick(&self) {\n    let s = self.state.lock();\n    thread::sleep(Duration::from_millis(5));\n} }";
        let d = diags("crates/server/src/pool.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn temporary_guard_does_not_cover_later_statements() {
        let src = "impl S { fn f(&self) {\n    let n = self.counter.lock().len();\n    self.out_handle().flush();\n} }";
        assert!(diags("crates/storage/src/store.rs", src).is_empty());
    }

    #[test]
    fn fn_definitions_named_like_blocking_calls_are_ignored() {
        let src = "impl S { fn flush(&self) { let g = self.inner.lock(); g.clear(); } }";
        assert!(diags("crates/storage/src/store.rs", src).is_empty());
    }

    #[test]
    fn path_join_under_guard_is_not_blocking() {
        let src = "impl S { fn f(&self) {\n    let g = self.state.lock();\n    let p = self.dir.join(\"WAL\");\n    g.note(p);\n} }";
        assert!(diags("crates/storage/src/store.rs", src).is_empty());
    }

    #[test]
    fn thread_join_under_guard_is_flagged() {
        let src = "impl S { fn f(&self, h: JoinHandle<()>) {\n    let g = self.state.lock();\n    h.join();\n} }";
        assert_eq!(diags("crates/server/src/pool.rs", src).len(), 1);
    }

    #[test]
    fn suppression_with_reason_is_honored() {
        let src = "impl Wal { fn append(&self) {\n    let file = self.file.lock();\n    // lint: allow(guard-io, \"ordering requires the flush under the lock\")\n    file.write_all(b\"x\");\n} }";
        assert!(diags("crates/storage/src/wal.rs", src).is_empty());
    }
}
