//! A lightweight control-flow model over the token stream.
//!
//! The dataflow passes (`taint`, `lockorder`, `guard-io`) need more
//! structure than flat tokens but far less than a real Rust parse: which
//! statements make up a function, how its blocks nest, what each
//! statement defines and uses, and which statement can execute after
//! which. This module recovers exactly that, heuristically, from
//! [`crate::lexer`] output:
//!
//! * **Functions** — every `fn name(params) { body }` with its parameter
//!   names and type tokens.
//! * **Statements** — token ranges split on `;`, with nested `{}` blocks
//!   attached as child scopes (block expressions, loop/if/match bodies,
//!   closure bodies). Struct literals are recognised by their leading
//!   context and kept inline rather than opened as scopes.
//! * **Def-use** — `let` patterns, `for` bindings, match-arm patterns,
//!   closure parameters, and plain `x = …` reassignments define names;
//!   everything else that mentions a name uses it.
//! * **CFG edges** — successor edges in pre-order statement numbering,
//!   with loop back-edges, so a pass can run a worklist to fixpoint.
//!
//! The model is deliberately conservative: when brace disambiguation
//! guesses wrong the result is a coarser statement, never a missed token,
//! so downstream passes degrade toward over-approximation (more taint,
//! longer guard scopes) rather than silence.

use crate::lexer::{Token, TokenKind};

/// Keywords that can start a block-bearing statement.
const CONTROL_KEYWORDS: &[&str] = &["if", "for", "while", "loop", "match", "unsafe", "else"];

/// One function body, flattened for dataflow.
pub struct Function {
    /// Function name.
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// Statements in pre-order; `stmts[0]` is the entry.
    pub stmts: Vec<Stmt>,
    /// Successor edges: `succ[i]` lists statement ids reachable after `i`.
    pub succ: Vec<Vec<usize>>,
    /// Token index (into the file's token stream) of the `fn` keyword.
    pub fn_token: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One declared parameter.
pub struct Param {
    /// Binding name (`_`-prefixed names included; `self` excluded).
    pub name: String,
    /// The tokens of the declared type, as text.
    pub ty: Vec<String>,
}

/// One statement: a token range plus derived dataflow facts.
pub struct Stmt {
    /// Inclusive start token index (into the file's token stream).
    pub lo: usize,
    /// Exclusive end token index.
    pub hi: usize,
    /// 1-based line of the first token.
    pub line: usize,
    /// Names this statement binds (let/for/arm patterns, closure params,
    /// plain reassignment targets).
    pub defs: Vec<String>,
    /// Token index (absolute) where the statement's value expression
    /// starts: after `=` for `let`, after `in` for `for`, after `=>` for
    /// arms; `lo` otherwise.
    pub rhs_lo: usize,
    /// Pre-order id of the parent statement (the header whose block this
    /// statement lives in), if any.
    pub parent: Option<usize>,
    /// Last pre-order id in this statement's subtree (itself when it has
    /// no children). `[id, subtree_end]` is the contiguous id range of
    /// the statement plus everything nested under it.
    pub subtree_end: usize,
    /// Last pre-order id of the *enclosing scope's* subtree: the point at
    /// which bindings introduced by this statement go out of scope.
    pub scope_end: usize,
    /// True when the statement is a loop header (`for`/`while`/`loop`).
    pub is_loop: bool,
}

impl Stmt {
    /// The statement's tokens within `toks` (the file's token stream).
    pub fn tokens<'t>(&self, toks: &'t [Token]) -> &'t [Token] {
        &toks[self.lo..self.hi.min(toks.len())]
    }
}

/// Extract every function body from `toks`. `skip` receives the token
/// index of each `fn` keyword and returns true to skip that function
/// (used to exempt `#[cfg(test)]` ranges).
pub fn functions(toks: &[Token], skip: &dyn Fn(usize) -> bool) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "fn" && !skip(i) {
            if let Some((func, next)) = parse_function(toks, i) {
                i = next;
                out.push(func);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parse `fn name …(params) … { body }` starting at the `fn` keyword.
/// Returns the function and the index just past its closing brace.
fn parse_function(toks: &[Token], fn_idx: usize) -> Option<(Function, usize)> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Find the parameter list's `(`, skipping a generic parameter list.
    let mut i = fn_idx + 2;
    let mut angle = 0i32;
    loop {
        let t = toks.get(i)?;
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2, // `Vec<Vec<u8>>` closes two levels at once
            "(" if angle <= 0 => break,
            ";" | "{" => return None, // malformed or not a normal fn
            _ => {}
        }
        i += 1;
    }
    let params_lo = i + 1;
    let params_hi = matching_close(toks, i)?;
    let params = parse_params(&toks[params_lo..params_hi]);

    // Body: the next `{` at angle depth 0 before a `;` (a `;` first means
    // a trait method declaration without a body).
    let mut j = params_hi + 1;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "{" => break,
            ";" => return None,
            _ => {}
        }
        j += 1;
    }

    let mut b = Builder { toks, stmts: Vec::new() };
    let body_end = b.parse_scope(j + 1, None);
    let mut func = Function {
        name: name_tok.text.clone(),
        params,
        stmts: b.stmts,
        succ: Vec::new(),
        fn_token: fn_idx,
        line: toks[fn_idx].line,
    };
    finalize(&mut func);
    Some((func, body_end))
}

/// Split a parameter token slice on top-level commas; each parameter is
/// `pattern [: type]`. `self` receivers are dropped.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut pieces = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth == 0 => {
                pieces.push(&toks[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        pieces.push(&toks[start..]);
    }
    for piece in pieces {
        let colon = piece.iter().position(|t| t.text == ":");
        let (pat, ty) = match colon {
            Some(c) => (&piece[..c], &piece[c + 1..]),
            None => (piece, &piece[piece.len()..]),
        };
        let Some(name) =
            pat.iter().rev().find(|t| t.kind == TokenKind::Ident && !is_pattern_keyword(&t.text))
        else {
            continue;
        };
        if name.text == "self" {
            continue;
        }
        params.push(Param {
            name: name.text.clone(),
            ty: ty.iter().map(|t| t.text.clone()).collect(),
        });
    }
    params
}

fn is_pattern_keyword(s: &str) -> bool {
    matches!(s, "mut" | "ref" | "dyn" | "impl" | "move")
}

/// Index of the token closing the delimiter opened at `open` (matching
/// `(`/`[`/`{` nesting as one family).
fn matching_close(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

struct Builder<'t> {
    toks: &'t [Token],
    stmts: Vec<Stmt>,
}

impl Builder<'_> {
    /// Parse statements from `i` until the scope's closing `}`. Returns
    /// the index just past that `}`. Appends statements in pre-order;
    /// `parent` is the id of the header statement owning this scope.
    fn parse_scope(&mut self, mut i: usize, parent: Option<usize>) -> usize {
        while i < self.toks.len() {
            if self.toks[i].text == "}" {
                return i + 1;
            }
            i = self.parse_stmt(i, parent);
        }
        i
    }

    /// Parse one statement starting at `i`; returns the index just past
    /// it. Child scopes recurse, keeping pre-order ids.
    fn parse_stmt(&mut self, start: usize, parent: Option<usize>) -> usize {
        let id = self.stmts.len();
        let first = self.toks[start].text.clone();
        let is_control = CONTROL_KEYWORDS.contains(&first.as_str());
        self.stmts.push(Stmt {
            lo: start,
            hi: start, // patched below
            line: self.toks[start].line,
            defs: Vec::new(),
            rhs_lo: start,
            parent,
            subtree_end: id,
            scope_end: id,
            is_loop: matches!(first.as_str(), "for" | "while" | "loop"),
        });

        let mut i = start;
        let mut depth = 0i32; // ( [ nesting and inline (struct-literal) braces
        let mut header_tokens_hi = None; // set when the first child opens
        let mut saw_arrow = false; // a top-level `=>`: this is a match arm
        while i < self.toks.len() {
            let text = self.toks[i].text.as_str();
            match text {
                ";" if depth == 0 => {
                    i += 1;
                    break;
                }
                "=>" if depth == 0 => {
                    saw_arrow = true;
                    i += 1;
                }
                "," if depth == 0 && saw_arrow => {
                    // End of an expression-bodied match arm.
                    i += 1;
                    break;
                }
                "(" | "[" => {
                    depth += 1;
                    i += 1;
                }
                ")" | "]" => {
                    if depth == 0 {
                        break; // closes an enclosing delimiter; not ours
                    }
                    depth -= 1;
                    i += 1;
                }
                "{" => {
                    if self.opens_scope(start, i, is_control, depth) {
                        if header_tokens_hi.is_none() {
                            header_tokens_hi = Some(i);
                        }
                        i = self.parse_scope(i + 1, Some(id));
                        if depth == 0 && saw_arrow {
                            // Block-bodied match arm: done (skip a
                            // trailing comma so the next arm starts clean).
                            if self.toks.get(i).is_some_and(|t| t.text == ",") {
                                i += 1;
                            }
                            break;
                        }
                        // A control statement ends right after its block
                        // unless an `else`/`else if` chain continues it.
                        if depth == 0
                            && is_control
                            && self.toks.get(i).is_none_or(|t| t.text != "else")
                        {
                            break;
                        }
                    } else {
                        // Struct literal (or similar): swallow it inline.
                        match matching_close(self.toks, i) {
                            Some(close) => i = close + 1,
                            None => i = self.toks.len(),
                        }
                    }
                }
                "}" => break, // end of enclosing scope
                _ => i += 1,
            }
        }

        let stmt = &mut self.stmts[id];
        stmt.hi = header_tokens_hi.unwrap_or(i).max(start + 1);
        let subtree_end = self.stmts.len() - 1;
        self.stmts[id].subtree_end = subtree_end;
        self.derive_defs(id);
        i
    }

    /// Should the `{` at `brace` open a child scope? Block expressions,
    /// control bodies, and closure bodies do; struct literals do not.
    fn opens_scope(&self, stmt_start: usize, brace: usize, is_control: bool, depth: i32) -> bool {
        if brace == stmt_start {
            return true; // bare block statement
        }
        let prev = &self.toks[brace - 1].text;
        if matches!(
            prev.as_str(),
            "=" | "=>"
                | "("
                | ","
                | "{"
                | ";"
                | "||"
                | "|"
                | "else"
                | "return"
                | "->"
                | "unsafe"
                | "move"
                | "loop"
                | "try"
                | "async"
                | "&&"
        ) {
            return true;
        }
        // `if cond {`, `for x in xs {`, `while c {`, `match v {`: the first
        // brace of a control statement at top level is its body even though
        // the preceding token is an expression.
        is_control && depth == 0
    }

    /// Populate `defs` and `rhs_lo` for statement `id` from its tokens.
    fn derive_defs(&mut self, id: usize) {
        let (lo, hi) = (self.stmts[id].lo, self.stmts[id].hi);
        let toks = &self.toks[lo..hi];
        let mut defs = Vec::new();
        let mut rhs_lo = lo;

        let first = toks.first().map(|t| t.text.as_str()).unwrap_or("");
        if first == "let" || ((first == "if" || first == "while") && nth_text(toks, 1) == "let") {
            let pat_start = if first == "let" { 1 } else { 2 };
            if let Some(eq) = top_level_position(toks, "=") {
                defs.extend(pattern_defs(&toks[pat_start..eq]));
                rhs_lo = lo + eq + 1;
            } else {
                defs.extend(pattern_defs(&toks[pat_start..]));
            }
        } else if first == "for" {
            if let Some(in_pos) = top_level_position(toks, "in") {
                defs.extend(pattern_defs(&toks[1..in_pos]));
                rhs_lo = lo + in_pos + 1;
            }
        } else if let Some(arrow) = top_level_position(toks, "=>") {
            // A match arm: pattern before `=>`, expression after.
            defs.extend(pattern_defs(&toks[..arrow]));
            rhs_lo = lo + arrow + 1;
        } else if toks.len() >= 2
            && toks[0].kind == TokenKind::Ident
            && matches!(toks[1].text.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=")
        {
            // Plain reassignment `x = …`: redefines x (kill or re-gen).
            defs.push(toks[0].text.clone());
            rhs_lo = lo + 2;
        }

        // Closure parameters bind inside this statement: `|a, b|` after an
        // opening context. They scope to the closure only, but treating
        // them as statement-level defs keeps the model simple and errs
        // toward propagating taint, not hiding it.
        let mut k = 0usize;
        while k + 1 < toks.len() {
            if toks[k].text == "|"
                && (k == 0
                    || matches!(toks[k - 1].text.as_str(), "(" | "," | "=" | "move" | "=>" | "{"))
            {
                if let Some(close) = toks[k + 1..].iter().position(|t| t.text == "|") {
                    defs.extend(pattern_defs(&toks[k + 1..k + 1 + close]));
                    k += close + 1;
                }
            }
            k += 1;
        }

        self.stmts[id].defs = defs;
        self.stmts[id].rhs_lo = rhs_lo;
    }
}

fn nth_text<'a>(toks: &'a [Token], n: usize) -> &'a str {
    toks.get(n).map(|t| t.text.as_str()).unwrap_or("")
}

/// Position of `needle` at delimiter depth 0 within `toks`.
fn top_level_position(toks: &[Token], needle: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            s if s == needle && depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// Names bound by a pattern token slice. At depth 0, `name: Type` keeps
/// `name` and skips the type; at depth > 0 (struct patterns) an ident
/// followed by `:` is a field name, not a binding. Path segments
/// (`Some(…)`, `Request::Ping`) and keywords never bind.
fn pattern_defs(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_type = false;
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => in_type = true,
            "," if depth == 0 => in_type = false,
            _ => {
                if in_type || t.kind != TokenKind::Ident {
                    continue;
                }
                let text = t.text.as_str();
                if is_pattern_keyword(text) || text == "self" || text == "_" {
                    continue;
                }
                let next = toks.get(k + 1).map(|t| t.text.as_str()).unwrap_or("");
                let prev = k.checked_sub(1).map(|p| toks[p].text.as_str()).unwrap_or("");
                // `Foo(` / `Foo::` / `foo!` are paths or macros, not
                // bindings; `field: x` inside braces binds x, not field.
                if next == "(" || next == "::" || next == "!" || prev == "::" {
                    continue;
                }
                if depth > 0 && next == ":" {
                    continue;
                }
                out.push(t.text.clone());
            }
        }
    }
    out
}

/// Fill in `scope_end` and the successor edges once all statements exist.
fn finalize(func: &mut Function) {
    let n = func.stmts.len();
    // Group statements by (parent, direct membership): a statement's
    // siblings share its parent and are not nested inside an intermediate
    // statement's subtree.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // index n = root
    for id in 0..n {
        let slot = func.stmts[id].parent.unwrap_or(n);
        // Only direct statements of the scope: their parent matches and no
        // sibling's subtree already contains them (pre-order guarantees a
        // direct child follows its parent before any other scope closes).
        children[slot].push(id);
    }
    // The `children` lists currently include *every* descendant that names
    // `slot` as parent — which is exactly the set of direct statements of
    // that statement's child scopes (nested statements name their own
    // header as parent), so they are siblings already.

    // scope_end: last id of the enclosing scope's subtree.
    for slot in 0..=n {
        let members = &children[slot];
        if members.is_empty() {
            continue;
        }
        let scope_last = members
            .iter()
            .map(|&m| func.stmts[m].subtree_end)
            .max()
            .unwrap_or_else(|| members[members.len() - 1]);
        for &m in members {
            func.stmts[m].scope_end = scope_last;
        }
    }

    // Successor edges.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for slot in 0..=n {
        let members = &children[slot];
        for (k, &m) in members.iter().enumerate() {
            if let Some(&next) = members.get(k + 1) {
                succ[m].push(next);
            }
        }
    }
    for id in 0..n {
        // Header → first statement of its block(s); block tails → after
        // the header (and back to the header for loops).
        let kids: Vec<usize> = children[id].clone();
        if kids.is_empty() {
            continue;
        }
        let first = kids[0];
        succ[id].push(first);
        let last = *kids.last().unwrap_or(&first);
        let tail = func.stmts[last].subtree_end.max(last);
        let after: Option<usize> = {
            // The statement executed after this header completes: its
            // sibling successor, found in the already-built edges.
            succ[id].iter().copied().find(|&s| s != first)
        };
        if func.stmts[id].is_loop {
            succ[tail].push(id); // back edge
        } else if let Some(after) = after {
            if tail != id {
                succ[tail].push(after);
            }
        }
    }
    func.succ = succ;
}

/// The nearest statement at or before `id` (searching backward in
/// pre-order) that defines `name` — the def a use at `id` resolves to.
pub fn resolve_def(func: &Function, name: &str, id: usize) -> Option<usize> {
    (0..=id).rev().find(|&d| func.stmts[d].defs.iter().any(|n| n == name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Function> {
        let lexed = lex(src);
        functions(&lexed.tokens, &|_| false)
    }

    #[test]
    fn finds_functions_and_params() {
        let fns = parse("fn a(x: u32, peer: SocketAddr) {} fn b(&self, s: &str) -> u8 { 0 }");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        let names: Vec<_> = fns[0].params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["x", "peer"]);
        assert_eq!(fns[0].params[1].ty, ["SocketAddr"]);
        assert_eq!(fns[1].params.len(), 1, "self receiver is dropped");
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks_nest() {
        let fns = parse("fn f() { let a = 1; if a > 0 { let b = a; } let c = 2; }");
        let f = &fns[0];
        // let a; if-header; let b (child); let c.
        assert_eq!(f.stmts.len(), 4);
        assert_eq!(f.stmts[2].parent, Some(1));
        assert_eq!(f.stmts[0].defs, ["a"]);
        assert_eq!(f.stmts[2].defs, ["b"]);
        assert_eq!(f.stmts[3].defs, ["c"]);
    }

    #[test]
    fn struct_literals_do_not_open_scopes() {
        let fns = parse("fn f() { let p = Point { x: 1, y: 2 }; let q = 3; }");
        let f = &fns[0];
        assert_eq!(f.stmts.len(), 2);
        assert_eq!(f.stmts[0].defs, ["p"]);
    }

    #[test]
    fn block_expression_assignment_opens_a_scope() {
        let fns = parse("fn f() { let v = { let g = a.lock(); g.len() }; use_it(v); }");
        let f = &fns[0];
        // let v (header) → let g, g.len() expr; then use_it.
        assert!(f.stmts.len() >= 3);
        assert_eq!(f.stmts[0].defs, ["v"]);
        assert_eq!(f.stmts[1].parent, Some(0));
        assert_eq!(f.stmts[1].defs, ["g"]);
        // g's scope ends inside the block, before use_it runs.
        let use_it = f.stmts.iter().position(|s| s.parent.is_none() && s.lo > f.stmts[0].lo);
        let use_it = use_it.expect("top-level statement after the block");
        assert!(f.stmts[1].scope_end < use_it);
    }

    #[test]
    fn for_loops_bind_their_pattern_and_back_edge() {
        let fns = parse(
            "fn f(xs: Vec<u32>) { for (i, x) in xs.iter().enumerate() { touch(x); } done(); }",
        );
        let f = &fns[0];
        let header = &f.stmts[0];
        assert!(header.is_loop);
        assert_eq!(header.defs, ["i", "x"]);
        // Back edge from the loop body tail to the header.
        assert!(f.succ[1].contains(&0), "succ of body: {:?}", f.succ);
    }

    #[test]
    fn match_arms_bind_patterns() {
        let fns = parse(
            "fn f(r: Res) { match r { Ok((stream, peer)) => { use2(stream, peer); } Err(e) => drop(e), } }",
        );
        let f = &fns[0];
        let arm = f.stmts.iter().find(|s| s.defs.contains(&"peer".to_string()));
        let arm = arm.expect("arm pattern binds peer");
        assert!(arm.defs.contains(&"stream".to_string()));
        let err_arm = f.stmts.iter().find(|s| s.defs.contains(&"e".to_string()));
        assert!(err_arm.is_some(), "second arm binds e");
    }

    #[test]
    fn closure_params_are_defs() {
        let fns = parse(
            "fn f(v: Vec<L>) { let g: Vec<_> = v.iter().map(|lock| lock.write()).collect(); }",
        );
        let f = &fns[0];
        assert!(f.stmts[0].defs.contains(&"g".to_string()));
        assert!(f.stmts[0].defs.contains(&"lock".to_string()));
    }

    #[test]
    fn reassignment_is_a_def() {
        let fns = parse("fn f() { let mut x = taint(); x = clean(); }");
        let f = &fns[0];
        assert_eq!(f.stmts[1].defs, ["x"]);
    }

    #[test]
    fn resolve_def_finds_nearest_earlier_binding() {
        let fns = parse("fn f() { let x = 1; let y = x; let x = 2; let z = x; }");
        let f = &fns[0];
        assert_eq!(resolve_def(f, "x", 1), Some(0));
        assert_eq!(resolve_def(f, "x", 3), Some(2));
        assert_eq!(resolve_def(f, "nope", 3), None);
    }

    #[test]
    fn else_chain_stays_one_statement() {
        let fns = parse("fn f(a: u32) { if a > 1 { one(); } else if a > 0 { two(); } else { three(); } after(); }");
        let f = &fns[0];
        let top: Vec<usize> = (0..f.stmts.len()).filter(|&i| f.stmts[i].parent.is_none()).collect();
        assert_eq!(top.len(), 2, "if-else chain plus after(): {:?}", top);
    }

    #[test]
    fn closure_body_inside_call_is_a_child_scope() {
        let fns = parse("fn f(p: P) { pool.spawn(p, move || { work(); more(); }); tail(); }");
        let f = &fns[0];
        assert!(f.stmts.iter().any(|s| s.parent == Some(0)), "closure body statements nest");
        let tail = f.stmts.iter().find(|s| s.parent.is_none() && s.lo > f.stmts[0].lo);
        assert!(tail.is_some(), "tail() is a top-level statement");
    }
}
