//! Rule `lockorder` — the cross-file lock-acquisition graph must stay
//! acyclic, and multi-guard acquisition must follow a provably ascending
//! order.
//!
//! PRs 2–4 introduced real lock nesting: flood buckets over the rejected
//! counter, stripe write-guards collected in batches, cache guards around
//! recompute paths. Their deadlock-freedom arguments live in comments and
//! loom spot-checks; this pass re-derives them statically:
//!
//! 1. Every `.lock()`/`.read()`/`.write()` **with zero arguments** is a
//!    lock acquisition (I/O reads and writes always take arguments).
//! 2. The guard's **family** is the lock's owning field, resolved through
//!    the receiver chain and local def-use — `self.buckets.lock()` in an
//!    `impl FloodGuard` is `FloodGuard::buckets`, and a guard taken via
//!    `let g = lock.read()` resolves `lock` back to the field it came
//!    from (through match scrutinees and iterator chains).
//! 3. Acquiring family B while holding family A adds edge A → B to a
//!    workspace-wide graph; any cycle is reported ([`check_cycles`]).
//! 4. Acquiring *several* guards of the **same** family is allowed only
//!    when the iteration source is provably ascending — a `BTreeSet`/
//!    `BTreeMap` or an explicitly sorted collection — which is exactly
//!    the `storage/shard.rs` stripe invariant.
//!
//! Guard liveness is scope-based: a `let`-bound guard lives to the end of
//! its enclosing block, earlier if explicitly `drop`ped; a temporary
//! (`*x.lock() += 1`, `m.lock().len()`) lives only within its statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{resolve_def, Function, Stmt};
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, FileCheck};

/// Methods that acquire a guard when called with zero arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Tokens that prove an iteration order is ascending.
const ORDERED_MARKERS: &[&str] = &["BTreeSet", "BTreeMap", "sort", "sort_unstable", "sorted"];

/// One cross-family acquisition: `to` acquired while `from` is held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Family already held (`Type::field`).
    pub from: String,
    /// Family acquired under it.
    pub to: String,
    /// File containing the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// One lock acquisition site inside a function.
struct LockEvent {
    /// Statement id of the acquisition.
    stmt: usize,
    /// Token index of the method ident (`lock`/`read`/`write`).
    token: usize,
    /// Resolved family, when the receiver could be traced to a field.
    family: Option<String>,
    /// 1-based line.
    line: usize,
    /// Liveness interval in statement ids, inclusive.
    live: (usize, usize),
    /// Pre-order id of the statement the guard's *collection* was bound
    /// in, when the guard is pushed/collected into an outer binding.
    bound_root: Option<usize>,
}

/// A live guard interval, shared with the `guard-io` pass.
pub(crate) struct Guard {
    pub family: String,
    pub stmt: usize,
    pub token: usize,
    pub live: (usize, usize),
}

/// Run the per-file part of the pass: same-family ordering checks, plus
/// the file's contribution to the global acquisition graph.
pub fn check(fc: &FileCheck, funcs: &[Function], out: &mut Vec<Diagnostic>) -> Vec<LockEdge> {
    let owners = impl_ranges(fc.tokens(), file_stem(&fc.path));
    let mut edges = Vec::new();
    for func in funcs {
        let events = collect_events(fc, func, &owners);
        same_family_checks(fc, func, &events, out);
        cross_family_edges(fc, &events, &mut edges);
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Guard intervals for the `guard-io` pass (families resolved or the
/// receiver's own name as a fallback — liveness matters there, not
/// graph identity).
pub(crate) fn guards(
    fc: &FileCheck,
    func: &Function,
    owners: &[(String, usize, usize)],
) -> Vec<Guard> {
    collect_events(fc, func, owners)
        .into_iter()
        .map(|e| Guard {
            family: e.family.unwrap_or_else(|| "guard".to_string()),
            stmt: e.stmt,
            token: e.token,
            live: e.live,
        })
        .collect()
}

/// `impl` block ownership: `(type name, body token range)` for every impl
/// in the file, used to qualify `self.field` families. Free functions
/// fall back to the file stem.
pub(crate) fn impl_ranges(toks: &[Token], _stem: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "impl" if depth == 0 => {
                if let Some((name, body_open)) = parse_impl_header(toks, i) {
                    if let Some(close) = matching_brace(toks, body_open) {
                        out.push((name, body_open, close));
                        i = body_open; // walk into the body normally
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The implemented type's name and the index of the body `{`.
fn parse_impl_header(toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    // Skip the generic parameter list, if any.
    if toks.get(i).is_some_and(|t| t.text == "<") {
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            i += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    // Collect type tokens until `{`; `impl Trait for Type` restarts at
    // `for` so the name is the implementing type, not the trait.
    let mut name: Option<String> = None;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "{" => return name.map(|n| (n, i)),
            "for" => name = None,
            ";" => return None,
            _ => {
                if t.kind == TokenKind::Ident && name.is_none() {
                    name = Some(t.text.clone());
                }
            }
        }
        i += 1;
    }
    None
}

fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs")
}

fn owner_of<'a>(owners: &'a [(String, usize, usize)], tok: usize, stem: &'a str) -> &'a str {
    owners
        .iter()
        .find(|(_, lo, hi)| tok >= *lo && tok <= *hi)
        .map(|(n, _, _)| n.as_str())
        .unwrap_or(stem)
}

/// Find every lock acquisition in the function and derive its family and
/// liveness interval.
fn collect_events(
    fc: &FileCheck,
    func: &Function,
    owners: &[(String, usize, usize)],
) -> Vec<LockEvent> {
    let toks = fc.tokens();
    let stem = file_stem(&fc.path);
    let owner = owner_of(owners, func.fn_token, stem);
    let mut events = Vec::new();
    for (id, stmt) in func.stmts.iter().enumerate() {
        let hi = stmt.hi.min(toks.len());
        for k in stmt.lo..hi {
            let t = &toks[k];
            if t.kind != TokenKind::Ident || !LOCK_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            let zero_args = k >= 1
                && toks[k - 1].text == "."
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && toks.get(k + 2).is_some_and(|n| n.text == ")");
            if !zero_args || fc.in_test(k) {
                continue;
            }
            let family = family_of(fc, func, owner, id, k, 0);
            let chained = toks.get(k + 3).is_some_and(|n| n.text == ".");
            let (live, bound_root) = liveness(fc, func, id, k, chained);
            events.push(LockEvent { stmt: id, token: k, family, line: t.line, live, bound_root });
        }
    }
    events
}

/// Resolve the family (`Owner::field`) of the lock receiver ending just
/// before the method token at `k`.
fn family_of(
    fc: &FileCheck,
    func: &Function,
    owner: &str,
    stmt_id: usize,
    k: usize,
    depth: usize,
) -> Option<String> {
    if depth > 4 {
        return None;
    }
    let toks = fc.tokens();
    let stmt = &func.stmts[stmt_id];
    // Receiver tokens: walk back from the `.` before the method over the
    // chain (idents, `.`/`::`, and balanced groups).
    let chain_hi = k - 1; // the `.`
    let mut lo = chain_hi;
    while lo > stmt.lo {
        let p = &toks[lo - 1];
        match p.text.as_str() {
            ")" | "]" => {
                // Walk back over the balanced group.
                let mut d = 0i32;
                let mut j = lo - 1;
                loop {
                    match toks[j].text.as_str() {
                        ")" | "]" => d += 1,
                        "(" | "[" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                lo = j;
            }
            "." | "::" => lo -= 1,
            _ if p.kind == TokenKind::Ident => lo -= 1,
            _ => break,
        }
        // Stop extending unless the next-outer token continues the chain.
        if lo > stmt.lo {
            let q = &toks[lo - 1];
            if !(q.kind == TokenKind::Ident
                || q.text == "."
                || q.text == "::"
                || q.text == ")"
                || q.text == "]")
            {
                break;
            }
        }
    }
    let chain = &toks[lo..chain_hi];
    family_in_chain(fc, func, owner, stmt_id, chain, depth)
}

/// Family from a receiver chain: `self.field…` names the field directly;
/// a leading local resolves through its definition (and, for match-arm
/// bindings, the scrutinee of the enclosing `match` header).
fn family_in_chain(
    fc: &FileCheck,
    func: &Function,
    owner: &str,
    stmt_id: usize,
    chain: &[Token],
    depth: usize,
) -> Option<String> {
    // `self . field` anywhere in the chain.
    for w in 0..chain.len().saturating_sub(2) {
        if chain[w].text == "self" && chain[w + 1].text == "." {
            let f = &chain[w + 2];
            if f.kind == TokenKind::Ident {
                return Some(format!("{owner}::{}", f.text));
            }
        }
    }
    // A chain rooted at a local: resolve its def and search there.
    let root = chain.iter().find(|t| t.kind == TokenKind::Ident && t.text != "self")?;
    let def = resolve_def(func, &root.text, stmt_id)?;
    let def_stmt = &func.stmts[def];
    let toks = fc.tokens();
    let def_toks = &toks[def_stmt.lo..def_stmt.hi.min(toks.len())];
    if let Some(fam) = family_in_tokens(def_toks, owner) {
        return Some(fam);
    }
    // Match-arm binding: the value comes from the scrutinee in the parent
    // header (`match self.stripes.get(t) { Some(lock) => … }`).
    let mut up = def_stmt.parent;
    let mut hops = 0;
    while let Some(p) = up {
        if hops > 2 {
            break;
        }
        let p_stmt: &Stmt = &func.stmts[p];
        let p_toks = &toks[p_stmt.lo..p_stmt.hi.min(toks.len())];
        if let Some(fam) = family_in_tokens(p_toks, owner) {
            return Some(fam);
        }
        up = p_stmt.parent;
        hops += 1;
    }
    // A parameter named like the root: qualify by the owner so helper
    // functions taking `lock: &RwLock<…>` still participate, coarsely.
    if func.params.iter().any(|pp| pp.name == root.text) {
        return Some(format!("{owner}::<param {}>", root.text));
    }
    let _ = depth;
    None
}

/// First `self . field` mention in a token slice.
fn family_in_tokens(toks: &[Token], owner: &str) -> Option<String> {
    for w in 0..toks.len().saturating_sub(2) {
        if toks[w].text == "self" && toks[w + 1].text == "." && toks[w + 2].kind == TokenKind::Ident
        {
            return Some(format!("{owner}::{}", toks[w + 2].text));
        }
    }
    None
}

/// Liveness interval of the guard produced at token `k` of statement
/// `id`, and the root binding statement when the guard is accumulated
/// into an outer collection.
fn liveness(
    fc: &FileCheck,
    func: &Function,
    id: usize,
    k: usize,
    chained: bool,
) -> ((usize, usize), Option<usize>) {
    let toks = fc.tokens();
    let stmt = &func.stmts[id];
    if chained {
        // `m.lock().len()` — the temporary drops at the statement's end.
        return ((id, id), None);
    }
    let first = toks[stmt.lo].text.as_str();
    if first == "let" {
        let end = drop_point(fc, func, id, &func.stmts[id].defs).unwrap_or(stmt.scope_end);
        return ((id, end), Some(id));
    }
    // `outer.push(x.lock())` — the guard escapes into `outer`.
    for j in stmt.lo..k {
        if toks[j].text == "push"
            && j >= 1
            && toks[j - 1].text == "."
            && toks.get(j + 1).is_some_and(|n| n.text == "(")
            && j >= 2
            && toks[j - 2].kind == TokenKind::Ident
        {
            let recv = &toks[j - 2].text;
            if let Some(root) = resolve_def(func, recv, id) {
                let end = drop_point(fc, func, id, std::slice::from_ref(recv))
                    .unwrap_or(func.stmts[root].scope_end);
                return ((id, end), Some(root));
            }
        }
    }
    ((id, id), None)
}

/// The statement where one of `names` is explicitly dropped after `id`,
/// if any: liveness ends just before it.
fn drop_point(fc: &FileCheck, func: &Function, id: usize, names: &[String]) -> Option<usize> {
    let toks = fc.tokens();
    let scope_end = func.stmts[id].scope_end;
    for d in (id + 1)..=scope_end.min(func.stmts.len() - 1) {
        let s = &func.stmts[d];
        let hi = s.hi.min(toks.len());
        for j in s.lo..hi {
            if toks[j].text == "drop"
                && toks.get(j + 1).is_some_and(|n| n.text == "(")
                && toks.get(j + 2).is_some_and(|n| names.contains(&n.text))
            {
                return Some(d.saturating_sub(1).max(id));
            }
        }
    }
    None
}

/// Same-family nesting and accumulation checks.
fn same_family_checks(
    fc: &FileCheck,
    func: &Function,
    events: &[LockEvent],
    out: &mut Vec<Diagnostic>,
) {
    let toks = fc.tokens();
    // Two distinct events of the same family, one acquired while the
    // other is live: a self-deadlock unless provably ordered.
    for (a_i, a) in events.iter().enumerate() {
        for b in events.iter().skip(a_i + 1) {
            let (Some(fa), Some(fb)) = (&a.family, &b.family) else { continue };
            if fa != fb || !overlaps(a, b) {
                continue;
            }
            fc.push(
                out,
                "lockorder",
                b.line,
                format!(
                    "`{fb}` acquired while another `{fa}` guard is still held (fn {}); \
                     nested same-family acquisition self-deadlocks a Mutex and must be \
                     restructured or proven disjoint",
                    func.name
                ),
            );
        }
    }
    // A single acquisition site executed repeatedly with the guards kept:
    // iterator `.collect()` into a bound, or a loop pushing into an outer
    // collection. The iteration source must be provably ascending.
    for e in events {
        let Some(fam) = &e.family else { continue };
        let Some(root) = e.bound_root else { continue };
        let stmt = &func.stmts[e.stmt];
        let stmt_toks = stmt.tokens(toks);
        let in_iterator = stmt_toks.windows(2).any(|w| {
            w[1].text == "("
                && matches!(
                    w[0].text.as_str(),
                    "map" | "filter_map" | "flat_map" | "iter" | "into_iter" | "values"
                )
        }) && e.token > stmt.lo
            && toks[stmt.lo..e.token].iter().any(|t| t.text == "|");
        let in_loop = loop_ancestor(func, e.stmt).is_some_and(|h| root < h || e.stmt != root);
        let accumulating = in_iterator || (in_loop && root != e.stmt);
        if !accumulating {
            continue;
        }
        if ordered_source(fc, func, e, root) {
            continue;
        }
        fc.push(
            out,
            "lockorder",
            e.line,
            format!(
                "multiple `{fam}` guards accumulated in an order that is not provably \
                 ascending (fn {}); collect the indices into a BTreeSet/BTreeMap or sort \
                 them before acquiring",
                func.name
            ),
        );
    }
}

fn overlaps(a: &LockEvent, b: &LockEvent) -> bool {
    // b acquired strictly inside a's live interval (after a's token when
    // in the same statement).
    if a.stmt == b.stmt && a.token == b.token {
        return false;
    }
    let (lo, hi) = a.live;
    if b.stmt < lo || b.stmt > hi {
        return false;
    }
    if b.stmt == a.stmt {
        return b.token > a.token;
    }
    true
}

fn loop_ancestor(func: &Function, id: usize) -> Option<usize> {
    let mut up = func.stmts[id].parent;
    while let Some(p) = up {
        if func.stmts[p].is_loop {
            return Some(p);
        }
        up = func.stmts[p].parent;
    }
    None
}

/// Is the iteration feeding event `e` provably ascending? True when the
/// acquiring statement, the root binding, the loop header, or the defs of
/// the identifiers they iterate over mention an ordered collection or an
/// explicit sort.
fn ordered_source(fc: &FileCheck, func: &Function, e: &LockEvent, root: usize) -> bool {
    let toks = fc.tokens();
    let mut to_scan: Vec<usize> = vec![e.stmt, root];
    if let Some(h) = loop_ancestor(func, e.stmt) {
        to_scan.push(h);
    }
    let mut seen = BTreeSet::new();
    let mut i = 0;
    while i < to_scan.len() && i < 16 {
        let s = to_scan[i];
        i += 1;
        if !seen.insert(s) {
            continue;
        }
        let stmt = &func.stmts[s];
        let st = stmt.tokens(toks);
        if st.iter().any(|t| ORDERED_MARKERS.contains(&t.text.as_str())) {
            return true;
        }
        // Follow the identifiers this statement iterates over.
        for t in &toks[stmt.rhs_lo.max(stmt.lo)..stmt.hi.min(toks.len())] {
            if t.kind == TokenKind::Ident {
                if let Some(d) = resolve_def(func, &t.text, s) {
                    if d != s && !seen.contains(&d) {
                        to_scan.push(d);
                    }
                }
            }
        }
    }
    false
}

/// Record edge `held → acquired` for every cross-family overlap.
fn cross_family_edges(fc: &FileCheck, events: &[LockEvent], edges: &mut Vec<LockEdge>) {
    for (a_i, a) in events.iter().enumerate() {
        for (b_i, b) in events.iter().enumerate() {
            if a_i == b_i {
                continue;
            }
            let (Some(fa), Some(fb)) = (&a.family, &b.family) else { continue };
            if fa == fb {
                continue; // handled by same_family_checks
            }
            // b acquired while a held: a before b in program order.
            let after = b.stmt > a.stmt || (b.stmt == a.stmt && b.token > a.token);
            if after && overlaps(a, b) {
                edges.push(LockEdge {
                    from: fa.clone(),
                    to: fb.clone(),
                    file: fc.path.clone(),
                    line: b.line,
                });
            }
        }
    }
}

/// Workspace-wide cycle detection over the collected edges. `checks`
/// supplies per-file suppression lookup for where each cycle is reported.
pub fn check_cycles(edges: &[LockEdge], checks: &[FileCheck], out: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in edges {
        // A cycle exists through this edge iff `to` reaches `from`.
        let Some(path) = shortest_path(&adj, &e.to, &e.from) else { continue };
        // Canonical cycle: nodes from `from` around; rotate to min.
        let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
        cycle.push(e.from.clone());
        cycle.extend(path.iter().map(|s| s.to_string()));
        let canon = canonical_rotation(&cycle);
        if !reported.insert(canon) {
            continue;
        }
        let display = {
            let mut d = cycle.clone();
            d.push(cycle[0].clone());
            d.join(" -> ")
        };
        let witnesses: Vec<String> = cycle_witnesses(edges, &cycle);
        let allowed = checks
            .iter()
            .find(|c| c.path == e.file)
            .is_some_and(|c| c.allowed("lockorder", e.line));
        if !allowed {
            out.push(Diagnostic {
                file: e.file.clone(),
                line: e.line,
                rule: "lockorder",
                message: format!(
                    "lock-acquisition cycle {display} ({}); impose a single global order",
                    witnesses.join(", ")
                ),
            });
        }
    }
}

fn shortest_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    let mut seen = BTreeSet::new();
    seen.insert(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            // Rebuild from..=to (exclusive of the final repeat of `to`).
            let mut path = vec![cur];
            let mut c = cur;
            while let Some(&p) = prev.get(c) {
                path.push(p);
                c = p;
            }
            path.reverse();
            path.pop(); // drop `to`: the caller closes the cycle
            return Some(path);
        }
        if let Some(nexts) = adj.get(cur) {
            for &n in nexts {
                if seen.insert(n) {
                    prev.insert(n, cur);
                    queue.push_back(n);
                }
            }
        }
    }
    None
}

fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min_pos =
        cycle.iter().enumerate().min_by_key(|(_, s)| s.as_str()).map(|(i, _)| i).unwrap_or(0);
    cycle[min_pos..].iter().chain(cycle[..min_pos].iter()).cloned().collect()
}

/// `file:line` witnesses for each edge of the cycle.
fn cycle_witnesses(edges: &[LockEdge], cycle: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for w in 0..cycle.len() {
        let from = &cycle[w];
        let to = &cycle[(w + 1) % cycle.len()];
        if let Some(e) = edges.iter().find(|e| &e.from == from && &e.to == to) {
            out.push(format!("{} under {} at {}:{}", e.to, e.from, e.file, e.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(path: &str, src: &str) -> (Vec<Diagnostic>, Vec<LockEdge>) {
        let fc = FileCheck::new(path, src);
        let funcs = fc.functions();
        let mut out = Vec::new();
        let edges = check(&fc, &funcs, &mut out);
        (out, edges)
    }

    #[test]
    fn nested_cross_family_locks_make_an_edge() {
        let src = "impl FloodGuard { fn allow(&self) -> bool {\n    let mut buckets = self.buckets.lock();\n    *self.rejected.lock() += 1;\n    true\n} }";
        let (diags, edges) = analyze("crates/server/src/flood.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].from, "FloodGuard::buckets");
        assert_eq!(edges[0].to, "FloodGuard::rejected");
    }

    #[test]
    fn sequential_guards_make_no_edge() {
        let src = "impl G { fn f(&self) {\n    { let a = self.x.lock(); drop(a); }\n    { let b = self.y.lock(); drop(b); }\n} }";
        let (diags, edges) = analyze("crates/server/src/flood.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn explicit_drop_ends_the_hold() {
        let src = "impl G { fn f(&self) {\n    let a = self.x.lock();\n    drop(a);\n    let b = self.y.lock();\n} }";
        let (_, edges) = analyze("crates/core/src/db.rs", src);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn btreemap_collected_stripe_guards_are_clean() {
        let src = "impl ShardedStore { fn apply(&self, batch: &Batch) {\n    let affected: BTreeSet<usize> = batch.ops().iter().map(|op| self.stripe_of(op)).collect();\n    let mut guards: BTreeMap<usize, G> = affected.iter().filter_map(|&idx| self.stripes.get(idx).map(|lock| (idx, lock.write()))).collect();\n    use_all(&mut guards);\n} }";
        let (diags, _) = analyze("crates/storage/src/shard.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unordered_accumulated_stripe_guards_are_flagged() {
        let src = "impl ShardedStore { fn apply(&self, keys: &[String]) {\n    let order: Vec<usize> = keys.iter().map(|k| self.stripe_of(k)).collect();\n    let mut guards = Vec::new();\n    for idx in order {\n        match self.stripes.get(idx) { Some(lock) => guards.push(lock.write()), None => {} }\n    }\n} }";
        let (diags, _) = analyze("crates/storage/src/shard.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("not provably ascending"), "{}", diags[0].message);
    }

    #[test]
    fn match_arm_guard_resolves_through_the_scrutinee() {
        let src = "impl S { fn with_tree(&self, t: &str) {\n    match self.stripes.get(self.idx(t)) {\n        Some(lock) => { let guard = lock.read(); touch(guard); }\n        None => {}\n    }\n} }";
        let fc = FileCheck::new("crates/storage/src/shard.rs", src);
        let funcs = fc.functions();
        let owners = impl_ranges(fc.tokens(), "shard");
        let evs = collect_events(&fc, &funcs[0], &owners);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].family.as_deref(), Some("S::stripes"), "{:?}", evs[0].family);
    }

    #[test]
    fn cycle_across_two_files_is_detected() {
        let a = FileCheck::new(
            "crates/server/src/m1.rs",
            "impl Pair { fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        let b = FileCheck::new(
            "crates/server/src/m2.rs",
            "impl Pair { fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        );
        let mut out = Vec::new();
        let mut edges = check(&a, &a.functions(), &mut out);
        edges.extend(check(&b, &b.functions(), &mut out));
        assert!(out.is_empty(), "{out:?}");
        check_cycles(&edges, &[a, b], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lockorder");
        assert!(out[0].message.contains("cycle"), "{}", out[0].message);
    }

    #[test]
    fn consistent_order_across_files_is_clean() {
        let a = FileCheck::new(
            "crates/server/src/m1.rs",
            "impl Pair { fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        let b = FileCheck::new(
            "crates/server/src/m2.rs",
            "impl Pair { fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        let mut out = Vec::new();
        let mut edges = check(&a, &a.functions(), &mut out);
        edges.extend(check(&b, &b.functions(), &mut out));
        check_cycles(&edges, &[a, b], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_read_write_with_args_are_not_lock_events() {
        let src = "impl W { fn f(&self, s: &mut TcpStream, buf: &mut [u8]) {\n    s.read(buf);\n    s.write(buf);\n} }";
        let (diags, edges) = analyze("crates/server/src/tcp.rs", src);
        assert!(diags.is_empty());
        assert!(edges.is_empty());
    }
}
