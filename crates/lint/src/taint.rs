//! Rule `taint` — privacy-sensitive values must not reach output sinks
//! unpseudonymized.
//!
//! The paper's server is only defensible if it is *less* invasive than
//! the software it polices (PAPER.md §2.2): transport identities and
//! account credentials may be observed transiently but must never be
//! displayed, logged, counted, or encoded raw. This pass tracks two
//! taint classes through each function body's CFG:
//!
//! * **net** — peer transport identity: parameters typed `SocketAddr`/
//!   `IpAddr` and names like `peer`/`peer_ip`/`remote_addr`, tracked in
//!   `crates/server/` where sockets live.
//! * **cred** — account identity: `email`/`password` bindings and
//!   `.author`/`.email`/`.password` field reads, tracked everywhere.
//!
//! Taint propagates through `let` bindings, reassignment, `for`/match
//! patterns, and closure parameters (flow-sensitively, to a fixpoint over
//! the successor edges). Passing a value through a registered sanitizer —
//! the `crypto` digests (`email_digest`, `hmac_sha256`, `PasswordHash`)
//! or the pseudonymizing tag helpers (`pseudonym_tag`, `pseudonymize`) —
//! clears it. Sinks:
//!
//! * print/log macros (`println!`, `eprintln!`, `write!`, …) everywhere,
//!   and `format!` in `crates/server/src/web.rs` (HTML response bodies);
//! * `.insert(`/`.entry(` keyed by a **net** value in `crates/server/`
//!   (identity-keyed maps such as flood buckets outlive the connection);
//! * `write_frame(` — wire encoding outside `proto`'s own framing.

use std::collections::BTreeMap;

use crate::cfg::Function;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, FileCheck};

/// Taint class bitmask: peer transport identity.
const NET: u8 = 1;
/// Taint class bitmask: account credential / user id.
const CRED: u8 = 2;

/// Names that carry peer transport identity wherever they appear.
const NET_NAMES: &[&str] =
    &["peer", "peer_ip", "peer_addr", "peer_tag_raw", "remote_addr", "remote_ip", "client_ip"];

/// Parameter types that carry peer transport identity.
const NET_TYPES: &[&str] = &["SocketAddr", "IpAddr", "Ipv4Addr", "Ipv6Addr"];

/// Names that carry account credentials wherever they appear.
const CRED_NAMES: &[&str] = &["email", "password", "raw_email", "plaintext_password"];

/// Field reads (`x.field`) that yield credential taint.
const CRED_FIELDS: &[&str] = &["author", "email", "password"];

/// Calls that clear taint from everything inside their argument list.
const SANITIZERS: &[&str] = &[
    "email_digest",
    "email_digest_unpeppered",
    "hmac_sha256",
    "pseudonym_tag",
    "pseudonymize",
    "create",        // PasswordHash::create
    "verify",        // PasswordHash::verify (constant-time compare)
    "salted_digest", // SaltedDigest construction
];

/// Print/log macros that are sinks everywhere.
const PRINT_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "write", "writeln", "log", "info", "warn", "error",
    "debug", "trace",
];

/// The one file where `format!` itself is a sink (HTML response bodies).
const FORMAT_SINK_FILE: &str = "crates/server/src/web.rs";

/// Run the taint pass over every function in the file.
pub fn check(fc: &FileCheck, funcs: &[Function], out: &mut Vec<Diagnostic>) {
    let in_server = fc.path.starts_with("crates/server/");
    let mut findings = std::collections::BTreeSet::new();
    for func in funcs {
        check_function(fc, func, in_server, &mut findings);
    }
    for (line, message) in findings {
        fc.push(out, "taint", line, message);
    }
}

fn net_name(text: &str, in_server: bool) -> bool {
    in_server && NET_NAMES.contains(&text)
}

fn cred_name(text: &str) -> bool {
    CRED_NAMES.contains(&text)
}

fn class_names(mask: u8) -> &'static str {
    match (mask & NET != 0, mask & CRED != 0) {
        (true, true) => "peer-identity+credential",
        (true, false) => "peer-identity",
        _ => "credential",
    }
}

fn check_function(
    fc: &FileCheck,
    func: &Function,
    in_server: bool,
    findings: &mut std::collections::BTreeSet<(usize, String)>,
) {
    let toks = fc.tokens();
    let n = func.stmts.len();

    // Entry state: tainted parameters.
    let mut entry: BTreeMap<String, u8> = BTreeMap::new();
    for p in &func.params {
        let mut mask = 0u8;
        if in_server && p.ty.iter().any(|t| NET_TYPES.contains(&t.as_str())) {
            mask |= NET;
        }
        if net_name(&p.name, in_server) {
            mask |= NET;
        }
        if cred_name(&p.name) {
            mask |= CRED;
        }
        if mask != 0 {
            entry.insert(p.name.clone(), mask);
        }
    }

    if n == 0 {
        return;
    }

    // Flow-sensitive fixpoint: `states[i]` is the in-state of statement i.
    let mut states: Vec<Option<BTreeMap<String, u8>>> = vec![None; n];
    states[0] = Some(entry);
    let mut worklist = vec![0usize];
    let mut visits = 0usize;
    while let Some(id) = worklist.pop() {
        visits += 1;
        if visits > 16 * n + 64 {
            break; // fixpoint safety valve; state only grows, so rare
        }
        let state = states[id].clone().unwrap_or_default();
        let out_state = transfer(fc, func, id, &state, in_server);
        for &s in &func.succ[id] {
            let merged = match &states[s] {
                None => out_state.clone(),
                Some(prev) => {
                    let mut m = prev.clone();
                    let mut changed = false;
                    for (k, v) in &out_state {
                        let slot = m.entry(k.clone()).or_insert(0);
                        if *slot | *v != *slot {
                            *slot |= *v;
                            changed = true;
                        }
                    }
                    if !changed {
                        continue;
                    }
                    m
                }
            };
            states[s] = Some(merged);
            worklist.push(s);
        }
    }

    // Sink scan with the final in-states.
    for id in 0..n {
        let state = states[id].clone().unwrap_or_default();
        scan_sinks(fc, func, id, &state, in_server, findings);
    }
    let _ = toks;
}

/// Compute the out-state of statement `id` given its in-state.
fn transfer(
    fc: &FileCheck,
    func: &Function,
    id: usize,
    state: &BTreeMap<String, u8>,
    in_server: bool,
) -> BTreeMap<String, u8> {
    let stmt = &func.stmts[id];
    let toks = fc.tokens();
    let rhs_lo = stmt.rhs_lo.max(stmt.lo);
    let rhs = &toks[rhs_lo..stmt.hi.min(toks.len())];
    let (rhs_mask, _) = expr_mask(rhs, state, in_server);
    let mut out = state.clone();
    for def in &stmt.defs {
        let mut mask = rhs_mask;
        if net_name(def, in_server) {
            mask |= NET;
        }
        if cred_name(def) {
            mask |= CRED;
        }
        if mask == 0 {
            out.remove(def); // clean reassignment kills the taint
        } else {
            out.insert(def.clone(), mask);
        }
    }
    out
}

/// Taint mask of an expression token slice, with sanitizer calls'
/// argument subtrees skipped. Returns the mask and a witness token text.
fn expr_mask(
    toks: &[Token],
    state: &BTreeMap<String, u8>,
    in_server: bool,
) -> (u8, Option<String>) {
    let mut mask = 0u8;
    let mut witness = None;
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokenKind::Ident {
            // Sanitizer call: skip its whole argument list.
            if SANITIZERS.contains(&t.text.as_str())
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
            {
                k = close_of(toks, k + 1).map(|c| c + 1).unwrap_or(toks.len());
                continue;
            }
            let prev = k.checked_sub(1).map(|p| toks[p].text.as_str()).unwrap_or("");
            let mut m = 0u8;
            if prev == "." {
                if CRED_FIELDS.contains(&t.text.as_str()) {
                    m |= CRED;
                }
                if net_name(&t.text, in_server) {
                    m |= NET;
                }
            } else if prev != "::" {
                if let Some(&s) = state.get(&t.text) {
                    m |= s;
                }
                if net_name(&t.text, in_server) {
                    m |= NET;
                }
                if cred_name(&t.text) {
                    m |= CRED;
                }
            }
            if m != 0 {
                mask |= m;
                if witness.is_none() {
                    witness = Some(t.text.clone());
                }
            }
        }
        k += 1;
    }
    (mask, witness)
}

/// Index of the token closing the group opened at `open` within `toks`.
fn close_of(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Report tainted values reaching sinks inside statement `id`.
fn scan_sinks(
    fc: &FileCheck,
    func: &Function,
    id: usize,
    state: &BTreeMap<String, u8>,
    in_server: bool,
    findings: &mut std::collections::BTreeSet<(usize, String)>,
) {
    let toks = fc.tokens();
    let stmt = &func.stmts[id];
    let hi = stmt.hi.min(toks.len());
    for k in stmt.lo..hi {
        if fc.in_test(k) {
            continue;
        }
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next = toks.get(k + 1).map(|n| n.text.as_str()).unwrap_or("");
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str()).unwrap_or("");

        // Print/log macro sink — and `format!` in the web front end.
        let is_macro_sink = next == "!"
            && toks.get(k + 2).is_some_and(|n| n.text == "(")
            && (PRINT_MACROS.contains(&t.text.as_str())
                || (t.text == "format" && fc.path == FORMAT_SINK_FILE));
        if is_macro_sink {
            let open = k + 2;
            if let Some(close) = close_of(toks, open) {
                let args = &toks[open + 1..close];
                let (mut mask, mut witness) = expr_mask(args, state, in_server);
                // Inline captures in the format string: `{name}`.
                if let Some(lit) = args.iter().find(|t| t.kind == TokenKind::Literal) {
                    for name in inline_captures(&lit.text) {
                        let mut m = state.get(&name).copied().unwrap_or(0);
                        if net_name(&name, in_server) {
                            m |= NET;
                        }
                        if cred_name(&name) {
                            m |= CRED;
                        }
                        if m != 0 {
                            mask |= m;
                            witness.get_or_insert(name);
                        }
                    }
                }
                if mask != 0 {
                    let w = witness.unwrap_or_default();
                    findings.insert((
                        t.line,
                        format!(
                            "{} value `{}` reaches `{}!` output unpseudonymized; route it \
                             through pseudonym_tag/email_digest first (fn {})",
                            class_names(mask),
                            w,
                            t.text,
                            func.name
                        ),
                    ));
                }
            }
        }

        // Identity-keyed map sink: `.insert(tainted…)` / `.entry(tainted…)`.
        if in_server && prev == "." && (t.text == "insert" || t.text == "entry") && next == "(" {
            if let Some(close) = close_of(toks, k + 1) {
                let args = &toks[k + 2..close];
                let (mask, witness) = expr_mask(args, state, in_server);
                if mask & NET != 0 {
                    findings.insert((
                        t.line,
                        format!(
                            "peer-identity value `{}` used as a `.{}()` map key outlives the \
                             connection; key the map by a pseudonymized tag (fn {})",
                            witness.unwrap_or_default(),
                            t.text,
                            func.name
                        ),
                    ));
                }
            }
        }

        // Wire-encoding sink outside proto's own framing.
        if t.text == "write_frame" && next == "(" && !fc.path.starts_with("crates/proto/") {
            if let Some(close) = close_of(toks, k + 1) {
                let args = &toks[k + 2..close];
                let (mask, witness) = expr_mask(args, state, in_server);
                if mask != 0 {
                    findings.insert((
                        t.line,
                        format!(
                            "{} value `{}` written to the wire unpseudonymized (fn {})",
                            class_names(mask),
                            witness.unwrap_or_default(),
                            func.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers captured inline by a format string literal: `{name}` and
/// `{name:spec}`; `{{` escapes and positional `{}`/`{0}` are ignored.
fn inline_captures(literal: &str) -> Vec<String> {
    let chars: Vec<char> = literal.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '}' && chars[j] != ':' {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty()
                && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let fc = FileCheck::new(path, src);
        let funcs = fc.functions();
        let mut out = Vec::new();
        check(&fc, &funcs, &mut out);
        out
    }

    #[test]
    fn peer_param_printed_is_flagged() {
        let src = "fn serve(peer: SocketAddr) { println!(\"conn from {}\", peer); }";
        let d = diags("crates/server/src/tcp.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "taint");
        assert!(d[0].message.contains("peer-identity"), "{}", d[0].message);
    }

    #[test]
    fn taint_propagates_through_let_chains() {
        let src = "fn serve(peer: SocketAddr) {\n    let ip = peer.ip();\n    let s = ip.to_string();\n    eprintln!(\"{s}\");\n}";
        let d = diags("crates/server/src/tcp.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn sanitizer_clears_the_taint() {
        let src = "fn serve(db: &Db, peer: SocketAddr) {\n    let tag = db.pseudonym_tag(\"peer\", &peer.ip().to_string());\n    println!(\"conn {tag}\");\n}";
        assert!(diags("crates/server/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn net_names_are_scoped_to_the_server_crate() {
        let src = "fn sim(peer: u64) { println!(\"agent {peer}\"); }";
        assert!(diags("crates/sim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn author_field_in_web_format_is_flagged() {
        let src = "fn page(c: &Comment) -> String { format!(\"<li>{}</li>\", c.author) }";
        let d = diags("crates/server/src/web.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("credential"), "{}", d[0].message);
    }

    #[test]
    fn format_is_not_a_sink_outside_web_rs() {
        // Key construction in storage legitimately embeds the author.
        let src = "fn key(c: &Comment) -> String { format!(\"{}:{}\", c.software_id, c.author) }";
        assert!(diags("crates/storage/src/table.rs", src).is_empty());
    }

    #[test]
    fn net_keyed_map_insert_is_flagged() {
        let src = "fn note(m: &mut Map, peer_ip: String) { m.entry(peer_ip).or_default(); }";
        let d = diags("crates/server/src/flood.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("map key"), "{}", d[0].message);
    }

    #[test]
    fn clean_reassignment_kills_taint() {
        let src = "fn f(db: &Db, mut email: String) {\n    email = db.email_digest(&email).to_hex();\n    println!(\"{email}\");\n}";
        // The reassigned value went through a sanitizer, but the *name*
        // `email` stays a credential source: still flagged. Renaming to a
        // digest-named binding is the clean pattern.
        let d = diags("crates/core/src/db.rs", src);
        assert_eq!(d.len(), 1);
        let renamed = "fn f(db: &Db, email: String) {\n    let digest = db.email_digest(&email).to_hex();\n    println!(\"{digest}\");\n}";
        assert!(diags("crates/core/src/db.rs", renamed).is_empty());
    }

    #[test]
    fn inline_captures_parse() {
        assert_eq!(inline_captures("\"{peer} and {x:?} not {{esc}} or {}\""), ["peer", "x"]);
    }

    #[test]
    fn suppression_with_reason_silences_a_finding() {
        let src = "fn serve(peer: SocketAddr) {\n    // lint: allow(taint, \"operator debug log, gated off in release\")\n    println!(\"conn from {}\", peer);\n}";
        assert!(diags("crates/server/src/tcp.rs", src).is_empty());
    }
}
