//! A small Rust lexer: just enough structure for token-pattern linting.
//!
//! The pass runs in environments without network access, so it cannot lean
//! on `syn`/`proc-macro2`. A full parse is also unnecessary: every rule in
//! [`crate::rules`] is expressible over a comment- and string-aware token
//! stream with line numbers. The lexer therefore handles exactly the parts
//! of Rust that would otherwise produce false positives — comments (line,
//! nested block), string/char/byte literals, raw strings with arbitrary
//! hash fences, lifetimes vs char literals — and flattens everything else
//! into identifiers, numbers and (multi-char) operator tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Numeric literal.
    Num,
    /// String / char / byte-string literal (contents are opaque).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (for `Literal`, the raw literal including quotes).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

/// A `// lint: allow(rule, ...)` directive found while lexing.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive comment appears on.
    pub line: usize,
    /// Rule name inside the parentheses.
    pub rule: String,
}

/// Lexer output: the token stream plus side-channel facts the rules need.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments.
    pub tokens: Vec<Token>,
    /// Every allow directive, one entry per rule name listed.
    pub allows: Vec<AllowDirective>,
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "^=", "&&", "||", "&=", "|=", "<<", ">>", "..",
];

/// Lex `source` into tokens and directives.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek(&bytes, i + 1) == Some('/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let comment: String = bytes[start..i].iter().collect();
                collect_allows(&comment, line, &mut out.allows);
            }
            '/' if peek(&bytes, i + 1) == Some('*') => {
                // Nested block comments; count newlines for line tracking.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && peek(&bytes, i + 1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && peek(&bytes, i + 1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (text, nl) = read_string(&bytes, &mut i);
                out.tokens.push(Token { kind: TokenKind::Literal, text, line });
                line += nl;
            }
            'r' | 'b' if starts_raw_or_byte_literal(&bytes, i) => {
                let (text, nl) = read_prefixed_literal(&bytes, &mut i);
                out.tokens.push(Token { kind: TokenKind::Literal, text, line });
                line += nl;
            }
            '\'' => {
                if is_char_literal(&bytes, i) {
                    let (text, nl) = read_char(&bytes, &mut i);
                    out.tokens.push(Token { kind: TokenKind::Literal, text, line });
                    line += nl;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    out.tokens.push(Token { kind: TokenKind::Lifetime, text, line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                // A fractional part: exactly one dot followed by a digit —
                // never consume `..` range syntax.
                if i < bytes.len()
                    && bytes[i] == '.'
                    && peek(&bytes, i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                out.tokens.push(Token { kind: TokenKind::Num, text, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.tokens.push(Token { kind: TokenKind::Ident, text, line });
            }
            _ => {
                let text = read_operator(&bytes, &mut i);
                out.tokens.push(Token { kind: TokenKind::Punct, text, line });
            }
        }
    }
    out
}

fn peek(bytes: &[char], i: usize) -> Option<char> {
    bytes.get(i).copied()
}

/// True when `r`/`b` at `i` starts a literal (`r"`, `r#"`, `b"`, `b'`,
/// `br#"`, …) rather than an identifier like `radius`.
fn starts_raw_or_byte_literal(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if peek(bytes, j) == Some('b') {
        j += 1;
        if peek(bytes, j) == Some('\'') {
            return true; // byte char b'x'
        }
    }
    if peek(bytes, j) == Some('r') {
        j += 1;
        while peek(bytes, j) == Some('#') {
            j += 1;
        }
    }
    peek(bytes, j) == Some('"')
}

/// Read a plain `"..."` string starting at `*i`; returns (text, newlines).
fn read_string(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    let mut nl = 0;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => *i += 2,
            '"' => {
                *i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    nl += 1;
                }
                *i += 1;
            }
        }
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

/// Read a `r`/`b`-prefixed string literal (raw fences included).
fn read_prefixed_literal(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    let mut nl = 0;
    if peek(bytes, *i) == Some('b') {
        *i += 1;
        if peek(bytes, *i) == Some('\'') {
            // Byte char: reuse the char reader.
            let (_, n) = read_char(bytes, i);
            return (bytes[start..*i].iter().collect(), n);
        }
    }
    let raw = peek(bytes, *i) == Some('r');
    if raw {
        *i += 1;
    }
    let mut hashes = 0;
    while peek(bytes, *i) == Some('#') {
        hashes += 1;
        *i += 1;
    }
    *i += 1; // opening quote
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\n' {
            nl += 1;
        }
        if c == '\\' && !raw {
            *i += 2;
            continue;
        }
        if c == '"' {
            // A raw string ends only at `"` followed by `hashes` hashes.
            let mut j = *i + 1;
            let mut seen = 0;
            while seen < hashes && peek(bytes, j) == Some('#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                break;
            }
        }
        *i += 1;
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

/// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match peek(bytes, i + 1) {
        Some('\\') => true,
        Some(_) => peek(bytes, i + 2) == Some('\''),
        None => false,
    }
}

fn read_char(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => *i += 2,
            '\'' => {
                *i += 1;
                break;
            }
            _ => *i += 1,
        }
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), 0)
}

fn read_operator(bytes: &[char], i: &mut usize) -> String {
    for op in OPERATORS {
        let chars: Vec<char> = op.chars().collect();
        if bytes[*i..].starts_with(&chars) {
            *i += chars.len();
            return (*op).to_string();
        }
    }
    let c = bytes[*i];
    *i += 1;
    c.to_string()
}

/// Extract `lint: allow(a, b)` rule names from a line comment.
fn collect_allows(comment: &str, line: usize, allows: &mut Vec<AllowDirective>) {
    let Some(idx) = comment.find("lint: allow(") else { return };
    let rest = &comment[idx + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.push(AllowDirective { line, rule: rule.to_string() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "call .unwrap() here";
            let r = r#"panic!("raw")"#;
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").tokens;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Literal).map(|t| &t.text).collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let texts: Vec<String> = lex("a == b; c => d; e..=f; g::h; i != j")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text != ";")
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "=>", "..=", "::", "!="]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..8 { x[i] }").tokens;
        let nums: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Num).collect();
        assert_eq!(nums.len(), 2);
        assert!(toks.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn float_literals_lex_whole() {
        let toks = lex("let x = 1.5e3 + 100.0f64;").tokens;
        let nums: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Num).map(|t| t.text.clone()).collect();
        assert_eq!(nums, ["1.5e3", "100.0f64"]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "let t = now(); // lint: allow(clock, panic)\n";
        let lexed = lex(src);
        let rules: Vec<_> = lexed.allows.iter().map(|a| (a.line, a.rule.as_str())).collect();
        assert_eq!(rules, [(1, "clock"), (1, "panic")]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* one\ntwo */\nlet a = \"x\ny\";\nb";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!(b, Some(5));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r###"let a = b"bytes"; let c = br#"raw"#; let d = b'x'; ident"###).tokens;
        assert!(toks.iter().any(|t| t.text == "ident" && t.kind == TokenKind::Ident));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Literal).count(), 3);
    }
}
