//! A small Rust lexer: just enough structure for token-pattern linting.
//!
//! The pass runs in environments without network access, so it cannot lean
//! on `syn`/`proc-macro2`. A full parse is also unnecessary: every rule in
//! [`crate::rules`] is expressible over a comment- and string-aware token
//! stream with line numbers. The lexer therefore handles exactly the parts
//! of Rust that would otherwise produce false positives — comments (line,
//! nested block), string/char/byte literals, raw strings with arbitrary
//! hash fences, lifetimes vs char literals — and flattens everything else
//! into identifiers, numbers and (multi-char) operator tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Numeric literal.
    Num,
    /// String / char / byte-string literal (contents are opaque).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (for `Literal`, the raw literal including quotes).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based *character* column of the token's first character. A `é`
    /// before the token advances this by one.
    pub col: usize,
    /// 1-based *byte* column of the token's first character. A `é` before
    /// the token advances this by two (UTF-8 length), which is what
    /// editors addressing files by byte offset need.
    pub byte_col: usize,
}

/// A `// lint: allow(rule, "reason")` directive found while lexing.
/// Both `lint: allow(...)` and `lint:allow(...)` spellings are accepted.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive comment appears on.
    pub line: usize,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// The quoted justification, when one was written. The `suppression`
    /// meta-rule flags directives that omit it.
    pub reason: Option<String>,
}

/// Lexer output: the token stream plus side-channel facts the rules need.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments.
    pub tokens: Vec<Token>,
    /// Every allow directive, one entry per rule name listed.
    pub allows: Vec<AllowDirective>,
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "^=", "&&", "||", "&=", "|=", "<<", ">>", "..",
];

/// Lex `source` into tokens and directives.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    // Char offset of each token's first character; resolved to (char, byte)
    // columns in one pass at the end, when every line start is known.
    let mut positions: Vec<usize> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek(&bytes, i + 1) == Some('/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let comment: String = bytes[start..i].iter().collect();
                collect_allows(&comment, line, &mut out.allows);
            }
            '/' if peek(&bytes, i + 1) == Some('*') => {
                // Nested block comments; count newlines for line tracking.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && peek(&bytes, i + 1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && peek(&bytes, i + 1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (text, nl) = read_string(&bytes, &mut i);
                positions.push(start);
                out.tokens.push(token(TokenKind::Literal, text, line));
                line += nl;
            }
            'r' | 'b' if starts_raw_or_byte_literal(&bytes, i) => {
                let (text, nl) = read_prefixed_literal(&bytes, &mut i);
                positions.push(start);
                out.tokens.push(token(TokenKind::Literal, text, line));
                line += nl;
            }
            '\'' => {
                if is_char_literal(&bytes, i) {
                    let (text, nl) = read_char(&bytes, &mut i);
                    positions.push(start);
                    out.tokens.push(token(TokenKind::Literal, text, line));
                    line += nl;
                } else {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    positions.push(start);
                    out.tokens.push(token(TokenKind::Lifetime, text, line));
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                // A fractional part: exactly one dot followed by a digit —
                // never consume `..` range syntax.
                if i < bytes.len()
                    && bytes[i] == '.'
                    && peek(&bytes, i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                positions.push(start);
                out.tokens.push(token(TokenKind::Num, text, line));
            }
            c if c.is_alphabetic() || c == '_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                positions.push(start);
                out.tokens.push(token(TokenKind::Ident, text, line));
            }
            _ => {
                let text = read_operator(&bytes, &mut i);
                positions.push(start);
                out.tokens.push(token(TokenKind::Punct, text, line));
            }
        }
    }
    resolve_columns(&bytes, &positions, &mut out.tokens);
    out
}

fn token(kind: TokenKind, text: String, line: usize) -> Token {
    Token { kind, text, line, col: 0, byte_col: 0 }
}

/// Fill in `col`/`byte_col` for every token. Columns are computed from the
/// char offset of the token against the start of its *own* line, once in
/// chars and once in UTF-8 bytes — conflating the two is exactly the bug
/// this pass exists to avoid.
fn resolve_columns(bytes: &[char], positions: &[usize], tokens: &mut [Token]) {
    let mut line_starts = vec![0usize];
    for (idx, &c) in bytes.iter().enumerate() {
        if c == '\n' {
            line_starts.push(idx + 1);
        }
    }
    // Prefix byte offsets: byte_off[k] = UTF-8 length of bytes[..k].
    let mut byte_off = Vec::with_capacity(bytes.len() + 1);
    let mut acc = 0usize;
    byte_off.push(0usize);
    for &c in bytes {
        acc += c.len_utf8();
        byte_off.push(acc);
    }
    for (tok, &pos) in tokens.iter_mut().zip(positions) {
        let ls = line_starts.get(tok.line.saturating_sub(1)).copied().unwrap_or(0);
        tok.col = pos.saturating_sub(ls) + 1;
        let pos_b = byte_off.get(pos).copied().unwrap_or(acc);
        let ls_b = byte_off.get(ls).copied().unwrap_or(0);
        tok.byte_col = pos_b.saturating_sub(ls_b) + 1;
    }
}

fn peek(bytes: &[char], i: usize) -> Option<char> {
    bytes.get(i).copied()
}

/// True when `r`/`b` at `i` starts a literal (`r"`, `r#"`, `b"`, `b'`,
/// `br#"`, …) rather than an identifier like `radius`.
fn starts_raw_or_byte_literal(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if peek(bytes, j) == Some('b') {
        j += 1;
        if peek(bytes, j) == Some('\'') {
            return true; // byte char b'x'
        }
    }
    if peek(bytes, j) == Some('r') {
        j += 1;
        while peek(bytes, j) == Some('#') {
            j += 1;
        }
    }
    peek(bytes, j) == Some('"')
}

/// Read a plain `"..."` string starting at `*i`; returns (text, newlines).
fn read_string(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    let mut nl = 0;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => {
                // The escaped character may itself be a newline (string
                // line-continuation); it still advances the line counter.
                if peek(bytes, *i + 1) == Some('\n') {
                    nl += 1;
                }
                *i += 2;
            }
            '"' => {
                *i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    nl += 1;
                }
                *i += 1;
            }
        }
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

/// Read a `r`/`b`-prefixed string literal (raw fences included).
fn read_prefixed_literal(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    let mut nl = 0;
    if peek(bytes, *i) == Some('b') {
        *i += 1;
        if peek(bytes, *i) == Some('\'') {
            // Byte char: reuse the char reader.
            let (_, n) = read_char(bytes, i);
            return (bytes[start..*i].iter().collect(), n);
        }
    }
    let raw = peek(bytes, *i) == Some('r');
    if raw {
        *i += 1;
    }
    let mut hashes = 0;
    while peek(bytes, *i) == Some('#') {
        hashes += 1;
        *i += 1;
    }
    *i += 1; // opening quote
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\n' {
            nl += 1;
        }
        if c == '\\' && !raw {
            // Count a line-continuation's newline before skipping it.
            if peek(bytes, *i + 1) == Some('\n') {
                nl += 1;
            }
            *i += 2;
            continue;
        }
        if c == '"' {
            // A raw string ends only at `"` followed by `hashes` hashes.
            let mut j = *i + 1;
            let mut seen = 0;
            while seen < hashes && peek(bytes, j) == Some('#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                break;
            }
        }
        *i += 1;
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

/// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match peek(bytes, i + 1) {
        Some('\\') => true,
        Some(_) => peek(bytes, i + 2) == Some('\''),
        None => false,
    }
}

fn read_char(bytes: &[char], i: &mut usize) -> (String, usize) {
    let start = *i;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => *i += 2,
            '\'' => {
                *i += 1;
                break;
            }
            _ => *i += 1,
        }
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), 0)
}

fn read_operator(bytes: &[char], i: &mut usize) -> String {
    for op in OPERATORS {
        let chars: Vec<char> = op.chars().collect();
        if bytes[*i..].starts_with(&chars) {
            *i += chars.len();
            return (*op).to_string();
        }
    }
    let c = bytes[*i];
    *i += 1;
    c.to_string()
}

/// Extract `lint: allow(a, b, "reason")` directives from a line comment.
/// The reason is an optional final quoted argument shared by every rule
/// the directive lists; the closing `)` is found quote-aware, so reasons
/// may themselves contain `)` or `,`.
fn collect_allows(comment: &str, line: usize, allows: &mut Vec<AllowDirective>) {
    let idx = match comment.find("lint: allow(") {
        Some(i) => i + "lint: allow(".len(),
        None => match comment.find("lint:allow(") {
            Some(i) => i + "lint:allow(".len(),
            None => return,
        },
    };
    let rest: Vec<char> = comment[idx..].chars().collect();

    // Split the argument list on top-level commas, quote-aware.
    let mut args: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut i = 0usize;
    loop {
        let Some(&c) = rest.get(i) else { return }; // unterminated: ignore
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '\\' if in_quotes => {
                cur.push(c);
                if let Some(&n) = rest.get(i + 1) {
                    cur.push(n);
                    i += 1;
                }
            }
            ',' if !in_quotes => {
                args.push(std::mem::take(&mut cur));
            }
            ')' if !in_quotes => {
                args.push(cur);
                break;
            }
            _ => cur.push(c),
        }
        i += 1;
    }

    let mut reason = None;
    let mut rules = Vec::new();
    for arg in &args {
        let arg = arg.trim();
        if arg.is_empty() {
            continue;
        }
        if arg.starts_with('"') {
            let trimmed = arg.trim_matches('"');
            reason = Some(trimmed.to_string());
        } else {
            rules.push(arg.to_string());
        }
    }
    for rule in rules {
        allows.push(AllowDirective { line, rule, reason: reason.clone() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "call .unwrap() here";
            let r = r#"panic!("raw")"#;
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").tokens;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Literal).map(|t| &t.text).collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let texts: Vec<String> = lex("a == b; c => d; e..=f; g::h; i != j")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text != ";")
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "=>", "..=", "::", "!="]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..8 { x[i] }").tokens;
        let nums: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Num).collect();
        assert_eq!(nums.len(), 2);
        assert!(toks.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn float_literals_lex_whole() {
        let toks = lex("let x = 1.5e3 + 100.0f64;").tokens;
        let nums: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Num).map(|t| t.text.clone()).collect();
        assert_eq!(nums, ["1.5e3", "100.0f64"]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "let t = now(); // lint: allow(clock, panic)\n";
        let lexed = lex(src);
        let rules: Vec<_> = lexed.allows.iter().map(|a| (a.line, a.rule.as_str())).collect();
        assert_eq!(rules, [(1, "clock"), (1, "panic")]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* one\ntwo */\nlet a = \"x\ny\";\nb";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!(b, Some(5));
    }

    #[test]
    fn allow_directive_with_reason_is_parsed() {
        let src = "y.unwrap(); // lint: allow(panic, \"caller checked emptiness (§2)\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "panic");
        assert_eq!(lexed.allows[0].reason.as_deref(), Some("caller checked emptiness (§2)"));
    }

    #[test]
    fn allow_reason_may_contain_commas_and_parens() {
        let src = "x(); // lint: allow(taint, \"tag, not raw (already hashed)\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].reason.as_deref(), Some("tag, not raw (already hashed)"));
    }

    #[test]
    fn compact_lint_allow_spelling_is_accepted() {
        let src = "x(); // lint:allow(guard-io, \"compaction-only mutex\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].rule, "guard-io");
        assert_eq!(lexed.allows[0].reason.as_deref(), Some("compaction-only mutex"));
    }

    #[test]
    fn multi_rule_directive_shares_the_reason() {
        let src = "x(); // lint: allow(clock, panic, \"bench harness\")\n";
        let lexed = lex(src);
        let got: Vec<_> =
            lexed.allows.iter().map(|a| (a.rule.as_str(), a.reason.as_deref())).collect();
        assert_eq!(got, [("clock", Some("bench harness")), ("panic", Some("bench harness"))]);
    }

    #[test]
    fn reasonless_directive_has_no_reason() {
        let lexed = lex("x(); // lint: allow(clock)\n");
        assert_eq!(lexed.allows[0].reason, None);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // `\` at end of line is a string continuation: the literal swallows
        // the newline, but the *file* still advanced a line.
        let src = "let s = \"a\\\nb\";\nafter";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.text == "after").map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn columns_are_char_accurate_and_byte_accurate() {
        // `é` and `π` are 1 char but 2 UTF-8 bytes each.
        let src = "let aé = 1; // é\nlet bπx = 2; call()";
        let toks = lex(src).tokens;
        let a = toks.iter().find(|t| t.text == "aé").expect("aé token");
        assert_eq!((a.line, a.col, a.byte_col), (1, 5, 5));
        let one = toks.iter().find(|t| t.text == "1").expect("1 token");
        assert_eq!((one.col, one.byte_col), (10, 11), "é before it adds one char, two bytes");
        let call = toks.iter().find(|t| t.text == "call").expect("call token");
        assert_eq!((call.line, call.col, call.byte_col), (2, 14, 15));
    }

    #[test]
    fn columns_after_multiline_block_comment() {
        let src = "/* one\ntwo */  x.unwrap()";
        let toks = lex(src).tokens;
        let x = toks.iter().find(|t| t.text == "x").expect("x token");
        assert_eq!((x.line, x.col, x.byte_col), (2, 9, 9));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r###"let a = b"bytes"; let c = br#"raw"#; let d = b'x'; ident"###).tokens;
        assert!(toks.iter().any(|t| t.text == "ident" && t.kind == TokenKind::Ident));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Literal).count(), 3);
    }
}
