//! `softrep-lint` — a workspace-local static-analysis pass.
//!
//! The reputation system's correctness arguments (DESIGN.md, "Static
//! verification layer") lean on four implementation invariants that the
//! type system cannot express. This crate checks them mechanically:
//!
//! 1. **panic** — the request path (server handler, the TCP front end
//!    with its worker pool and stats counters, storage wal/store/table,
//!    core db) never calls `unwrap`/`expect`, never invokes a
//!    `panic!`-family macro, and never indexes a slice without `.get()`.
//!    One malformed record or hostile frame must degrade into a typed
//!    error, not a crashed server.
//! 2. **clock** — `SystemTime::now`/`Instant::now` appear only in
//!    `crates/core/src/clock.rs`. Everything else takes a `Clock`
//!    injection so simulated weeks stay deterministic.
//! 3. **trust** — trust-factor fields are written only through the
//!    clamping helpers in `crates/core/src/trust.rs`, keeping every
//!    stored value inside `[MIN_TRUST, MAX_TRUST]`.
//! 4. **exhaustive** — the server dispatcher matches every `Request`
//!    variant by name, with no `_ =>` arm to silently drop a
//!    newly-added protocol message.
//!
//! On top of the token rules, three dataflow passes run over a per-
//! function CFG with def-use chains ([`cfg`]):
//!
//! 5. **taint** — privacy-sensitive values (peer addresses, credentials)
//!    must pass through a pseudonymizing sanitizer before reaching any
//!    output sink ([`taint`]).
//! 6. **lockorder** — the workspace-wide lock-acquisition graph stays
//!    acyclic and multi-guard acquisition is provably ascending
//!    ([`lockorder`]).
//! 7. **guard-io** — no guard is held across blocking I/O ([`guardio`]).
//! 8. **suppression** — every inline suppression carries a written
//!    reason.
//!
//! Findings can be suppressed per line with
//! `// lint: allow(<rule>, "reason")`. Run it with
//! `cargo run -p softrep-lint` from the workspace root; see [`report`]
//! for the JSON/baseline machinery the CI shard uses.

pub mod cfg;
pub mod guardio;
pub mod lexer;
pub mod lockorder;
pub mod report;
pub mod rules;
pub mod taint;

use std::path::{Path, PathBuf};

pub use rules::{check_exhaustiveness, Diagnostic, FileCheck, RULES};

/// The outcome of a full run: diagnostics plus coverage counters.
pub struct LintReport {
    /// All unsuppressed findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files lexed and checked.
    pub files_scanned: usize,
}

/// Errors from driving the lint over a directory tree.
#[derive(Debug)]
pub enum LintError {
    /// An I/O failure reading the tree or a source file.
    Io(PathBuf, std::io::Error),
    /// The proto source defining `enum Request` was not found.
    MissingProto(PathBuf),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::MissingProto(path) => {
                write!(f, "proto source not found at {}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Run every rule over the workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` and `src/**/*.rs`; `vendor/`, test
/// targets, benches, and examples are out of scope. Diagnostics come
/// back sorted by file, then line.
pub fn run_lint(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    run_lint_report(root).map(|r| r.diagnostics)
}

/// [`run_lint`], with coverage counters for `--stats`.
pub fn run_lint_report(root: &Path) -> Result<LintReport, LintError> {
    let mut out = Vec::new();
    let mut checks = Vec::new();
    let mut lock_edges = Vec::new();

    for path in source_files(root)? {
        let rel = relative_slash_path(root, &path);
        let source = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
        let check = FileCheck::new(rel.clone(), &source);
        out.extend(check.check());
        let funcs = check.functions();
        taint::check(&check, &funcs, &mut out);
        lock_edges.extend(lockorder::check(&check, &funcs, &mut out));
        guardio::check(&check, &funcs, &mut out);
        checks.push(check);
    }

    lockorder::check_cycles(&lock_edges, &checks, &mut out);

    if let Some(handler) = checks.iter().find(|c| c.path == rules::HANDLER_FILE) {
        let proto_path = root.join(rules::PROTO_FILE);
        let proto = std::fs::read_to_string(&proto_path)
            .map_err(|_| LintError::MissingProto(proto_path))?;
        out.extend(check_exhaustiveness(&proto, handler));
    }

    out.sort();
    Ok(LintReport { diagnostics: out, files_scanned: checks.len() })
}

/// Collect the `.rs` files in scope, deterministically ordered.
fn source_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut roots = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let src = entry.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let top_src = root.join("src");
    if top_src.is_dir() {
        roots.push(top_src);
    }

    let mut files = Vec::new();
    for dir in roots {
        collect_rs(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let iter = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative path with `/` separators regardless of platform,
/// so rule scoping and diagnostics are stable.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(root: &Path, rel: &str, contents: &str) {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("rel paths have parents")).expect("mkdir");
        std::fs::write(path, contents).expect("write fixture");
    }

    fn fixture_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("softrep-lint-lib-{name}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clean fixture");
        }
        std::fs::create_dir_all(&dir).expect("mkdir fixture");
        dir
    }

    fn minimal_proto() -> &'static str {
        "pub enum Request { Ping }"
    }

    #[test]
    fn clean_fixture_yields_no_diagnostics() {
        let root = fixture_root("clean");
        write(&root, "crates/proto/src/message.rs", minimal_proto());
        write(
            &root,
            "crates/server/src/handler.rs",
            "fn h(r: &Request) { match r { Request::Ping => {} } }",
        );
        write(&root, "crates/core/src/db.rs", "fn f(v: &[u8]) -> Option<&u8> { v.get(0) }");
        let diags = run_lint(&root).expect("lint runs");
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn seeded_violations_are_found_with_paths_and_lines() {
        let root = fixture_root("seeded");
        write(&root, "crates/proto/src/message.rs", "pub enum Request { Ping, Pong }");
        write(
            &root,
            "crates/server/src/handler.rs",
            "fn h(r: &Request) {\n    match r {\n        Request::Ping => {}\n        _ => {}\n    }\n}\n",
        );
        write(
            &root,
            "crates/core/src/db.rs",
            "fn f(v: Vec<u8>) -> u8 {\n    v.first().copied().unwrap()\n}\n",
        );
        write(
            &root,
            "crates/sim/src/agents.rs",
            "fn now() -> std::time::Instant { std::time::Instant::now() }",
        );
        let diags = run_lint(&root).expect("lint runs");
        let lines: Vec<_> = diags.iter().map(|d| (d.file.as_str(), d.line, d.rule)).collect();
        assert!(lines.contains(&("crates/core/src/db.rs", 2, "panic")), "{lines:?}");
        assert!(lines.contains(&("crates/server/src/handler.rs", 4, "exhaustive")), "{lines:?}");
        assert!(lines.contains(&("crates/sim/src/agents.rs", 1, "clock")), "{lines:?}");
        assert!(
            diags.iter().any(|d| d.rule == "exhaustive" && d.message.contains("Request::Pong")),
            "{diags:?}"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn vendor_and_tests_dirs_are_out_of_scope() {
        let root = fixture_root("scope");
        write(&root, "vendor/rand/src/lib.rs", "fn f() { x.unwrap(); panic!(); }");
        write(&root, "crates/core/tests/it.rs", "fn f() { x.unwrap(); }");
        write(&root, "crates/core/src/db.rs", "fn ok() {}");
        let diags = run_lint(&root).expect("lint runs");
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        std::fs::remove_dir_all(&root).ok();
    }
}
