//! The invariant rules enforced by `softrep-lint`.
//!
//! Each rule is a token-pattern check over [`crate::lexer::Lexed`] output,
//! scoped to the files named in DESIGN.md's static-verification section:
//!
//! * **panic** — no `unwrap`/`expect`/`panic!`-family/indexing in the
//!   request path (server handler, storage wal/store/table, core db);
//! * **clock** — no raw `SystemTime::now`/`Instant::now` outside
//!   `crates/core/src/clock.rs`;
//! * **trust** — trust-factor field writes route through the clamping
//!   helpers in `crates/core/src/trust.rs`;
//! * **exhaustive** — the server handler matches every `Request` variant
//!   by name, with no wildcard arm to swallow new ones.
//!
//! Any finding can be suppressed with a same-line (or preceding
//! comment-only line) `// lint: allow(<rule>)` directive.

use std::collections::BTreeSet;

use crate::lexer::{lex, AllowDirective, Lexed, Token, TokenKind};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path using `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name (`panic`, `clock`, `trust`, `exhaustive`, `taint`,
    /// `lockorder`, `guard-io`, `suppression`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Files under the no-panic rule: the paper's request path, from the TCP
/// front end (accept/admission, worker pool, stats) down through the
/// handler to storage. A panic in any of these turns one bad record or
/// one hostile request into an outage.
pub const NO_PANIC_FILES: &[&str] = &[
    "crates/server/src/handler.rs",
    "crates/server/src/pool.rs",
    "crates/server/src/stats.rs",
    "crates/server/src/tcp.rs",
    // The reactor front end and its raw-syscall wrapper: every kernel
    // return code is decoded to a typed error, never unwrapped, and the
    // event loop must survive any single connection's misbehaviour.
    "crates/server/src/reactor.rs",
    "crates/server/src/epoll.rs",
    // Replication runs on both serving roles: the primary's subscription
    // reads share the request path, and a panic in the replica's apply
    // loop would silently freeze its watermark.
    "crates/server/src/repl.rs",
    "crates/storage/src/replication.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/store.rs",
    "crates/storage/src/shard.rs",
    "crates/storage/src/commit.rs",
    "crates/storage/src/table.rs",
    // The fault-injection layer sits under every durable write; a panic
    // here would be indistinguishable from the crash it simulates.
    "crates/storage/src/vfs.rs",
    "crates/storage/src/failpoint.rs",
    "crates/core/src/db.rs",
    // The aggregation worker pool runs on the same serving node; a panic
    // in a recompute thread would take the 24 h batch down with it.
    "crates/core/src/aggregate_engine.rs",
    // Instrumentation is on the same request path as everything above —
    // a panicking metric defeats the point of observing the outage.
    "crates/obs/src/lib.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/span.rs",
    "crates/obs/src/time.rs",
];

/// The modules allowed to read the OS clock: the simulation-aware clock
/// abstraction, and the observability stopwatch (wall-time spans are the
/// whole point there; everything else must go through `Clock` so tests
/// stay deterministic).
pub const CLOCK_HOMES: &[&str] = &["crates/core/src/clock.rs", "crates/obs/src/time.rs"];

/// The one module allowed to write trust-factor fields directly (it owns
/// the `MIN_TRUST`/`MAX_TRUST` clamp and the weekly growth cap).
pub const TRUST_HOME: &str = "crates/core/src/trust.rs";

/// Where the wire protocol's `Request` enum lives.
pub const PROTO_FILE: &str = "crates/proto/src/message.rs";

/// The dispatcher that must match `Request` exhaustively by name.
pub const HANDLER_FILE: &str = "crates/server/src/handler.rs";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Every rule the lint enforces, for directive validation and `--stats`.
pub const RULES: &[&str] =
    &["panic", "clock", "trust", "exhaustive", "taint", "lockorder", "guard-io", "suppression"];

/// A lexed file plus the derived facts the rules share.
pub struct FileCheck {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    lexed: Lexed,
    /// Token-index ranges belonging to `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Lines that contain at least one code token.
    code_lines: BTreeSet<usize>,
}

impl FileCheck {
    /// Lex `source` as the file at `path` (workspace-relative).
    pub fn new(path: impl Into<String>, source: &str) -> Self {
        let lexed = lex(source);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let code_lines = lexed.tokens.iter().map(|t| t.line).collect();
        FileCheck { path: path.into(), lexed, test_ranges, code_lines }
    }

    /// The file's code tokens (comments and whitespace removed).
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Is the token at `idx` inside a `#[cfg(test)]` item?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx < hi)
    }

    /// The `// lint: allow(…)` directives found in the file.
    pub fn allows(&self) -> &[AllowDirective] {
        &self.lexed.allows
    }

    /// Every function body in the file, excluding `#[cfg(test)]` items.
    pub fn functions(&self) -> Vec<crate::cfg::Function> {
        crate::cfg::functions(self.tokens(), &|i| self.in_test(i))
    }

    /// Is `rule` suppressed on `line`? A directive suppresses its own line;
    /// a directive on a comment-only line suppresses the next code line.
    pub(crate) fn allowed(&self, rule: &str, line: usize) -> bool {
        self.lexed.allows.iter().any(|a| {
            a.rule == rule
                && (a.line == line || (a.line < line && !self.code_lines.contains(&a.line)))
                && (a.line == line || a.line + 1 == line)
        })
    }

    pub(crate) fn push(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: usize,
        message: String,
    ) {
        if !self.allowed(rule, line) {
            out.push(Diagnostic { file: self.path.clone(), line, rule, message });
        }
    }

    /// Run every file-local rule appropriate for this path.
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if NO_PANIC_FILES.contains(&self.path.as_str()) {
            self.check_no_panic(&mut out);
        }
        if !CLOCK_HOMES.contains(&self.path.as_str()) {
            self.check_clock(&mut out);
        }
        if self.path != TRUST_HOME {
            self.check_trust(&mut out);
        }
        if self.path == HANDLER_FILE {
            self.check_no_wildcard_arm(&mut out);
        }
        self.check_suppressions(&mut out);
        out
    }

    /// Rule `suppression`: every `// lint: allow(rule)` must carry a
    /// written reason — `// lint: allow(rule, "why")` — so suppressions
    /// stay auditable. This meta-rule cannot itself be suppressed.
    /// Directives naming something other than a known rule are prose
    /// (docs describing the syntax), not suppressions, and are skipped.
    fn check_suppressions(&self, out: &mut Vec<Diagnostic>) {
        for a in self
            .lexed
            .allows
            .iter()
            .filter(|a| a.reason.is_none() && RULES.contains(&a.rule.as_str()))
        {
            out.push(Diagnostic {
                file: self.path.clone(),
                line: a.line,
                rule: "suppression",
                message: format!(
                    "lint: allow({0}) has no reason; write lint: allow({0}, \"why\") so the \
                     suppression is auditable",
                    a.rule
                ),
            });
        }
    }

    /// Rule `panic`: no `.unwrap()`, `.expect()`, `panic!`-family macros,
    /// or `container[index]` expressions (which panic out of bounds).
    fn check_no_panic(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.tokens();
        for (i, tok) in toks.iter().enumerate() {
            if self.in_test(i) {
                continue;
            }
            match tok.kind {
                TokenKind::Ident => {
                    let prev = i.checked_sub(1).and_then(|p| toks.get(p));
                    let next = toks.get(i + 1);
                    if PANIC_METHODS.contains(&tok.text.as_str())
                        && prev.is_some_and(|p| p.text == ".")
                        && next.is_some_and(|n| n.text == "(")
                    {
                        self.push(
                            out,
                            "panic",
                            tok.line,
                            format!(
                                ".{}() may panic in the request path; return a typed error \
                                 (CoreError/StorageError) instead",
                                tok.text
                            ),
                        );
                    }
                    if PANIC_MACROS.contains(&tok.text.as_str())
                        && next.is_some_and(|n| n.text == "!")
                        && prev.is_none_or(|p| p.text != "debug_assert")
                    {
                        self.push(
                            out,
                            "panic",
                            tok.line,
                            format!("{}! is forbidden in the request path", tok.text),
                        );
                    }
                }
                TokenKind::Punct if tok.text == "[" => {
                    // An index *expression*: `[` directly after an
                    // identifier, `)`, or `]`. Array types/literals and
                    // attributes follow `:`, `=`, `#`, `&`, … instead —
                    // or a keyword (`for x in [..]`, `return [..]`),
                    // which the lexer also tokenizes as Ident.
                    const KEYWORDS: &[&str] =
                        &["_", "in", "return", "break", "else", "match", "if", "while"];
                    let prev = i.checked_sub(1).and_then(|p| toks.get(p));
                    let indexes = prev.is_some_and(|p| {
                        (p.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                            || p.text == ")"
                            || p.text == "]"
                    });
                    if indexes {
                        self.push(
                            out,
                            "panic",
                            tok.line,
                            "slice/array indexing panics out of bounds; use .get()/.get_mut()"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Rule `clock`: the OS clock is read only inside `clock.rs`, so every
    /// other component stays deterministic under a `Clock` injection.
    fn check_clock(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.tokens();
        for (i, tok) in toks.iter().enumerate() {
            if self.in_test(i) || tok.kind != TokenKind::Ident {
                continue;
            }
            if (tok.text == "SystemTime" || tok.text == "Instant")
                && toks.get(i + 1).is_some_and(|t| t.text == "::")
                && toks.get(i + 2).is_some_and(|t| t.text == "now")
            {
                self.push(
                    out,
                    "clock",
                    tok.line,
                    format!(
                        "{}::now() outside crates/core/src/clock.rs breaks clock injection; \
                         take a Clock/Timestamp instead",
                        tok.text
                    ),
                );
            }
        }
    }

    /// Rule `trust`: direct writes to a `trust` field (assignment, or a
    /// struct-literal init from a bare numeric literal) bypass the
    /// `MIN_TRUST`/`MAX_TRUST` clamp and the weekly growth cap.
    fn check_trust(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.tokens();
        for (i, tok) in toks.iter().enumerate() {
            if self.in_test(i) || !(tok.kind == TokenKind::Ident && tok.text == "trust") {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            let next = toks.get(i + 1);
            if prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| matches!(n.text.as_str(), "=" | "+=" | "-=" | "*=" | "/="))
            {
                self.push(
                    out,
                    "trust",
                    tok.line,
                    "direct `.trust` assignment bypasses the MIN_TRUST/MAX_TRUST clamp; \
                     route the change through TrustEngine::apply_delta"
                        .to_string(),
                );
            }
            // Struct-literal init `trust: <expr>` where <expr> contains a
            // bare numeric literal (named constants are fine — they carry
            // their own justification and stay inside the bounds).
            if prev.is_none_or(|p| p.text != ".") && next.is_some_and(|n| n.text == ":") {
                if let Some(lit_line) = numeric_literal_in_field_value(toks, i + 2) {
                    self.push(
                        out,
                        "trust",
                        lit_line,
                        "trust field initialised from a raw numeric literal; use a named \
                         constant from crates/core/src/trust.rs (MIN_TRUST/MAX_TRUST) or a \
                         clamped helper"
                            .to_string(),
                    );
                }
            }
        }
    }

    /// Part of rule `exhaustive`: a `_ =>` arm in the dispatcher would let
    /// a newly-added `Request` variant fall through silently.
    fn check_no_wildcard_arm(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.tokens();
        for (i, tok) in toks.iter().enumerate() {
            if self.in_test(i) {
                continue;
            }
            if tok.kind == TokenKind::Ident
                && tok.text == "_"
                && toks.get(i + 1).is_some_and(|t| t.text == "=>")
            {
                self.push(
                    out,
                    "exhaustive",
                    tok.line,
                    "wildcard `_ =>` arm in the request dispatcher swallows new Request \
                     variants; match every variant by name"
                        .to_string(),
                );
            }
        }
    }
}

/// Scan the tokens after a field's `:` up to the matching `,`/`}`; return
/// the line of the first numeric literal, if any.
fn numeric_literal_in_field_value(toks: &[Token], mut i: usize) -> Option<usize> {
    let mut depth = 0i32;
    while let Some(tok) = toks.get(i) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" if depth == 0 => return None,
            "}" => depth -= 1,
            "," if depth == 0 => return None,
            ";" if depth == 0 => return None,
            _ if tok.kind == TokenKind::Num => return Some(tok.line),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Token-index ranges covered by `#[cfg(test)]` items (usually
/// `mod tests { … }`): from the attribute through the item's closing
/// brace or terminating semicolon.
fn find_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let start = i;
            // Skip to the end of this attribute's `]`.
            let mut j = i + 2; // after `#` `[`
            let mut depth = 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes between cfg(test) and the item.
            while j < toks.len() && toks[j].text == "#" {
                j += 1; // `#`
                let mut d = 0;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // The item body: through a balanced `{ … }` or a bare `;`.
            let mut brace = 0i32;
            let mut entered = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" => {
                        brace += 1;
                        entered = true;
                    }
                    "}" => {
                        brace -= 1;
                        if entered && brace == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if !entered => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            ranges.push((start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    ranges
}

fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.text == "#")
        && toks.get(i + 1).is_some_and(|t| t.text == "[")
        && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
        && toks.get(i + 3).is_some_and(|t| t.text == "(")
        && toks.get(i + 4).is_some_and(|t| t.text == "test")
        && toks.get(i + 5).is_some_and(|t| t.text == ")")
        && toks.get(i + 6).is_some_and(|t| t.text == "]")
}

/// Rule `exhaustive`, cross-file part: every variant of `enum Request` in
/// the proto source must be matched by name (`Request::Variant`) in the
/// handler source.
pub fn check_exhaustiveness(proto_source: &str, handler: &FileCheck) -> Vec<Diagnostic> {
    let variants = request_variants(proto_source);
    let toks = handler.tokens();
    let mut matched = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if handler.in_test(i) {
            continue;
        }
        if tok.kind == TokenKind::Ident
            && tok.text == "Request"
            && toks.get(i + 1).is_some_and(|t| t.text == "::")
        {
            if let Some(v) = toks.get(i + 2) {
                matched.insert(v.text.clone());
            }
        }
    }
    let mut out = Vec::new();
    for v in &variants {
        if !matched.contains(v) && !handler.allowed("exhaustive", 1) {
            out.push(Diagnostic {
                file: handler.path.clone(),
                line: 1,
                rule: "exhaustive",
                message: format!(
                    "Request::{v} has no arm in the request dispatcher; every protocol \
                     variant must be handled by name"
                ),
            });
        }
    }
    out
}

/// Parse the variant names of `pub enum Request` from the proto source.
pub fn request_variants(proto_source: &str) -> Vec<String> {
    let toks = lex(proto_source).tokens;
    let mut i = 0;
    // Find `enum Request {`.
    while i < toks.len() {
        if toks[i].text == "enum" && toks.get(i + 1).is_some_and(|t| t.text == "Request") {
            break;
        }
        i += 1;
    }
    let mut variants = Vec::new();
    let Some(open) = toks.iter().skip(i).position(|t| t.text == "{").map(|p| p + i) else {
        return variants;
    };
    let mut j = open + 1;
    let mut depth = 1i32;
    let mut expect_variant = true;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match t.text.as_str() {
            "{" | "(" | "[" => {
                depth += 1;
                j += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                j += 1;
            }
            "#" if depth == 1 => {
                // Skip attribute `#[ … ]`.
                j += 1;
                let mut d = 0;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            "," if depth == 1 => {
                expect_variant = true;
                j += 1;
            }
            _ => {
                if depth == 1 && expect_variant && t.kind == TokenKind::Ident {
                    variants.push(t.text.clone());
                    expect_variant = false;
                }
                j += 1;
            }
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        FileCheck::new(path, src).check()
    }

    #[test]
    fn unwrap_in_scoped_file_is_flagged_with_line() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let d = diags("crates/core/src/db.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, "panic");
    }

    #[test]
    fn transport_files_are_under_the_no_panic_rule() {
        // The TCP front end is reachable by any remote peer; a panic there
        // is a remote crash. The rule must cover all three transport
        // modules, not just the handler below them.
        let src = "fn f() { let x = y.unwrap(); }";
        for file in
            ["crates/server/src/tcp.rs", "crates/server/src/pool.rs", "crates/server/src/stats.rs"]
        {
            assert_eq!(diags(file, src).len(), 1, "{file} must be under the panic rule");
        }
        // Observability rides the same request path: a panicking metric
        // is an outage caused by the thing meant to observe outages.
        for file in [
            "crates/obs/src/lib.rs",
            "crates/obs/src/metrics.rs",
            "crates/obs/src/span.rs",
            "crates/obs/src/time.rs",
        ] {
            assert_eq!(diags(file, src).len(), 1, "{file} must be under the panic rule");
        }
    }

    #[test]
    fn obs_stopwatch_is_a_clock_home_but_other_obs_files_are_not() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(diags("crates/obs/src/time.rs", src).is_empty(), "time.rs owns the stopwatch");
        assert_eq!(
            diags("crates/obs/src/span.rs", src).len(),
            1,
            "spans must go through the stopwatch, not the OS clock"
        );
    }

    #[test]
    fn unwrap_outside_scope_is_fine() {
        let src = "fn f() { let x = y.unwrap(); }";
        assert!(diags("crates/sim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(diags("crates/core/src/db.rs", src).is_empty());
    }

    #[test]
    fn indexing_is_flagged_but_types_and_attrs_are_not() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(v: &[u8]) -> u8 { v[0] }\n";
        let d = diags("crates/storage/src/wal.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn panic_macros_flagged_but_debug_assert_ok() {
        let src = "fn f() {\n    debug_assert!(true);\n    panic!(\"boom\");\n}\n";
        let d = diags("crates/storage/src/store.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); v[0]; panic!(); }\n}\n";
        assert!(diags("crates/core/src/db.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_line_and_next_line() {
        let same = "fn f() { y.unwrap(); } // lint: allow(panic, \"test\")\n";
        assert!(diags("crates/core/src/db.rs", same).is_empty());
        let next = "// lint: allow(panic, \"test\")\nfn f() { y.unwrap(); }\n";
        assert!(diags("crates/core/src/db.rs", next).is_empty());
        let wrong_rule = "fn f() { y.unwrap(); } // lint: allow(clock, \"test\")\n";
        assert_eq!(diags("crates/core/src/db.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn reasonless_allow_is_flagged_by_the_suppression_rule() {
        let src = "fn f() { y.unwrap(); } // lint: allow(panic)\n";
        let d = diags("crates/core/src/db.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "suppression");
        assert_eq!(d[0].line, 1);
        // A reasoned directive suppresses the finding and is itself clean.
        let ok = "fn f() { y.unwrap(); } // lint: allow(panic, \"caller checked\")\n";
        assert!(diags("crates/core/src/db.rs", ok).is_empty());
    }

    #[test]
    fn clock_rule_fires_everywhere_but_clock_rs() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }";
        assert_eq!(diags("crates/sim/src/lib.rs", src).len(), 1);
        assert!(diags("crates/core/src/clock.rs", src).is_empty());
        let inst = "fn f() { let t = Instant::now(); }";
        assert_eq!(diags("crates/bench/src/lib.rs", inst).len(), 1);
    }

    #[test]
    fn trust_assignment_and_raw_literal_init_flagged() {
        let assign = "fn f(r: &mut TrustRecord) { r.trust = 50.0; }";
        assert_eq!(diags("crates/core/src/db.rs", assign).len(), 1);
        let add = "fn f(r: &mut TrustRecord) { r.trust += 1.0; }";
        assert_eq!(diags("crates/sim/src/agents.rs", add).len(), 1);
        let init = "fn f() { let r = TrustRecord { trust: 7.5, week: 0 }; }";
        let d = diags("crates/core/src/db.rs", init);
        assert_eq!(d.iter().filter(|d| d.rule == "trust").count(), 1);
    }

    #[test]
    fn trust_named_constant_and_type_decl_are_fine() {
        let src = "struct T { pub trust: f64 }\nfn f() { let r = TrustRecord { trust: MIN_TRUST }; let t = T { trust: r.get_f64()? }; }";
        assert!(diags("crates/core/src/model.rs", src).is_empty());
    }

    #[test]
    fn trust_rule_silent_inside_trust_rs() {
        let src =
            "fn f(r: &mut TrustRecord) { r.trust = (r.trust + d).clamp(MIN_TRUST, MAX_TRUST); }";
        assert!(diags("crates/core/src/trust.rs", src).is_empty());
    }

    #[test]
    fn wildcard_arm_in_handler_is_flagged() {
        let src = "fn h(r: &Request) {\n    match r {\n        Request::GetPuzzle => {}\n        _ => {}\n    }\n}\n";
        let d = diags("crates/server/src/handler.rs", src);
        assert!(d.iter().any(|d| d.rule == "exhaustive" && d.line == 4));
    }

    #[test]
    fn underscore_in_tuple_pattern_is_not_a_wildcard_arm() {
        let src = "fn h() { match x { Ok(_) => 1, Err(e) => 2 }; }";
        assert!(diags("crates/server/src/handler.rs", src).is_empty());
    }

    #[test]
    fn request_variants_parse_fields_and_attrs() {
        let proto = "pub enum Request {\n    GetPuzzle,\n    #[allow(dead_code)]\n    Register { username: String, solution: u64 },\n    Login { user: String },\n}";
        assert_eq!(request_variants(proto), ["GetPuzzle", "Register", "Login"]);
    }

    #[test]
    fn missing_variant_arm_is_reported() {
        let proto = "pub enum Request { A, B { x: u64 } }";
        let handler =
            FileCheck::new(HANDLER_FILE, "fn h(r: &Request) { match r { Request::A => {} } }");
        let d = check_exhaustiveness(proto, &handler);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Request::B"));
    }

    #[test]
    fn all_variants_matched_is_clean() {
        let proto = "pub enum Request { A, B }";
        let handler = FileCheck::new(
            HANDLER_FILE,
            "fn h(r: &Request) { match r { Request::A | Request::B => {} } }",
        );
        assert!(check_exhaustiveness(proto, &handler).is_empty());
    }
}
