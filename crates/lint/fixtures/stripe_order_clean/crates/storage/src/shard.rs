//! Clean counterpart: the affected set is a `BTreeSet`, so stripe guards
//! are acquired in ascending index order.

impl ShardedStore {
    fn apply(&self, batch: &Batch) {
        let affected: BTreeSet<usize> = batch.ops().iter().map(|op| self.stripe_of(op)).collect();
        let mut guards: BTreeMap<usize, G> = affected
            .iter()
            .filter_map(|&idx| self.stripes.get(idx).map(|lock| (idx, lock.write())))
            .collect();
        use_all(&mut guards);
    }
}
