//! Seeded violation: stripe write-guards accumulated in key order, which
//! is not provably ascending.

impl ShardedStore {
    fn apply(&self, keys: &[String]) {
        let order: Vec<usize> = keys.iter().map(|k| self.stripe_of(k)).collect();
        let mut guards = Vec::new();
        for idx in order {
            match self.stripes.get(idx) {
                Some(lock) => guards.push(lock.write()),
                None => {}
            }
        }
    }
}
