//! Seeded violation: an fsync runs while the queue guard is held.

impl Wal {
    fn append(&self, frame: &[u8]) {
        let mut queue = self.queue.lock();
        queue.extend_from_slice(frame);
        self.file_handle().sync_all();
    }
}
