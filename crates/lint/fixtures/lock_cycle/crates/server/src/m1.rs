//! One half of a seeded acquisition cycle: alpha, then beta.

impl Pair {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(a, b);
    }
}
