//! The other half: beta, then alpha — closing the cycle.

impl Pair {
    fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_both(a, b);
    }
}
