//! Consistent order, second site: also alpha before beta.

impl Pair {
    fn ab2(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(a, b);
    }
}
