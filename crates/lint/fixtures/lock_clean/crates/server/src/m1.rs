//! Consistent order, first site: alpha before beta.

impl Pair {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(a, b);
    }
}
