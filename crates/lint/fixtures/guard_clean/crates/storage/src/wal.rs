//! Clean counterpart: the guard is dropped before the fsync.

impl Wal {
    fn append(&self, frame: &[u8]) {
        {
            let mut queue = self.queue.lock();
            queue.extend_from_slice(frame);
        }
        self.file_handle().sync_all();
    }
}
