//! Seeded leak: a raw peer address flows straight into a log sink.

pub fn admit(peer_ip: &str) -> bool {
    println!("admitting {peer_ip}");
    true
}
