//! Clean counterpart: the peer address is pseudonymized before output.

pub fn admit(db: &Db, peer_ip: &str) -> bool {
    let tag = db.pseudonym_tag("peer", peer_ip);
    println!("admitting {tag}");
    true
}
