//! Trust-weighted rating aggregation.
//!
//! §3.2: "Software ratings are calculated at fixed points in time
//! (currently once in every 24-hour period). During this work users' trust
//! factors are taken into consideration when calculating the final score
//! for a particular software." Vendor ratings are "simply … the average
//! score of all software belonging to the particular vendor" (§3.2/3.3).
//!
//! All functions here are pure and deterministic (DESIGN.md invariant 5):
//! given the same vote set and trust snapshot they produce bit-identical
//! records, which is what makes the 24 h batch model reproducible.

use std::collections::BTreeMap;

use crate::clock::Timestamp;
use crate::model::{RatingRecord, VoteRecord};

/// Interval between rating recomputations (the paper's 24 h).
pub const AGGREGATION_INTERVAL_SECS: u64 = crate::clock::DAY_SECS;

/// Compute the trust-weighted mean of `(score, weight)` pairs.
///
/// Returns `None` when there are no votes or no positive weight: the paper
/// deliberately shows "no rating yet" rather than a fabricated number.
pub fn weighted_mean(pairs: impl IntoIterator<Item = (u8, f64)>) -> Option<f64> {
    let mut score_mass = 0.0;
    let mut weight_mass = 0.0;
    for (score, weight) in pairs {
        debug_assert!((1..=10).contains(&score), "scores validated at the edge");
        let weight = weight.max(0.0);
        score_mass += f64::from(score) * weight;
        weight_mass += weight;
    }
    (weight_mass > 0.0).then(|| score_mass / weight_mass)
}

/// Unweighted mean — the baseline aggregation that experiment D2 contrasts
/// with trust weighting.
pub fn unweighted_mean(scores: impl IntoIterator<Item = u8>) -> Option<f64> {
    weighted_mean(scores.into_iter().map(|s| (s, 1.0)))
}

/// Aggregate all `votes` for one software into a published rating record.
///
/// `trust_of` supplies the trust snapshot (username → trust factor) taken
/// at batch time; votes from unknown users default to the minimum weight
/// rather than being dropped, mirroring how a concurrent deletion would be
/// handled in the deployed system.
pub fn aggregate_software(
    software_id: &str,
    votes: &[VoteRecord],
    trust_of: impl Fn(&str) -> Option<f64>,
    now: Timestamp,
) -> Option<RatingRecord> {
    aggregate_software_with_masses(software_id, votes, trust_of, now).map(|(rating, _)| rating)
}

/// [`aggregate_software`], also returning the raw score mass (`Σ w·s`).
///
/// The published record carries the trust mass but only the *quotient* of
/// the score mass; the incremental engine persists both masses verbatim in
/// its accumulator table, so they must come from this exact summation
/// rather than being reconstructed as `rating × trust_mass` (which can
/// differ in the last ulp).
pub fn aggregate_software_with_masses(
    software_id: &str,
    votes: &[VoteRecord],
    trust_of: impl Fn(&str) -> Option<f64>,
    now: Timestamp,
) -> Option<(RatingRecord, f64)> {
    if votes.is_empty() {
        return None;
    }
    let mut score_mass = 0.0;
    let mut trust_mass = 0.0;
    let mut behaviour_counts: BTreeMap<&str, u64> = BTreeMap::new();

    for vote in votes {
        debug_assert_eq!(vote.software_id, software_id);
        let weight = trust_of(&vote.username).unwrap_or(crate::trust::MIN_TRUST).max(0.0);
        score_mass += f64::from(vote.score) * weight;
        trust_mass += weight;
        for behaviour in &vote.behaviours {
            *behaviour_counts.entry(behaviour.as_str()).or_insert(0) += 1;
        }
    }
    if trust_mass <= 0.0 {
        return None;
    }

    // Deterministic ordering: count desc, then name asc (BTreeMap already
    // gives name order; stable sort preserves it inside equal counts).
    let mut behaviours: Vec<(String, u64)> =
        behaviour_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    behaviours.sort_by_key(|(_, count)| std::cmp::Reverse(*count));

    let record = RatingRecord {
        software_id: software_id.to_string(),
        rating: score_mass / trust_mass,
        vote_count: votes.len() as u64,
        trust_mass,
        behaviours,
        computed_at: now,
    };
    Some((record, score_mass))
}

/// Derive a vendor's rating as the mean over its software ratings (§3.3).
pub fn vendor_rating(software_ratings: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0u64;
    for r in software_ratings {
        sum += r;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Decide whether a batch run is due: the previous run was `last` (or
/// `None` before the first run).
///
/// A clock stepped *backwards* past `last` (NTP correction, VM restore,
/// operator mistake) must not wedge the schedule: with `now < last`,
/// `now.since(last)` saturates to 0 and the naive rule would wait until
/// the clock re-reaches `last + 24 h` — potentially years. If `last` is
/// more than one interval in the future we declare the batch due, which
/// re-stamps `last = now` and re-anchors the schedule to the new clock.
pub fn aggregation_due(last: Option<Timestamp>, now: Timestamp) -> bool {
    match last {
        None => true,
        Some(last) => {
            now.since(last) >= AGGREGATION_INTERVAL_SECS
                || last.since(now) >= AGGREGATION_INTERVAL_SECS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vote(user: &str, sw: &str, score: u8, behaviours: &[&str]) -> VoteRecord {
        VoteRecord {
            username: user.into(),
            software_id: sw.into(),
            score,
            behaviours: behaviours.iter().map(|s| s.to_string()).collect(),
            cast_at: Timestamp(0),
        }
    }

    #[test]
    fn weighted_mean_empty_is_none() {
        assert_eq!(weighted_mean([]), None);
        assert_eq!(unweighted_mean([]), None);
        assert_eq!(weighted_mean([(5, 0.0)]), None, "zero total weight yields no rating");
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        // Expert (trust 50) says 2; two novices (trust 1) say 10.
        let m = weighted_mean([(2, 50.0), (10, 1.0), (10, 1.0)]).unwrap();
        let expected = (2.0 * 50.0 + 10.0 + 10.0) / 52.0;
        assert!((m - expected).abs() < 1e-12);
        assert!(m < 3.0, "the expert dominates");
    }

    #[test]
    fn unweighted_mean_is_plain_average() {
        assert_eq!(unweighted_mean([2, 10, 10]).unwrap(), 22.0 / 3.0);
    }

    #[test]
    fn aggregate_collects_behaviours_most_reported_first() {
        let votes = vec![
            vote("a", "sw", 3, &["popup_ads", "tracking"]),
            vote("b", "sw", 4, &["popup_ads"]),
            vote("c", "sw", 2, &["popup_ads", "bad_uninstall"]),
        ];
        let rec = aggregate_software("sw", &votes, |_| Some(1.0), Timestamp(7)).unwrap();
        assert_eq!(rec.vote_count, 3);
        assert_eq!(rec.behaviours[0], ("popup_ads".to_string(), 3));
        // Ties break alphabetically.
        assert_eq!(rec.behaviours[1], ("bad_uninstall".to_string(), 1));
        assert_eq!(rec.behaviours[2], ("tracking".to_string(), 1));
        assert_eq!(rec.computed_at, Timestamp(7));
    }

    #[test]
    fn aggregate_uses_trust_snapshot() {
        let votes = vec![vote("expert", "sw", 2, &[]), vote("novice", "sw", 10, &[])];
        let rec = aggregate_software(
            "sw",
            &votes,
            |u| Some(if u == "expert" { 80.0 } else { 1.0 }),
            Timestamp(0),
        )
        .unwrap();
        assert!(rec.rating < 2.5);
        assert_eq!(rec.trust_mass, 81.0);
    }

    #[test]
    fn unknown_users_default_to_minimum_weight() {
        let votes = vec![vote("ghost", "sw", 8, &[])];
        let rec = aggregate_software("sw", &votes, |_| None, Timestamp(0)).unwrap();
        assert_eq!(rec.rating, 8.0);
        assert_eq!(rec.trust_mass, crate::trust::MIN_TRUST);
    }

    #[test]
    fn no_votes_no_record() {
        assert!(aggregate_software("sw", &[], |_| Some(1.0), Timestamp(0)).is_none());
    }

    #[test]
    fn vendor_rating_is_mean_of_software_ratings() {
        assert_eq!(vendor_rating([4.0, 6.0, 8.0]).unwrap(), 6.0);
        assert_eq!(vendor_rating([]), None);
        assert_eq!(vendor_rating([7.5]).unwrap(), 7.5);
    }

    #[test]
    fn aggregation_schedule_is_24h() {
        assert!(aggregation_due(None, Timestamp(0)));
        let last = Timestamp(1_000);
        assert!(!aggregation_due(Some(last), Timestamp(1_000 + AGGREGATION_INTERVAL_SECS - 1)));
        assert!(aggregation_due(Some(last), Timestamp(1_000 + AGGREGATION_INTERVAL_SECS)));
    }

    #[test]
    fn aggregation_due_survives_clock_step_backwards() {
        // A backward step smaller than one interval delays the next batch
        // but never wedges it…
        let last = Timestamp(10 * AGGREGATION_INTERVAL_SECS);
        let slipped = Timestamp(10 * AGGREGATION_INTERVAL_SECS - 3_600);
        assert!(!aggregation_due(Some(last), slipped));
        assert!(aggregation_due(Some(last), Timestamp(11 * AGGREGATION_INTERVAL_SECS)));
        // …while a step back past a full interval (clock reset to the
        // epoch, say) re-anchors immediately instead of waiting for the
        // clock to catch back up to `last`.
        assert!(aggregation_due(Some(last), Timestamp(0)));
        // Exactly one interval behind is the re-anchor boundary.
        assert!(aggregation_due(Some(last), Timestamp(9 * AGGREGATION_INTERVAL_SECS)));
    }

    #[test]
    fn aggregation_is_deterministic() {
        // Invariant 5: same inputs, bit-identical output.
        let votes = vec![
            vote("a", "sw", 3, &["x", "y"]),
            vote("b", "sw", 9, &["y"]),
            vote("c", "sw", 6, &[]),
        ];
        let trust = |u: &str| {
            Some(match u {
                "a" => 10.0,
                "b" => 2.5,
                _ => 1.0,
            })
        };
        let r1 = aggregate_software("sw", &votes, trust, Timestamp(5)).unwrap();
        let r2 = aggregate_software("sw", &votes, trust, Timestamp(5)).unwrap();
        assert_eq!(r1, r2);
        use softrep_storage::codec::Encode;
        assert_eq!(r1.encode_to_bytes(), r2.encode_to_bytes());
    }

    proptest! {
        #[test]
        fn weighted_mean_stays_in_score_range(
            pairs in proptest::collection::vec((1u8..=10, 0.01f64..100.0), 1..50)
        ) {
            let m = weighted_mean(pairs).unwrap();
            prop_assert!((1.0..=10.0).contains(&m));
        }

        #[test]
        fn equal_weights_reduce_to_unweighted(scores in proptest::collection::vec(1u8..=10, 1..50)) {
            let w = weighted_mean(scores.iter().map(|&s| (s, 3.7))).unwrap();
            let u = unweighted_mean(scores.iter().copied()).unwrap();
            prop_assert!((w - u).abs() < 1e-9);
        }

        #[test]
        fn raising_one_weight_pulls_mean_toward_that_score(
            scores in proptest::collection::vec(1u8..=10, 2..20),
            idx in 0usize..20,
        ) {
            let idx = idx % scores.len();
            let target = f64::from(scores[idx]);
            let base = weighted_mean(scores.iter().map(|&s| (s, 1.0))).unwrap();
            let boosted = weighted_mean(
                scores.iter().enumerate().map(|(i, &s)| (s, if i == idx { 50.0 } else { 1.0 }))
            ).unwrap();
            // Boosted mean is at least as close to the boosted score.
            prop_assert!((boosted - target).abs() <= (base - target).abs() + 1e-9);
        }
    }
}
