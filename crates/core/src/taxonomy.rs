//! The privacy-invasive-software taxonomy of Table 1 and the Table 2
//! grey-zone transformation.
//!
//! Table 1 classifies software on two axes — the user's informed consent
//! (high / medium / low) and the severity of negative user consequences
//! (tolerable / moderate / severe) — into nine named cells. The paper's
//! central claim (§4.1, Table 2) is that a reputation system eliminates the
//! *medium consent* row: once users can consult other users' experiences,
//! each grey-zone program resolves to **high** consent (its behaviour,
//! now disclosed, is accepted) or **low** consent (its deceit is exposed),
//! leaving only the legitimate-software and malware rows.

/// The user's level of informed consent to the software's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsentLevel {
    /// The user genuinely understands and accepts the behaviour.
    High,
    /// Consent exists only formally (e.g. buried in a 5 000-word EULA).
    Medium,
    /// No meaningful consent at all.
    Low,
}

/// Severity of the negative consequences the software imposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsequenceLevel {
    /// Tolerable: minor annoyances.
    Tolerable,
    /// Moderate: meaningful harm (ads, profiling, instability).
    Moderate,
    /// Severe: serious harm (theft of data, system compromise).
    Severe,
}

/// The nine cells of Table 1, numbered as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PisCategory {
    /// 1) High consent, tolerable consequences.
    LegitimateSoftware,
    /// 2) High consent, moderate consequences.
    AdverseSoftware,
    /// 3) High consent, severe consequences.
    DoubleAgents,
    /// 4) Medium consent, tolerable consequences.
    SemiTransparentSoftware,
    /// 5) Medium consent, moderate consequences.
    UnsolicitedSoftware,
    /// 6) Medium consent, severe consequences.
    SemiParasites,
    /// 7) Low consent, tolerable consequences.
    CovertSoftware,
    /// 8) Low consent, moderate consequences.
    Trojans,
    /// 9) Low consent, severe consequences.
    Parasites,
}

impl PisCategory {
    /// Table 1 classification: every (consent, consequence) pair maps to
    /// exactly one cell (invariant 7 of DESIGN.md).
    pub fn classify(consent: ConsentLevel, consequence: ConsequenceLevel) -> Self {
        use ConsentLevel as C;
        use ConsequenceLevel as Q;
        match (consent, consequence) {
            (C::High, Q::Tolerable) => PisCategory::LegitimateSoftware,
            (C::High, Q::Moderate) => PisCategory::AdverseSoftware,
            (C::High, Q::Severe) => PisCategory::DoubleAgents,
            (C::Medium, Q::Tolerable) => PisCategory::SemiTransparentSoftware,
            (C::Medium, Q::Moderate) => PisCategory::UnsolicitedSoftware,
            (C::Medium, Q::Severe) => PisCategory::SemiParasites,
            (C::Low, Q::Tolerable) => PisCategory::CovertSoftware,
            (C::Low, Q::Moderate) => PisCategory::Trojans,
            (C::Low, Q::Severe) => PisCategory::Parasites,
        }
    }

    /// The paper's cell number (1–9, reading Table 1 row-major).
    pub fn cell_number(self) -> u8 {
        match self {
            PisCategory::LegitimateSoftware => 1,
            PisCategory::AdverseSoftware => 2,
            PisCategory::DoubleAgents => 3,
            PisCategory::SemiTransparentSoftware => 4,
            PisCategory::UnsolicitedSoftware => 5,
            PisCategory::SemiParasites => 6,
            PisCategory::CovertSoftware => 7,
            PisCategory::Trojans => 8,
            PisCategory::Parasites => 9,
        }
    }

    /// The cell name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            PisCategory::LegitimateSoftware => "Legitimate software",
            PisCategory::AdverseSoftware => "Adverse software",
            PisCategory::DoubleAgents => "Double agents",
            PisCategory::SemiTransparentSoftware => "Semi-transparent software",
            PisCategory::UnsolicitedSoftware => "Unsolicited software",
            PisCategory::SemiParasites => "Semi-parasites",
            PisCategory::CovertSoftware => "Covert software",
            PisCategory::Trojans => "Trojans",
            PisCategory::Parasites => "Parasites",
        }
    }

    /// The consent row of this cell.
    pub fn consent(self) -> ConsentLevel {
        match self.cell_number() {
            1..=3 => ConsentLevel::High,
            4..=6 => ConsentLevel::Medium,
            _ => ConsentLevel::Low,
        }
    }

    /// The consequence column of this cell.
    pub fn consequence(self) -> ConsequenceLevel {
        match self.cell_number() % 3 {
            1 => ConsequenceLevel::Tolerable,
            2 => ConsequenceLevel::Moderate,
            _ => ConsequenceLevel::Severe,
        }
    }

    /// §1.1: "All software that has low user consent, or which impairs
    /// severe negative consequences should be regarded as malicious
    /// software."
    pub fn is_malware(self) -> bool {
        self.consent() == ConsentLevel::Low || self.consequence() == ConsequenceLevel::Severe
    }

    /// §1.1: "any software that has high user consent, and which results in
    /// tolerable negative consequences should be regarded as legitimate."
    pub fn is_legitimate(self) -> bool {
        self.consent() == ConsentLevel::High && self.consequence() == ConsequenceLevel::Tolerable
    }

    /// §1.1: "spyware constitutes the remaining group" — medium consent or
    /// moderate consequences, excluding malware and legitimate software.
    pub fn is_spyware(self) -> bool {
        !self.is_malware() && !self.is_legitimate()
    }

    /// All nine categories in cell order.
    pub fn all() -> [PisCategory; 9] {
        [
            PisCategory::LegitimateSoftware,
            PisCategory::AdverseSoftware,
            PisCategory::DoubleAgents,
            PisCategory::SemiTransparentSoftware,
            PisCategory::UnsolicitedSoftware,
            PisCategory::SemiParasites,
            PisCategory::CovertSoftware,
            PisCategory::Trojans,
            PisCategory::Parasites,
        ]
    }
}

impl std::fmt::Display for PisCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The six cells of Table 2 — Table 1 with the medium-consent row removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformedCategory {
    /// 1) High consent, tolerable consequences.
    LegitimateSoftware,
    /// 2) High consent, moderate consequences.
    AdverseSoftware,
    /// 3) High consent, severe consequences.
    DoubleAgents,
    /// 7) Low consent, tolerable consequences.
    CovertSoftware,
    /// 8) Low consent, moderate consequences.
    Trojans,
    /// 9) Low consent, severe consequences.
    Parasites,
}

impl TransformedCategory {
    /// The cell name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            TransformedCategory::LegitimateSoftware => "Legitimate software",
            TransformedCategory::AdverseSoftware => "Adverse software",
            TransformedCategory::DoubleAgents => "Double agents",
            TransformedCategory::CovertSoftware => "Covert software",
            TransformedCategory::Trojans => "Trojans",
            TransformedCategory::Parasites => "Parasites",
        }
    }

    /// The paper's cell number (Table 2 keeps Table 1's numbering).
    pub fn cell_number(self) -> u8 {
        match self {
            TransformedCategory::LegitimateSoftware => 1,
            TransformedCategory::AdverseSoftware => 2,
            TransformedCategory::DoubleAgents => 3,
            TransformedCategory::CovertSoftware => 7,
            TransformedCategory::Trojans => 8,
            TransformedCategory::Parasites => 9,
        }
    }

    /// True if the cell sits in the low-consent (malware) row.
    pub fn is_malware_row(self) -> bool {
        self.cell_number() >= 7
    }
}

impl std::fmt::Display for TransformedCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The Table 2 transformation (§4.1).
///
/// `honestly_disclosed` captures whether the software's real behaviour
/// matches what the reputation system reveals to the user *and* the user
/// would still consent knowing it: "all PIS that previously have suffered
/// from a medium user consent level, now instead would be transformed into
/// either a high consent level (i.e. legitimate software) or a low consent
/// level (i.e. malware)". High- and low-consent software is unaffected —
/// the reputation system adds information, and for those rows the user's
/// consent state was already accurate.
pub fn transform_with_reputation(
    category: PisCategory,
    honestly_disclosed: bool,
) -> TransformedCategory {
    let consent = match category.consent() {
        ConsentLevel::High => ConsentLevel::High,
        ConsentLevel::Low => ConsentLevel::Low,
        ConsentLevel::Medium => {
            if honestly_disclosed {
                ConsentLevel::High
            } else {
                ConsentLevel::Low
            }
        }
    };
    match (consent, category.consequence()) {
        (ConsentLevel::High, ConsequenceLevel::Tolerable) => {
            TransformedCategory::LegitimateSoftware
        }
        (ConsentLevel::High, ConsequenceLevel::Moderate) => TransformedCategory::AdverseSoftware,
        (ConsentLevel::High, ConsequenceLevel::Severe) => TransformedCategory::DoubleAgents,
        (ConsentLevel::Low, ConsequenceLevel::Tolerable) => TransformedCategory::CovertSoftware,
        (ConsentLevel::Low, ConsequenceLevel::Moderate) => TransformedCategory::Trojans,
        (ConsentLevel::Low, ConsequenceLevel::Severe) => TransformedCategory::Parasites,
        (ConsentLevel::Medium, _) => unreachable!("medium consent eliminated above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CONSENTS: [ConsentLevel; 3] =
        [ConsentLevel::High, ConsentLevel::Medium, ConsentLevel::Low];
    const CONSEQUENCES: [ConsequenceLevel; 3] =
        [ConsequenceLevel::Tolerable, ConsequenceLevel::Moderate, ConsequenceLevel::Severe];

    #[test]
    fn table1_cell_numbers_match_paper() {
        // Row-major over Table 1.
        let expected = [
            (ConsentLevel::High, ConsequenceLevel::Tolerable, 1, "Legitimate software"),
            (ConsentLevel::High, ConsequenceLevel::Moderate, 2, "Adverse software"),
            (ConsentLevel::High, ConsequenceLevel::Severe, 3, "Double agents"),
            (ConsentLevel::Medium, ConsequenceLevel::Tolerable, 4, "Semi-transparent software"),
            (ConsentLevel::Medium, ConsequenceLevel::Moderate, 5, "Unsolicited software"),
            (ConsentLevel::Medium, ConsequenceLevel::Severe, 6, "Semi-parasites"),
            (ConsentLevel::Low, ConsequenceLevel::Tolerable, 7, "Covert software"),
            (ConsentLevel::Low, ConsequenceLevel::Moderate, 8, "Trojans"),
            (ConsentLevel::Low, ConsequenceLevel::Severe, 9, "Parasites"),
        ];
        for (consent, consequence, number, name) in expected {
            let cat = PisCategory::classify(consent, consequence);
            assert_eq!(cat.cell_number(), number);
            assert_eq!(cat.name(), name);
            assert_eq!(cat.consent(), consent);
            assert_eq!(cat.consequence(), consequence);
        }
    }

    #[test]
    fn classification_is_total_and_injective() {
        // Invariant 7: a bijection between the 9 pairs and the 9 cells.
        let mut seen = std::collections::HashSet::new();
        for consent in CONSENTS {
            for consequence in CONSEQUENCES {
                seen.insert(PisCategory::classify(consent, consequence));
            }
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn spyware_malware_legitimate_partition() {
        // §1.1's three groups partition the nine cells.
        let mut legit = 0;
        let mut spy = 0;
        let mut mal = 0;
        for cat in PisCategory::all() {
            let flags = [cat.is_legitimate(), cat.is_spyware(), cat.is_malware()]
                .iter()
                .filter(|&&f| f)
                .count();
            assert_eq!(flags, 1, "{cat} must be in exactly one group");
            if cat.is_legitimate() {
                legit += 1;
            } else if cat.is_spyware() {
                spy += 1;
            } else {
                mal += 1;
            }
        }
        assert_eq!(legit, 1); // cell 1
        assert_eq!(spy, 3); // cells 2, 4, 5
        assert_eq!(mal, 5); // cells 3, 6, 7, 8, 9
    }

    #[test]
    fn spyware_cells_are_2_4_5() {
        let spy: Vec<u8> =
            PisCategory::all().iter().filter(|c| c.is_spyware()).map(|c| c.cell_number()).collect();
        assert_eq!(spy, vec![2, 4, 5]);
    }

    #[test]
    fn table2_transform_eliminates_medium_consent() {
        for cat in PisCategory::all() {
            for honest in [true, false] {
                let t = transform_with_reputation(cat, honest);
                // Six cells only; none corresponds to medium consent.
                assert!(matches!(t.cell_number(), 1..=3 | 7..=9));
            }
        }
    }

    #[test]
    fn table2_preserves_consequence_column() {
        for cat in PisCategory::all() {
            for honest in [true, false] {
                let t = transform_with_reputation(cat, honest);
                let col = match cat.consequence() {
                    ConsequenceLevel::Tolerable => [1, 7],
                    ConsequenceLevel::Moderate => [2, 8],
                    ConsequenceLevel::Severe => [3, 9],
                };
                assert!(col.contains(&t.cell_number()), "{cat} → {t} keeps its column");
            }
        }
    }

    #[test]
    fn honest_grey_zone_becomes_high_consent() {
        let t = transform_with_reputation(PisCategory::UnsolicitedSoftware, true);
        assert_eq!(t, TransformedCategory::AdverseSoftware);
        let t = transform_with_reputation(PisCategory::SemiTransparentSoftware, true);
        assert_eq!(t, TransformedCategory::LegitimateSoftware);
    }

    #[test]
    fn deceptive_grey_zone_becomes_malware() {
        let t = transform_with_reputation(PisCategory::UnsolicitedSoftware, false);
        assert_eq!(t, TransformedCategory::Trojans);
        assert!(t.is_malware_row());
        let t = transform_with_reputation(PisCategory::SemiParasites, false);
        assert_eq!(t, TransformedCategory::Parasites);
    }

    #[test]
    fn non_grey_rows_are_unchanged() {
        for honest in [true, false] {
            assert_eq!(
                transform_with_reputation(PisCategory::LegitimateSoftware, honest).cell_number(),
                1
            );
            assert_eq!(transform_with_reputation(PisCategory::Parasites, honest).cell_number(), 9);
            assert_eq!(transform_with_reputation(PisCategory::Trojans, honest).cell_number(), 8);
        }
    }

    proptest! {
        #[test]
        fn consent_consequence_roundtrip(ci in 0usize..3, qi in 0usize..3) {
            let cat = PisCategory::classify(CONSENTS[ci], CONSEQUENCES[qi]);
            prop_assert_eq!(cat.consent(), CONSENTS[ci]);
            prop_assert_eq!(cat.consequence(), CONSEQUENCES[qi]);
        }
    }
}
