//! User trust factors.
//!
//! §2.1 proposes "allowing the users to rate not only the software but also
//! the feedback of other users in terms of helpfulness, trustworthiness and
//! correctness, creating a reliability profile for each user … used to
//! weight the ratings of different users". §3.2 fixes the dynamics:
//!
//! * new users start at trust **1** (also the minimum),
//! * the maximum is **100**,
//! * growth is capped at **+5 units per week** — "you can reach a maximum
//!   trust factor of 5 the first week you are a member, 10 the second
//!   week, and so on … preventing any user from gaining a high trust
//!   factor … without proving themselves worthy of it over a relatively
//!   long period of time."
//!
//! Trust rises when a user's comments collect positive remarks and falls on
//! negative remarks. Decreases are *not* rate-limited — the cap exists to
//! slow trust **gain** by attackers, not to protect them from losing it.

use crate::clock::Timestamp;
use crate::model::TrustRecord;

/// Minimum (and initial) trust factor.
pub const MIN_TRUST: f64 = 1.0;
/// Maximum trust factor.
pub const MAX_TRUST: f64 = 100.0;
/// Maximum trust gain per calendar week.
pub const WEEKLY_TRUST_GROWTH_CAP: f64 = 5.0;

/// Pure trust-state transition logic, operating on [`TrustRecord`]s.
///
/// Stateless by design: the record lives in the reputation database and the
/// engine computes transitions, which keeps the arithmetic in one place and
/// property-testable in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrustEngine;

impl TrustEngine {
    /// The record for a freshly-registered user.
    pub fn new_user(username: &str, now: Timestamp) -> TrustRecord {
        TrustRecord {
            username: username.to_string(),
            trust: MIN_TRUST,
            week: now.week_index(),
            growth_this_week: 0.0,
        }
    }

    /// Apply a trust delta at time `now`, enforcing the weekly growth cap
    /// and the `[MIN_TRUST, MAX_TRUST]` clamp. Returns the delta actually
    /// applied.
    pub fn apply_delta(record: &mut TrustRecord, delta: f64, now: Timestamp) -> f64 {
        let week = now.week_index();
        if week != record.week {
            // New accounting window; unused allowance does not carry over.
            record.week = week;
            record.growth_this_week = 0.0;
        }

        let effective = if delta > 0.0 {
            let allowance = (WEEKLY_TRUST_GROWTH_CAP - record.growth_this_week).max(0.0);
            delta.min(allowance)
        } else {
            delta
        };

        let before = record.trust;
        record.trust = (record.trust + effective).clamp(MIN_TRUST, MAX_TRUST);
        let applied = record.trust - before;
        if applied > 0.0 {
            record.growth_this_week += applied;
        }
        applied
    }

    /// The weight this user's votes carry in aggregation.
    pub fn weight(record: &TrustRecord) -> f64 {
        record.trust
    }

    /// Upper bound on the trust reachable by an account that registered in
    /// week 0 and is observed during week `weeks_active` (0-based):
    /// `1 + 5·(w+1)`, clamped to [`MAX_TRUST`] — the paper's "maximum trust
    /// factor of 5 the first week, 10 the second week" schedule (the quoted
    /// values treat the +1 initial unit as absorbed into the first week's
    /// allowance; we bound with the explicit initial unit).
    pub fn max_reachable(weeks_active: u64) -> f64 {
        (MIN_TRUST + WEEKLY_TRUST_GROWTH_CAP * (weeks_active as f64 + 1.0)).min(MAX_TRUST)
    }
}

/// Standard trust deltas used by the reputation database.
pub mod deltas {
    /// A positive remark on one of the user's comments.
    pub const POSITIVE_REMARK: f64 = 1.0;
    /// A negative remark on one of the user's comments.
    pub const NEGATIVE_REMARK: f64 = -1.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WEEK_SECS;
    use proptest::prelude::*;

    fn at_week(w: u64) -> Timestamp {
        Timestamp(w * WEEK_SECS)
    }

    #[test]
    fn new_users_start_at_minimum() {
        let rec = TrustEngine::new_user("alice", at_week(3));
        assert_eq!(rec.trust, MIN_TRUST);
        assert_eq!(rec.week, 3);
    }

    #[test]
    fn growth_is_capped_at_five_per_week() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        for _ in 0..50 {
            TrustEngine::apply_delta(&mut rec, 1.0, at_week(0));
        }
        assert_eq!(rec.trust, MIN_TRUST + WEEKLY_TRUST_GROWTH_CAP);
    }

    #[test]
    fn allowance_resets_each_week_without_carryover() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        TrustEngine::apply_delta(&mut rec, 10.0, at_week(0));
        assert_eq!(rec.trust, 6.0); // 1 + 5
        TrustEngine::apply_delta(&mut rec, 10.0, at_week(1));
        assert_eq!(rec.trust, 11.0); // + 5
                                     // Skipping a week does not bank double allowance.
        TrustEngine::apply_delta(&mut rec, 100.0, at_week(3));
        assert_eq!(rec.trust, 16.0);
    }

    #[test]
    fn week_schedule_matches_paper() {
        // "a maximum trust factor of 5 the first week … 10 the second
        // week": the cap sequence grows by 5 per week.
        let mut rec = TrustEngine::new_user("a", at_week(0));
        for w in 0..25 {
            TrustEngine::apply_delta(&mut rec, f64::INFINITY, at_week(w));
        }
        assert_eq!(rec.trust, MAX_TRUST, "reaches the cap eventually");
        assert!(TrustEngine::max_reachable(0) <= 6.0);
        assert_eq!(TrustEngine::max_reachable(1_000), MAX_TRUST);
    }

    #[test]
    fn decreases_are_unlimited_but_floored() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        rec.trust = 50.0;
        let applied = TrustEngine::apply_delta(&mut rec, -200.0, at_week(0));
        assert_eq!(rec.trust, MIN_TRUST);
        assert_eq!(applied, -49.0);
    }

    #[test]
    fn decreases_do_not_consume_growth_allowance() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        TrustEngine::apply_delta(&mut rec, 2.0, at_week(0));
        TrustEngine::apply_delta(&mut rec, -1.0, at_week(0));
        // 3 units of allowance must remain.
        TrustEngine::apply_delta(&mut rec, 10.0, at_week(0));
        assert_eq!(rec.trust, MIN_TRUST + 2.0 - 1.0 + 3.0);
    }

    #[test]
    fn ceiling_is_one_hundred() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        rec.trust = 99.0;
        TrustEngine::apply_delta(&mut rec, 5.0, at_week(0));
        assert_eq!(rec.trust, MAX_TRUST);
        // Once at the ceiling, further gains apply zero.
        let applied = TrustEngine::apply_delta(&mut rec, 1.0, at_week(1));
        assert_eq!(applied, 0.0);
    }

    #[test]
    fn applied_delta_is_returned() {
        let mut rec = TrustEngine::new_user("a", at_week(0));
        assert_eq!(TrustEngine::apply_delta(&mut rec, 3.0, at_week(0)), 3.0);
        assert_eq!(TrustEngine::apply_delta(&mut rec, 3.0, at_week(0)), 2.0);
        assert_eq!(TrustEngine::apply_delta(&mut rec, 3.0, at_week(0)), 0.0);
    }

    proptest! {
        #[test]
        fn invariants_hold_under_arbitrary_deltas(
            deltas in proptest::collection::vec((-10.0f64..10.0, 0u64..20), 0..200)
        ) {
            // DESIGN.md invariant 2: bounds + growth schedule, regardless
            // of the remark stream.
            let mut rec = TrustEngine::new_user("a", at_week(0));
            let mut max_week = 0u64;
            for (delta, week) in deltas {
                let week = max_week.max(week); // time moves forward
                max_week = week;
                TrustEngine::apply_delta(&mut rec, delta, at_week(week));
                prop_assert!(rec.trust >= MIN_TRUST);
                prop_assert!(rec.trust <= MAX_TRUST);
                prop_assert!(rec.trust <= TrustEngine::max_reachable(week));
                prop_assert!(rec.growth_this_week <= WEEKLY_TRUST_GROWTH_CAP + 1e-9);
            }
        }
    }
}
