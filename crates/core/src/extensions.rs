//! Records for the paper's proposed extensions (§4.2 improvements and §5
//! future work), implemented as first-class features:
//!
//! * [`EvidenceRecord`] — §5: "the possibility of using runtime software
//!   analysis to automatically collect information about whether software
//!   has some unwanted behaviour … The results from such investigations
//!   could then be inserted into the reputation system as **hard evidence**
//!   on the behaviour for that specific software." Evidence rows are
//!   produced by the `softrep-analysis` sandbox and displayed to clients
//!   as *verified* behaviours, distinct from user-reported ones.
//!
//! * [`FeedRecord`] / [`FeedEntryRecord`] — §4.2: "allowing for instance
//!   organisations or groups of technically skilled individuals to publish
//!   their software ratings and other feedback within the reputation
//!   system … Allowing computer users to subscribe to information from
//!   organisations or groups that they find trustworthy."

use softrep_storage::codec::{get_seq, put_seq, Decode, Encode, Reader, Writer};
use softrep_storage::error::StorageResult;

use crate::clock::Timestamp;

/// Analyzer-verified behaviour evidence for one executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceRecord {
    /// Hex software id.
    pub software_id: String,
    /// Behaviours the runtime analysis observed.
    pub behaviours: Vec<String>,
    /// Identifier of the analyzer that produced the evidence.
    pub analyzer: String,
    /// When the analysis completed.
    pub analyzed_at: Timestamp,
}

impl Encode for EvidenceRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.software_id);
        put_seq(w, &self.behaviours);
        w.put_str(&self.analyzer);
        self.analyzed_at.encode(w);
    }
}

impl Decode for EvidenceRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(EvidenceRecord {
            software_id: r.get_str()?,
            behaviours: get_seq(r)?,
            analyzer: r.get_str()?,
            analyzed_at: Timestamp::decode(r)?,
        })
    }
}

/// A published rating feed (an organisation's channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedRecord {
    /// Feed name (unique; also the table key).
    pub name: String,
    /// The member account that owns the feed. Only the owner may publish
    /// into it — subscribers chose the feed because they trust *this*
    /// publisher.
    pub publisher: String,
    /// Creation instant.
    pub created_at: Timestamp,
}

impl Encode for FeedRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_str(&self.publisher);
        self.created_at.encode(w);
    }
}

impl Decode for FeedRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(FeedRecord {
            name: r.get_str()?,
            publisher: r.get_str()?,
            created_at: Timestamp::decode(r)?,
        })
    }
}

/// One feed's verdict on one executable.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedEntryRecord {
    /// Owning feed.
    pub feed: String,
    /// Hex software id.
    pub software_id: String,
    /// The feed's rating (1.0–10.0).
    pub rating: f64,
    /// Behaviours the feed reports.
    pub behaviours: Vec<String>,
    /// Publication instant.
    pub published_at: Timestamp,
}

impl Encode for FeedEntryRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.feed);
        w.put_str(&self.software_id);
        w.put_f64(self.rating);
        put_seq(w, &self.behaviours);
        self.published_at.encode(w);
    }
}

impl Decode for FeedEntryRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(FeedEntryRecord {
            feed: r.get_str()?,
            software_id: r.get_str()?,
            rating: r.get_f64()?,
            behaviours: get_seq(r)?,
            published_at: Timestamp::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evidence_roundtrip() {
        let rec = EvidenceRecord {
            software_id: "ab".repeat(20),
            behaviours: vec!["popup_ads".into(), "keylogger".into()],
            analyzer: "sandbox-v1".into(),
            analyzed_at: Timestamp(77),
        };
        assert_eq!(EvidenceRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
    }

    #[test]
    fn feed_records_roundtrip() {
        let feed = FeedRecord {
            name: "av-lab".into(),
            publisher: "lab_head".into(),
            created_at: Timestamp(1),
        };
        assert_eq!(FeedRecord::decode_from_bytes(&feed.encode_to_bytes()).unwrap(), feed);
        let entry = FeedEntryRecord {
            feed: "av-lab".into(),
            software_id: "cd".repeat(20),
            rating: 2.5,
            behaviours: vec!["tracking".into()],
            published_at: Timestamp(2),
        };
        assert_eq!(FeedEntryRecord::decode_from_bytes(&entry.encode_to_bytes()).unwrap(), entry);
    }

    proptest! {
        #[test]
        fn evidence_roundtrip_arbitrary(
            id in "[0-9a-f]{40}",
            behaviours in proptest::collection::vec("[a-z_]{1,16}", 0..6),
            analyzer in "[a-z0-9-]{1,12}",
            ts: u64,
        ) {
            let rec = EvidenceRecord { software_id: id, behaviours, analyzer, analyzed_at: Timestamp(ts) };
            prop_assert_eq!(EvidenceRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }

        #[test]
        fn feed_entry_roundtrip_arbitrary(
            feed in "[a-z-]{1,12}",
            id in "[0-9a-f]{40}",
            rating in 1.0f64..=10.0,
            ts: u64,
        ) {
            let rec = FeedEntryRecord {
                feed, software_id: id, rating, behaviours: vec![], published_at: Timestamp(ts),
            };
            prop_assert_eq!(FeedEntryRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }
    }
}
