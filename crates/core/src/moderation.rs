//! Comment moderation — the third cold-start mitigation of §2.1.
//!
//! "The third approach would be to have one or more administrators keeping
//! track of all ratings and comments going into the system, verifying the
//! validity and quality of the comments prior to allowing other users to
//! view them." The paper also notes the cost: "once the number of users has
//! reached a certain level, this would require a lot of manual work …
//! as well as seriously decrease the frequency of vote updates."
//!
//! This module defines the policy switch and the bookkeeping that lets
//! experiment D1 measure exactly that trade-off (publication latency and
//! administrator workload vs. information quality).

use crate::clock::Timestamp;
use crate::model::{CommentRecord, CommentStatus};

/// Whether comments publish immediately or queue for review.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModerationPolicy {
    /// Comments publish immediately (the deployed proof-of-concept's mode).
    #[default]
    Open,
    /// Comments wait for an administrator decision before appearing.
    PreApproval,
}

impl ModerationPolicy {
    /// Status a fresh comment receives under this policy.
    pub fn initial_status(self) -> CommentStatus {
        match self {
            ModerationPolicy::Open => CommentStatus::Published,
            ModerationPolicy::PreApproval => CommentStatus::PendingReview,
        }
    }
}

/// An administrator decision on a pending comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModerationDecision {
    /// Publish the comment.
    Approve,
    /// Reject it (kept for audit, never shown).
    Reject,
}

/// Workload metrics for the administrator model (experiment D1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModerationStats {
    /// Comments currently awaiting review.
    pub pending: u64,
    /// Total decisions made.
    pub decided: u64,
    /// Total approvals.
    pub approved: u64,
    /// Total rejections.
    pub rejected: u64,
    /// Sum of (decision time − submission time) over all decisions, secs.
    pub total_review_latency_secs: u64,
}

impl ModerationStats {
    /// Mean seconds a reviewed comment waited for its decision.
    pub fn mean_review_latency_secs(&self) -> f64 {
        if self.decided == 0 {
            0.0
        } else {
            self.total_review_latency_secs as f64 / self.decided as f64
        }
    }

    /// Record a comment entering the queue.
    pub fn on_enqueue(&mut self) {
        self.pending += 1;
    }

    /// Record a decision over a comment submitted at `written_at`.
    pub fn on_decision(
        &mut self,
        decision: ModerationDecision,
        written_at: Timestamp,
        now: Timestamp,
    ) {
        self.pending = self.pending.saturating_sub(1);
        self.decided += 1;
        match decision {
            ModerationDecision::Approve => self.approved += 1,
            ModerationDecision::Reject => self.rejected += 1,
        }
        self.total_review_latency_secs += now.since(written_at);
    }
}

/// Apply a decision to a comment record. Returns `false` (and leaves the
/// record untouched) if the comment was not pending.
pub fn apply_decision(comment: &mut CommentRecord, decision: ModerationDecision) -> bool {
    if comment.status != CommentStatus::PendingReview {
        return false;
    }
    comment.status = match decision {
        ModerationDecision::Approve => CommentStatus::Published,
        ModerationDecision::Reject => CommentStatus::Rejected,
    };
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(status: CommentStatus) -> CommentRecord {
        CommentRecord {
            id: 1,
            author: "a".into(),
            software_id: "s".into(),
            text: "t".into(),
            written_at: Timestamp(100),
            status,
        }
    }

    #[test]
    fn open_policy_publishes_immediately() {
        assert_eq!(ModerationPolicy::Open.initial_status(), CommentStatus::Published);
        assert_eq!(ModerationPolicy::PreApproval.initial_status(), CommentStatus::PendingReview);
    }

    #[test]
    fn approve_and_reject_transition_pending_comments() {
        let mut c = comment(CommentStatus::PendingReview);
        assert!(apply_decision(&mut c, ModerationDecision::Approve));
        assert_eq!(c.status, CommentStatus::Published);

        let mut c = comment(CommentStatus::PendingReview);
        assert!(apply_decision(&mut c, ModerationDecision::Reject));
        assert_eq!(c.status, CommentStatus::Rejected);
    }

    #[test]
    fn decisions_on_non_pending_comments_are_rejected() {
        for status in [CommentStatus::Published, CommentStatus::Rejected] {
            let mut c = comment(status);
            assert!(!apply_decision(&mut c, ModerationDecision::Approve));
            assert_eq!(c.status, status, "record untouched");
        }
    }

    #[test]
    fn stats_track_workload_and_latency() {
        let mut stats = ModerationStats::default();
        stats.on_enqueue();
        stats.on_enqueue();
        assert_eq!(stats.pending, 2);

        stats.on_decision(ModerationDecision::Approve, Timestamp(100), Timestamp(400));
        stats.on_decision(ModerationDecision::Reject, Timestamp(100), Timestamp(200));
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.decided, 2);
        assert_eq!(stats.approved, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.mean_review_latency_secs(), 200.0);
    }

    #[test]
    fn empty_stats_have_zero_latency() {
        assert_eq!(ModerationStats::default().mean_review_latency_secs(), 0.0);
    }
}
