//! The reputation database: every table of §3.2/3.3 bound to a
//! `softrep-storage` store, with the paper's constraints enforced
//! transactionally.
//!
//! Enforced invariants (DESIGN.md §5):
//!
//! 1. one vote per (user, software) — structural, via the composite key;
//! 2. trust bounds and weekly growth cap — via [`TrustEngine`];
//! 4. privacy-minimal user schema — via [`UserRecord`] + the peppered
//!    e-mail digest, with uniqueness from a unique secondary index;
//! 5. deterministic 24 h aggregation — via [`crate::aggregate`].
//!
//! The struct is deliberately clock-free: every mutating method takes
//! `now: Timestamp`, so the same call sequence is exactly reproducible —
//! which the experiment harnesses rely on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::RngCore;
use softrep_obs::{Histogram, SpanFamily};

use softrep_crypto::hex;
use softrep_crypto::salted::{PasswordHash, SecretPepper};
use softrep_crypto::sha256::Sha256;
use softrep_storage::codec::Encode;
use softrep_storage::index::{IndexDef, IndexKind, IndexedTable};
use softrep_storage::table::{KeyCodec, Table, TableSchema};
use softrep_storage::{Store, StoreStats, WriteBatch};

use crate::aggregate;
use crate::aggregate_engine::{self, AggregationStats, DEFAULT_SHARDS, DEFAULT_WORKERS};
use crate::bootstrap::{expand_entry, BootstrapEntry, BOOTSTRAP_USER_PREFIX};
use crate::clock::Timestamp;
use crate::error::{CoreError, CoreResult};
use crate::extensions::{EvidenceRecord, FeedEntryRecord, FeedRecord};
use crate::model::{
    AccumulatorRecord, CommentRecord, CommentStatus, RatingRecord, RemarkRecord, SoftwareRecord,
    TrustRecord, UserRecord, VoteRecord, MAX_SCORE, MIN_SCORE,
};
use crate::moderation::{apply_decision, ModerationDecision, ModerationPolicy, ModerationStats};
use crate::trust::{deltas, TrustEngine};

static VOTES: TableSchema<(String, String), VoteRecord> = TableSchema::new("votes");
static REMARKS: TableSchema<(u64, String), RemarkRecord> = TableSchema::new("remarks");
static RATINGS: TableSchema<String, RatingRecord> = TableSchema::new("ratings");
static TRUST: TableSchema<String, TrustRecord> = TableSchema::new("trust");
static EVIDENCE: TableSchema<String, EvidenceRecord> = TableSchema::new("evidence");
static FEEDS: TableSchema<String, FeedRecord> = TableSchema::new("feeds");
static FEED_ENTRIES: TableSchema<(String, String), FeedEntryRecord> =
    TableSchema::new("feed_entries");
/// Reverse vote index `(username, software_id) → cast_at`: lets a trust
/// change dirty every title the user voted on without scanning all votes.
static VOTES_BY_USER: TableSchema<(String, String), Timestamp> = TableSchema::new("votes_by_user");
/// Persisted `(Σ w·s, Σ w)` accumulators; see [`AccumulatorRecord`].
static ACCUMULATORS: TableSchema<String, AccumulatorRecord> = TableSchema::new("agg_accumulators");

const META_TREE: &str = "meta";
/// Dirty set of the incremental aggregation engine: key is the key-codec
/// encoding of the software id, value is empty. Marks are written in the
/// same [`WriteBatch`] as the mutation that caused them.
const AGG_DIRTY_TREE: &str = "agg_dirty";
/// Marks of the batch currently being recomputed. Draining moves marks
/// here (atomically with the dirty-tree delete) instead of discarding
/// them, and a batch clears its marks only after its ratings are written:
/// a crash anywhere inside the batch leaves the marks recoverable, so the
/// next drain retries them. Without this staging tree, a crash between
/// the drain and the rating writes silently dropped the whole dirty set —
/// the crash-schedule explorer (tests/crash_matrix.rs) found exactly that
/// schedule.
const AGG_INFLIGHT_TREE: &str = "agg_inflight";
/// Read-side caches are cleared wholesale when they exceed this many
/// entries — crude, but bounds memory without an LRU dependency.
const READ_CACHE_CAP: usize = 4096;
const SPENT_PSEUDONYM_TOKENS_TREE: &str = "spent_pseudonym_tokens";
const META_NEXT_COMMENT_ID: &[u8] = b"next_comment_id";
const META_LAST_AGGREGATION: &[u8] = b"last_aggregation";

/// Trust factor granted to the reserved bootstrap identities. Above a new
/// member (1) but far below a proven expert (up to 100): the imported
/// database is "more or less reliable" (§2.1).
pub const BOOTSTRAP_SEED_TRUST: f64 = 10.0;

/// A published comment together with its net remark score, as shown to
/// clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishedComment {
    /// The underlying record.
    pub comment: CommentRecord,
    /// Positive minus negative remarks.
    pub remark_score: i64,
}

/// Everything a client needs to render the execution-time dialog.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareReport {
    /// Stored metadata.
    pub software: SoftwareRecord,
    /// Last published aggregate, if any batch has covered this software.
    pub rating: Option<RatingRecord>,
    /// Published comments, highest remark score first.
    pub comments: Vec<PublishedComment>,
    /// Analyzer-verified behaviour evidence (§5 future work), if any.
    pub evidence: Option<EvidenceRecord>,
}

/// Derived vendor view (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct VendorReport {
    /// Vendor (company) name.
    pub vendor: String,
    /// Mean over the vendor's rated software.
    pub rating: Option<f64>,
    /// Number of software titles attributed to the vendor.
    pub software_count: u64,
}

/// Aggregate deployment counters for the web front page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentStats {
    /// Registered accounts.
    pub users: u64,
    /// Known executables.
    pub software: u64,
    /// Ballots cast.
    pub votes: u64,
    /// Comments stored (all statuses).
    pub comments: u64,
    /// Executables with a published rating.
    pub rated_software: u64,
}

/// Cached observability handles for the aggregation engine (crates/obs):
/// per-run latency spans plus the drained-dirty-set size distribution.
/// Registered once per database; every record is relaxed atomics outside
/// any database lock, so batch runs cost two clock reads, not contention.
struct DbObs {
    /// Wall time of one incremental batch (always-on: runs are ms-scale).
    agg_incremental: SpanFamily,
    /// Wall time of one full (paper §3.2) batch.
    agg_full: SpanFamily,
    /// Dirty titles drained per incremental batch — the backlog each run
    /// actually absorbed, complementing the live `dirty_count` gauge.
    batch_dirty: Arc<Histogram>,
}

impl DbObs {
    fn new() -> Self {
        let registry = softrep_obs::registry();
        DbObs {
            agg_incremental: SpanFamily::always(
                "agg_incremental_run",
                registry.histogram("softrep_agg_incremental_run_us"),
            ),
            agg_full: SpanFamily::always(
                "agg_full_run",
                registry.histogram("softrep_agg_full_run_us"),
            ),
            batch_dirty: registry.histogram("softrep_agg_batch_dirty_titles"),
        }
    }
}

/// The reputation database.
pub struct ReputationDb {
    store: Arc<Store>,
    users: IndexedTable<String, UserRecord>,
    software: IndexedTable<String, SoftwareRecord>,
    comments: IndexedTable<u64, CommentRecord>,
    votes: Table<(String, String), VoteRecord>,
    votes_by_user: Table<(String, String), Timestamp>,
    remarks: Table<(u64, String), RemarkRecord>,
    ratings: Table<String, RatingRecord>,
    accumulators: Table<String, AccumulatorRecord>,
    trust: Table<String, TrustRecord>,
    evidence: Table<String, EvidenceRecord>,
    feeds: Table<String, FeedRecord>,
    feed_entries: Table<(String, String), FeedEntryRecord>,
    pepper: SecretPepper,
    moderation_policy: ModerationPolicy,
    moderation_stats: Mutex<ModerationStats>,
    /// Memoised [`software_report`](Self::software_report) results,
    /// invalidated by every mutation that can change a report. `RwLock`
    /// so concurrent cache hits — the hot execution-time read path —
    /// share the lock instead of serialising behind each other.
    report_cache: RwLock<HashMap<String, SoftwareReport>>,
    /// Memoised [`vendor_report`](Self::vendor_report) results, keyed by
    /// company name.
    vendor_cache: RwLock<HashMap<String, VendorReport>>,
    agg_counters: AggCounters,
    obs: DbObs,
    /// Serialises multi-step mutations (check-then-act sequences such as
    /// the duplicate-username check, the unique e-mail index check, and
    /// the comment-id counter) against concurrent callers. Reads and
    /// single-key writes don't need it — the store itself is internally
    /// synchronised.
    write_gate: Mutex<()>,
}

impl ReputationDb {
    /// Open over an existing store (durable or in-memory).
    pub fn new(store: Arc<Store>, pepper: SecretPepper) -> Self {
        Self::with_moderation(store, pepper, ModerationPolicy::Open)
    }

    /// Open with an explicit moderation policy.
    pub fn with_moderation(
        store: Arc<Store>,
        pepper: SecretPepper,
        moderation_policy: ModerationPolicy,
    ) -> Self {
        let users = IndexedTable::new(
            Arc::clone(&store),
            "users",
            vec![IndexDef {
                tree: "users_by_email",
                kind: IndexKind::Unique,
                // Pseudonym accounts store no e-mail digest at all; an
                // empty digest must not become a colliding index key.
                extract: |_, u: &UserRecord| {
                    if u.email_digest.is_empty() {
                        Vec::new()
                    } else {
                        vec![u.email_digest.as_bytes().to_vec()]
                    }
                },
            }],
        );
        let software = IndexedTable::new(
            Arc::clone(&store),
            "software",
            vec![IndexDef {
                tree: "software_by_company",
                kind: IndexKind::NonUnique,
                extract: |_, s: &SoftwareRecord| {
                    s.company.as_deref().map(|c| vec![c.as_bytes().to_vec()]).unwrap_or_default()
                },
            }],
        );
        let comments = IndexedTable::new(
            Arc::clone(&store),
            "comments",
            vec![IndexDef {
                tree: "comments_by_software",
                kind: IndexKind::NonUnique,
                extract: |_, c: &CommentRecord| vec![c.software_id.as_bytes().to_vec()],
            }],
        );
        ReputationDb {
            votes: Table::bind(Arc::clone(&store), &VOTES),
            votes_by_user: Table::bind(Arc::clone(&store), &VOTES_BY_USER),
            remarks: Table::bind(Arc::clone(&store), &REMARKS),
            ratings: Table::bind(Arc::clone(&store), &RATINGS),
            accumulators: Table::bind(Arc::clone(&store), &ACCUMULATORS),
            trust: Table::bind(Arc::clone(&store), &TRUST),
            evidence: Table::bind(Arc::clone(&store), &EVIDENCE),
            feeds: Table::bind(Arc::clone(&store), &FEEDS),
            feed_entries: Table::bind(Arc::clone(&store), &FEED_ENTRIES),
            users,
            software,
            comments,
            store,
            pepper,
            moderation_policy,
            moderation_stats: Mutex::new(ModerationStats::default()),
            report_cache: RwLock::new(HashMap::new()),
            vendor_cache: RwLock::new(HashMap::new()),
            agg_counters: AggCounters::default(),
            obs: DbObs::new(),
            write_gate: Mutex::new(()),
        }
    }

    /// Convenience: fresh in-memory database for tests and simulations.
    pub fn in_memory(pepper_secret: &str) -> Self {
        Self::new(
            Arc::new(Store::in_memory()),
            SecretPepper::new(pepper_secret.as_bytes().to_vec()),
        )
    }

    /// The underlying store (for stats, compaction, sync).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Drop every read-through cache. The replication apply path writes
    /// batches into the store *beneath* this layer, so a replica's tail
    /// calls this after each applied page — otherwise reads could keep
    /// serving pre-replication state indefinitely.
    pub fn purge_read_caches(&self) {
        self.report_cache.write().clear();
        self.vendor_cache.write().clear();
    }

    // -----------------------------------------------------------------
    // Accounts (§3.2)
    // -----------------------------------------------------------------

    /// Register a new account. Returns the activation token, which the
    /// deployment e-mails to the address (and which we hand back to the
    /// simulated mail system).
    pub fn register_user(
        &self,
        username: &str,
        password: &str,
        email: &str,
        now: Timestamp,
        rng: &mut impl RngCore,
    ) -> CoreResult<String> {
        validate_username(username)?;
        if password.is_empty() {
            return Err(CoreError::InvalidInput("password must not be empty".into()));
        }
        if !email.contains('@') || email.len() > 254 {
            return Err(CoreError::InvalidInput("invalid e-mail address".into()));
        }
        let _write = self.write_gate.lock();
        if self.users.contains(&username.to_string()) {
            return Err(CoreError::DuplicateUsername(username.to_string()));
        }

        let mut token_bytes = [0u8; 16];
        rng.fill_bytes(&mut token_bytes);
        let token = hex::encode(&token_bytes);

        let record = UserRecord {
            username: username.to_string(),
            password_hash: PasswordHash::create(password, rng).encode(),
            email_digest: self.pepper.email_digest(email).to_hex(),
            signed_up: now,
            last_login: now,
            activated: false,
            activation_digest: Some(hex::encode(&Sha256::digest(token.as_bytes()))),
            pseudonym: false,
            pseudonym_credential_issued: false,
        };
        // The unique e-mail index rejects duplicate addresses here.
        self.users.put(&username.to_string(), &record)?;
        self.trust.put(&username.to_string(), &TrustEngine::new_user(username, now))?;
        Ok(token)
    }

    /// Redeem an activation token.
    pub fn activate_user(&self, username: &str, token: &str) -> CoreResult<()> {
        let _write = self.write_gate.lock();
        let key = username.to_string();
        let mut user =
            self.users.get(&key)?.ok_or_else(|| CoreError::UnknownUser(username.into()))?;
        if user.activated {
            return Ok(()); // idempotent
        }
        let expected = user.activation_digest.as_deref().ok_or(CoreError::BadActivationToken)?;
        let candidate = hex::encode(&Sha256::digest(token.as_bytes()));
        if !softrep_crypto::hmac::constant_time_eq(candidate.as_bytes(), expected.as_bytes()) {
            return Err(CoreError::BadActivationToken);
        }
        user.activated = true;
        user.activation_digest = None;
        self.users.put(&key, &user)?;
        Ok(())
    }

    /// Check credentials and record the login instant.
    pub fn login(&self, username: &str, password: &str, now: Timestamp) -> CoreResult<()> {
        let key = username.to_string();
        let mut user = self.users.get(&key)?.ok_or(CoreError::BadCredentials)?;
        let hash = PasswordHash::decode(&user.password_hash)
            .ok_or_else(|| CoreError::InvalidInput("stored password hash corrupt".into()))?;
        if !hash.verify(password) {
            return Err(CoreError::BadCredentials);
        }
        if !user.activated {
            return Err(CoreError::NotActivated(username.into()));
        }
        user.last_login = now;
        self.users.put(&key, &user)?;
        Ok(())
    }

    /// Fetch a user record.
    pub fn user(&self, username: &str) -> CoreResult<Option<UserRecord>> {
        Ok(self.users.get(&username.to_string())?)
    }

    /// Number of registered accounts.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Is this e-mail address already bound to an account? (Duplicate
    /// detection works on digests only — the address itself is never
    /// stored.)
    pub fn email_in_use(&self, email: &str) -> CoreResult<bool> {
        let digest = self.pepper.email_digest(email).to_hex();
        Ok(!self.users.lookup("users_by_email", digest.as_bytes())?.is_empty())
    }

    /// A short, stable, non-reversible display tag for a raw identity:
    /// the peppered digest of `domain:raw`, truncated to 12 hex chars and
    /// prefixed with the domain (`peer-3f9a…`, `author-c04b…`). The same
    /// raw value always maps to the same tag — flood buckets stay
    /// accurate and a member's comments stay linkable — but without the
    /// server's secret pepper the mapping cannot be reversed or even
    /// recomputed, which is the §2.2 requirement: transport and account
    /// identities are observed transiently and never exposed raw.
    pub fn pseudonym_tag(&self, domain: &str, raw: &str) -> String {
        let hex = self.pepper.email_digest(&format!("{domain}:{raw}")).to_hex();
        let short = hex.get(..12).unwrap_or(&hex);
        format!("{domain}-{short}")
    }

    /// Current trust factor of a user (None if unknown).
    pub fn trust_of(&self, username: &str) -> CoreResult<Option<f64>> {
        Ok(self.trust.get(&username.to_string())?.map(|t| t.trust))
    }

    fn require_active_user(&self, username: &str) -> CoreResult<UserRecord> {
        let user = self
            .users
            .get(&username.to_string())?
            .ok_or_else(|| CoreError::UnknownUser(username.into()))?;
        if !user.activated {
            return Err(CoreError::NotActivated(username.into()));
        }
        Ok(user)
    }

    // -----------------------------------------------------------------
    // Software metadata (§3.3)
    // -----------------------------------------------------------------

    /// Record an executable the first time any client reports it. The
    /// first report wins; later reports of the same digest are no-ops
    /// (metadata is derived from the file bytes, so honest reports agree).
    pub fn register_software(
        &self,
        software_id: &str,
        file_name: &str,
        file_size: u64,
        company: Option<String>,
        version: Option<String>,
        now: Timestamp,
    ) -> CoreResult<bool> {
        validate_software_id(software_id)?;
        let _write = self.write_gate.lock();
        let key = software_id.to_string();
        if self.software.contains(&key) {
            return Ok(false);
        }
        let record = SoftwareRecord {
            software_id: key.clone(),
            file_name: file_name.to_string(),
            file_size,
            company,
            version,
            first_seen: now,
        };
        self.software.put(&key, &record)?;
        if let Some(company) = &record.company {
            self.vendor_cache.write().remove(company);
        }
        Ok(true)
    }

    /// Fetch software metadata.
    pub fn software(&self, software_id: &str) -> CoreResult<Option<SoftwareRecord>> {
        Ok(self.software.get(&software_id.to_string())?)
    }

    /// Number of known executables.
    pub fn software_count(&self) -> usize {
        self.software.len()
    }

    // -----------------------------------------------------------------
    // Votes, comments, remarks (§3.1–3.2)
    // -----------------------------------------------------------------

    /// Submit (or replace) `username`'s vote. Invariant 1: the composite
    /// key makes a second submission an overwrite, never a second ballot.
    pub fn submit_vote(
        &self,
        username: &str,
        software_id: &str,
        score: u8,
        behaviours: Vec<String>,
        now: Timestamp,
    ) -> CoreResult<()> {
        if !(MIN_SCORE..=MAX_SCORE).contains(&score) {
            return Err(CoreError::InvalidScore(score));
        }
        self.require_active_user(username)?;
        if !self.software.contains(&software_id.to_string()) {
            return Err(CoreError::UnknownSoftware(software_id.into()));
        }
        let record = VoteRecord {
            username: username.to_string(),
            software_id: software_id.to_string(),
            score,
            behaviours,
            cast_at: now,
        };
        // Vote, reverse index, and dirty mark land in one batch: a crash
        // (or a concurrent incremental batch) can never observe the vote
        // without the mark that schedules its recompute.
        let mut batch = WriteBatch::new();
        batch.put(
            self.votes.tree(),
            (software_id.to_string(), username.to_string()).to_key_bytes(),
            record.encode_to_bytes().to_vec(),
        );
        batch.put(
            self.votes_by_user.tree(),
            (username.to_string(), software_id.to_string()).to_key_bytes(),
            now.encode_to_bytes().to_vec(),
        );
        batch.put(AGG_DIRTY_TREE, software_id.to_string().to_key_bytes(), Vec::new());
        self.store.apply(&batch)?;
        self.agg_counters.dirty_marks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The caller's current vote for a software, if any.
    pub fn vote_of(&self, username: &str, software_id: &str) -> CoreResult<Option<VoteRecord>> {
        Ok(self.votes.get(&(software_id.to_string(), username.to_string()))?)
    }

    /// All votes for one software. Decodes straight off the borrowed tree
    /// entries — the hot aggregation path allocates one `Vec` per call,
    /// not one per key/value pair.
    pub fn votes_for(&self, software_id: &str) -> CoreResult<Vec<VoteRecord>> {
        let mut out = Vec::new();
        self.votes.for_each_key_prefix(&software_id.to_string(), |_, vote| out.push(vote))?;
        Ok(out)
    }

    /// Total number of votes in the system.
    pub fn vote_count(&self) -> usize {
        self.votes.len()
    }

    /// Submit a comment; returns its id. Under
    /// [`ModerationPolicy::PreApproval`] the comment is queued, not shown.
    pub fn submit_comment(
        &self,
        username: &str,
        software_id: &str,
        text: &str,
        now: Timestamp,
    ) -> CoreResult<u64> {
        self.require_active_user(username)?;
        if !self.software.contains(&software_id.to_string()) {
            return Err(CoreError::UnknownSoftware(software_id.into()));
        }
        let text = text.trim();
        if text.is_empty() || text.len() > 4096 {
            return Err(CoreError::InvalidInput("comment must be 1–4096 characters".into()));
        }
        let _write = self.write_gate.lock();
        let id = self.next_comment_id()?;
        let status = self.moderation_policy.initial_status();
        let record = CommentRecord {
            id,
            author: username.to_string(),
            software_id: software_id.to_string(),
            text: text.to_string(),
            written_at: now,
            status,
        };
        self.comments.put(&id, &record)?;
        if status == CommentStatus::PendingReview {
            self.moderation_stats.lock().on_enqueue();
        }
        self.report_cache.write().remove(software_id);
        Ok(id)
    }

    /// Remark on a comment: `positive = true` raises the author's trust,
    /// `false` lowers it (per [`deltas`]), both through the weekly cap.
    /// One remark per (rater, comment); re-remarking flips the previous
    /// one rather than stacking.
    pub fn remark_comment(
        &self,
        rater: &str,
        comment_id: u64,
        positive: bool,
        now: Timestamp,
    ) -> CoreResult<()> {
        self.require_active_user(rater)?;
        let comment =
            self.comments.get(&comment_id)?.ok_or(CoreError::UnknownComment(comment_id))?;
        if comment.status != CommentStatus::Published {
            return Err(CoreError::CommentNotPublished(comment_id));
        }
        if comment.author == rater {
            return Err(CoreError::SelfRemark);
        }

        let _write = self.write_gate.lock();
        let key = (comment_id, rater.to_string());
        let previous = self.remarks.get(&key)?;
        let delta = match &previous {
            Some(prev) if prev.positive == positive => 0.0, // idempotent
            Some(_) => {
                // Flip: retract the old effect and apply the new one.
                if positive {
                    deltas::POSITIVE_REMARK - deltas::NEGATIVE_REMARK
                } else {
                    deltas::NEGATIVE_REMARK - deltas::POSITIVE_REMARK
                }
            }
            None => {
                if positive {
                    deltas::POSITIVE_REMARK
                } else {
                    deltas::NEGATIVE_REMARK
                }
            }
        };

        self.remarks.put(
            &key,
            &RemarkRecord { rater: rater.to_string(), comment_id, positive, made_at: now },
        )?;

        if delta != 0.0 {
            self.adjust_trust_locked(&comment.author, delta, now)?;
        }
        self.report_cache.write().remove(&comment.software_id);
        Ok(())
    }

    /// Net remark score of a comment.
    pub fn remark_score(&self, comment_id: u64) -> CoreResult<i64> {
        let mut score = 0i64;
        self.remarks.for_each_key_prefix(&comment_id, |_, r: RemarkRecord| {
            score += if r.positive { 1 } else { -1 };
        })?;
        Ok(score)
    }

    /// Published comments for a software, highest remark score first.
    pub fn comments_for(&self, software_id: &str) -> CoreResult<Vec<PublishedComment>> {
        let rows = self.comments.lookup_records("comments_by_software", software_id.as_bytes())?;
        let mut out = Vec::with_capacity(rows.len());
        for (id, comment) in rows {
            if comment.status == CommentStatus::Published {
                out.push(PublishedComment { remark_score: self.remark_score(id)?, comment });
            }
        }
        out.sort_by(|a, b| {
            b.remark_score.cmp(&a.remark_score).then(a.comment.id.cmp(&b.comment.id))
        });
        Ok(out)
    }

    /// Adjust a user's trust factor through the engine (cap + clamp).
    pub fn adjust_trust(&self, username: &str, delta: f64, now: Timestamp) -> CoreResult<f64> {
        let _write = self.write_gate.lock();
        self.adjust_trust_locked(username, delta, now)
    }

    /// [`adjust_trust`](Self::adjust_trust) body, for callers already
    /// holding the write gate (the gate is not re-entrant).
    fn adjust_trust_locked(&self, username: &str, delta: f64, now: Timestamp) -> CoreResult<f64> {
        let key = username.to_string();
        let mut record =
            self.trust.get(&key)?.unwrap_or_else(|| TrustEngine::new_user(username, now));
        let applied = TrustEngine::apply_delta(&mut record, delta, now);
        self.trust.put(&key, &record)?;
        if applied != 0.0 {
            // The user's weight changed, so every rating their ballot
            // contributes to is stale: dirty all of them (dirty rule 2).
            // Collect first, write after — the visitor runs under the
            // index's shard read lock and must not re-enter the store.
            let mut marks = WriteBatch::new();
            let mut dirtied = 0u64;
            self.votes_by_user.for_each_key_prefix(&key, |(_, software_id), _| {
                marks.put(AGG_DIRTY_TREE, software_id.to_key_bytes(), Vec::new());
                dirtied += 1;
            })?;
            if !marks.is_empty() {
                self.store.apply(&marks)?;
                self.agg_counters.dirty_marks.fetch_add(dirtied, Ordering::Relaxed);
            }
        }
        Ok(applied)
    }

    // -----------------------------------------------------------------
    // Moderation (§2.1, third mitigation)
    // -----------------------------------------------------------------

    /// Comments awaiting review, oldest first.
    pub fn pending_comments(&self) -> CoreResult<Vec<CommentRecord>> {
        let mut pending: Vec<CommentRecord> = self
            .comments
            .scan()?
            .into_iter()
            .map(|(_, c)| c)
            .filter(|c| c.status == CommentStatus::PendingReview)
            .collect();
        pending.sort_by_key(|c| (c.written_at, c.id));
        Ok(pending)
    }

    /// Apply an administrator decision.
    pub fn moderate_comment(
        &self,
        comment_id: u64,
        decision: ModerationDecision,
        now: Timestamp,
    ) -> CoreResult<()> {
        let _write = self.write_gate.lock();
        let mut comment =
            self.comments.get(&comment_id)?.ok_or(CoreError::UnknownComment(comment_id))?;
        if !apply_decision(&mut comment, decision) {
            return Err(CoreError::InvalidInput(format!("comment {comment_id} is not pending")));
        }
        self.moderation_stats.lock().on_decision(decision, comment.written_at, now);
        self.comments.put(&comment_id, &comment)?;
        // A published (or rejected) comment changes the software report,
        // and moderation outcomes feed future trust remarks — schedule a
        // recompute for the affected title as well.
        self.mark_dirty(&comment.software_id)?;
        self.report_cache.write().remove(&comment.software_id);
        Ok(())
    }

    /// Moderation workload counters.
    pub fn moderation_stats(&self) -> ModerationStats {
        *self.moderation_stats.lock()
    }

    // -----------------------------------------------------------------
    // Aggregation (§3.2) and reports
    // -----------------------------------------------------------------

    /// Run the batch job if 24 h have passed since the last run. Returns
    /// the number of software ratings recomputed (0 if not due).
    ///
    /// Since the incremental engine landed this runs
    /// [`force_aggregation_incremental`](Self::force_aggregation_incremental):
    /// only titles marked dirty since the previous batch are recomputed.
    pub fn run_aggregation_if_due(&self, now: Timestamp) -> CoreResult<usize> {
        if !aggregate::aggregation_due(self.last_aggregation()?, now) {
            return Ok(0);
        }
        self.force_aggregation_incremental(now)
    }

    /// Unconditionally recompute every software rating from the current
    /// votes and trust snapshot — the paper-faithful full batch. Kept both
    /// as the golden reference the incremental path is checked against and
    /// as an operator command.
    pub fn force_aggregation(&self, now: Timestamp) -> CoreResult<usize> {
        self.force_aggregation_full(now)
    }

    /// The full (paper §3.2) batch: every title, one trust snapshot.
    pub fn force_aggregation_full(&self, now: Timestamp) -> CoreResult<usize> {
        let _span = self.obs.agg_full.maybe_start();
        // Drain pending dirty marks *before* reading any votes: the full
        // scan subsumes them, and a vote that lands mid-scan either makes
        // it into this batch or re-marks itself for the next one.
        self.drain_dirty_marks()?;

        // Snapshot trust once: aggregation within a batch sees one
        // consistent trust state (determinism, invariant 5).
        let trust_snapshot: HashMap<String, f64> =
            self.trust.scan()?.into_iter().map(|(user, rec)| (user, rec.trust)).collect();

        let mut recomputed = 0;
        for (software_id, _) in self.software.scan()? {
            let votes = self.votes_for(&software_id)?;
            if let Some((rating, score_mass)) = aggregate::aggregate_software_with_masses(
                &software_id,
                &votes,
                |user| trust_snapshot.get(user).copied(),
                now,
            ) {
                self.write_rating(&rating, score_mass, now)?;
                recomputed += 1;
            }
        }
        self.report_cache.write().clear();
        self.vendor_cache.write().clear();
        self.clear_inflight_marks()?;
        self.store.put(META_TREE, META_LAST_AGGREGATION.to_vec(), now.0.to_be_bytes().to_vec())?;
        self.agg_counters.full_runs.fetch_add(1, Ordering::Relaxed);
        self.agg_counters.titles_recomputed_full.fetch_add(recomputed as u64, Ordering::Relaxed);
        Ok(recomputed)
    }

    /// The incremental batch: recompute only the titles in the dirty set,
    /// sharded over a small worker pool. Produces rating records
    /// content-identical to [`force_aggregation_full`](Self::force_aggregation_full)
    /// (see `aggregate_engine` module docs for the argument; only
    /// `computed_at` of untouched titles differs). Stamps the schedule even
    /// when the dirty set is empty — a no-op batch still counts as a run.
    pub fn force_aggregation_incremental(&self, now: Timestamp) -> CoreResult<usize> {
        let _span = self.obs.agg_incremental.maybe_start();
        // Protocol: delete the marks *before* reading votes. A vote that
        // lands after the delete re-marks its title for the next batch; a
        // vote that lands before our read is folded into this one. Either
        // way no vote is ever dropped (at worst a title is recomputed
        // twice with identical results).
        let dirty = self.drain_dirty_marks()?;
        self.obs.batch_dirty.record(dirty.len() as u64);
        let plan = aggregate_engine::plan_shards(dirty.iter().cloned(), DEFAULT_SHARDS);
        let results: Vec<CoreResult<(RatingRecord, f64)>> =
            aggregate_engine::run_sharded(&plan, DEFAULT_WORKERS, |software_id| {
                self.recompute_one(software_id, now).transpose()
            });

        let mut fresh = Vec::with_capacity(results.len());
        let mut first_err = None;
        for result in results {
            match result {
                Ok(pair) => fresh.push(pair),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        if let Some(err) = first_err {
            // Nothing has been written yet: move every drained mark from
            // in-flight back to dirty (one atomic batch) so the next batch
            // retries the whole set, then surface the error.
            let mut remark = WriteBatch::new();
            for software_id in &dirty {
                remark.put(AGG_DIRTY_TREE, software_id.to_key_bytes(), Vec::new());
                remark.delete(AGG_INFLIGHT_TREE, software_id.to_key_bytes());
            }
            self.store.apply(&remark)?;
            return Err(err);
        }

        let recomputed = fresh.len();
        for (rating, score_mass) in fresh {
            self.write_rating(&rating, score_mass, now)?;
            self.report_cache.write().remove(&rating.software_id);
            self.invalidate_vendor_cache_for(&rating.software_id)?;
        }
        // Every rating of the batch is written: only now may the marks be
        // retired. A crash before this line re-runs the batch (idempotent)
        // instead of losing it.
        self.clear_inflight_marks()?;
        self.store.put(META_TREE, META_LAST_AGGREGATION.to_vec(), now.0.to_be_bytes().to_vec())?;
        self.agg_counters.incremental_runs.fetch_add(1, Ordering::Relaxed);
        self.agg_counters
            .titles_recomputed_incremental
            .fetch_add(recomputed as u64, Ordering::Relaxed);
        Ok(recomputed)
    }

    /// Recompute one title from its current votes and per-voter trust
    /// lookups. `Ok(None)` when the title has no votes (nothing to
    /// publish; any stale record is left in place, exactly like the full
    /// path).
    fn recompute_one(
        &self,
        software_id: &str,
        now: Timestamp,
    ) -> CoreResult<Option<(RatingRecord, f64)>> {
        let votes = self.votes_for(software_id)?;
        // Point lookups instead of a full trust snapshot: only this
        // title's voters matter, which is what makes a 1-dirty-in-10k
        // batch cheap. Values are identical to a snapshot's — trust writes
        // racing the batch fall under the this-batch-or-next guarantee.
        let mut trust_of_voter: HashMap<&str, f64> = HashMap::with_capacity(votes.len());
        for vote in &votes {
            if !trust_of_voter.contains_key(vote.username.as_str()) {
                if let Some(rec) = self.trust.get(&vote.username)? {
                    trust_of_voter.insert(vote.username.as_str(), rec.trust);
                }
            }
        }
        Ok(aggregate::aggregate_software_with_masses(
            software_id,
            &votes,
            |user| trust_of_voter.get(user).copied(),
            now,
        ))
    }

    /// Persist one recomputed rating plus its raw-mass accumulator.
    fn write_rating(
        &self,
        rating: &RatingRecord,
        score_mass: f64,
        now: Timestamp,
    ) -> CoreResult<()> {
        self.accumulators.put(
            &rating.software_id,
            &AccumulatorRecord {
                software_id: rating.software_id.clone(),
                score_mass,
                weight_mass: rating.trust_mass,
                vote_count: rating.vote_count,
                updated_at: now,
            },
        )?;
        self.ratings.put(&rating.software_id, rating)?;
        Ok(())
    }

    /// Remove and return the dirty set. Deleting before the caller reads
    /// votes is what makes concurrent marks safe (see
    /// [`force_aggregation_incremental`](Self::force_aggregation_incremental)).
    ///
    /// Crash safety: the delete and a copy into [`AGG_INFLIGHT_TREE`] are
    /// one atomic batch, and leftovers from an earlier batch that died
    /// mid-flight are folded into the result — so a mark can be retried
    /// (recomputation is idempotent) but never lost. The caller retires
    /// the in-flight marks via [`clear_inflight_marks`](Self::clear_inflight_marks)
    /// once the recomputed ratings are written.
    fn drain_dirty_marks(&self) -> CoreResult<Vec<String>> {
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut stage = WriteBatch::new();
        // Collect under the read lock, write after it drops (the visitor
        // must not call back into the store).
        self.store.for_each_prefix(AGG_DIRTY_TREE, &[], |key, _| {
            keys.push(key.to_vec());
            stage.delete(AGG_DIRTY_TREE, key.to_vec());
            stage.put(AGG_INFLIGHT_TREE, key.to_vec(), Vec::new());
            true
        });
        // Marks a crashed batch drained but never retired.
        self.store.for_each_prefix(AGG_INFLIGHT_TREE, &[], |key, _| {
            keys.push(key.to_vec());
            true
        });
        if !stage.is_empty() {
            self.store.apply(&stage)?;
        }
        keys.sort();
        keys.dedup();
        Ok(keys.iter().filter_map(|key| String::from_key_bytes(key)).collect())
    }

    /// Retire in-flight marks once the batch that drained them has written
    /// every recomputed rating. Batches run one at a time (the scheduler
    /// serializes aggregation), so everything in the tree belongs to the
    /// batch that just finished.
    fn clear_inflight_marks(&self) -> CoreResult<()> {
        let mut retire = WriteBatch::new();
        self.store.for_each_prefix(AGG_INFLIGHT_TREE, &[], |key, _| {
            retire.delete(AGG_INFLIGHT_TREE, key.to_vec());
            true
        });
        if !retire.is_empty() {
            self.store.apply(&retire)?;
        }
        Ok(())
    }

    /// Mark one title for recompute by the next incremental batch.
    fn mark_dirty(&self, software_id: &str) -> CoreResult<()> {
        self.store.put(AGG_DIRTY_TREE, software_id.to_string().to_key_bytes(), Vec::new())?;
        self.agg_counters.dirty_marks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drop the cached vendor report of the company owning `software_id`.
    fn invalidate_vendor_cache_for(&self, software_id: &str) -> CoreResult<()> {
        if let Some(sw) = self.software.get(&software_id.to_string())? {
            if let Some(company) = sw.company {
                self.vendor_cache.write().remove(&company);
            }
        }
        Ok(())
    }

    /// Titles currently marked for recompute (diagnostics and tests).
    pub fn dirty_software(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.store.for_each_prefix(AGG_DIRTY_TREE, &[], |key, _| {
            if let Some(id) = String::from_key_bytes(key) {
                out.push(id);
            }
            true
        });
        out
    }

    /// Size of the dirty set.
    pub fn dirty_count(&self) -> usize {
        self.store.tree_len(AGG_DIRTY_TREE)
    }

    /// The persisted accumulator for one title, if any batch published it.
    pub fn accumulator(&self, software_id: &str) -> CoreResult<Option<AccumulatorRecord>> {
        Ok(self.accumulators.get(&software_id.to_string())?)
    }

    /// Aggregation-engine and read-cache counters.
    pub fn aggregation_stats(&self) -> AggregationStats {
        self.agg_counters.snapshot()
    }

    /// Instant of the last completed batch, if any.
    pub fn last_aggregation(&self) -> CoreResult<Option<Timestamp>> {
        match self.store.get(META_TREE, META_LAST_AGGREGATION) {
            None => Ok(None),
            Some(raw) => Ok(Some(Timestamp(decode_meta_u64(&raw)?))),
        }
    }

    /// Published rating for one software, if a batch has covered it.
    pub fn rating(&self, software_id: &str) -> CoreResult<Option<RatingRecord>> {
        Ok(self.ratings.get(&software_id.to_string())?)
    }

    /// Every published rating, in key (software id) order. The equivalence
    /// harness compares two databases' entire rating tables through this.
    pub fn ratings_snapshot(&self) -> CoreResult<Vec<RatingRecord>> {
        Ok(self.ratings.scan()?.into_iter().map(|(_, r)| r).collect())
    }

    /// The full execution-time report for a software. Memoised: repeated
    /// reads between mutations are served from the report cache instead of
    /// re-deriving comments/remarks/evidence per request.
    pub fn software_report(&self, software_id: &str) -> CoreResult<Option<SoftwareReport>> {
        {
            let cache = self.report_cache.read();
            if let Some(hit) = cache.get(software_id) {
                let out = hit.clone();
                drop(cache);
                self.agg_counters.report_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(out));
            }
        }
        self.agg_counters.report_cache_misses.fetch_add(1, Ordering::Relaxed);
        let Some(software) = self.software(software_id)? else { return Ok(None) };
        let report = SoftwareReport {
            rating: self.rating(software_id)?,
            comments: self.comments_for(software_id)?,
            evidence: self.evidence(software_id)?,
            software,
        };
        let mut cache = self.report_cache.write();
        if cache.len() >= READ_CACHE_CAP {
            cache.clear();
        }
        cache.insert(software_id.to_string(), report.clone());
        Ok(Some(report))
    }

    /// Derived vendor reputation: mean of the vendor's published software
    /// ratings (§3.3). Memoised like
    /// [`software_report`](Self::software_report).
    pub fn vendor_report(&self, vendor: &str) -> CoreResult<VendorReport> {
        {
            let cache = self.vendor_cache.read();
            if let Some(hit) = cache.get(vendor) {
                let out = hit.clone();
                drop(cache);
                self.agg_counters.vendor_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
        }
        self.agg_counters.vendor_cache_misses.fetch_add(1, Ordering::Relaxed);
        let titles = self.software.lookup("software_by_company", vendor.as_bytes())?;
        let mut ratings = Vec::new();
        for software_id in &titles {
            if let Some(r) = self.rating(software_id)? {
                ratings.push(r.rating);
            }
        }
        let report = VendorReport {
            vendor: vendor.to_string(),
            rating: aggregate::vendor_rating(ratings),
            software_count: titles.len() as u64,
        };
        let mut cache = self.vendor_cache.write();
        if cache.len() >= READ_CACHE_CAP {
            cache.clear();
        }
        cache.insert(vendor.to_string(), report.clone());
        Ok(report)
    }

    // -----------------------------------------------------------------
    // Bootstrap (§2.1, second mitigation)
    // -----------------------------------------------------------------

    /// Import external aggregates as seed votes under reserved identities
    /// with [`BOOTSTRAP_SEED_TRUST`]. Creates placeholder software records
    /// for ids the database has not seen.
    pub fn bootstrap(&self, entries: &[BootstrapEntry], now: Timestamp) -> CoreResult<usize> {
        let _write = self.write_gate.lock();
        let mut seeded = 0;
        for entry in entries {
            validate_software_id(&entry.software_id)?;
            let key = entry.software_id.clone();
            if !self.software.contains(&key) {
                self.software.put(
                    &key,
                    &SoftwareRecord {
                        software_id: key.clone(),
                        file_name: String::new(),
                        file_size: 0,
                        company: None,
                        version: None,
                        first_seen: now,
                    },
                )?;
            }
            for vote in expand_entry(entry, now) {
                // Seed identities get a trust record on first use.
                if self.trust.get(&vote.username)?.is_none() {
                    self.trust.put(
                        &vote.username,
                        &TrustRecord {
                            username: vote.username.clone(),
                            trust: BOOTSTRAP_SEED_TRUST,
                            week: now.week_index(),
                            growth_this_week: 0.0,
                        },
                    )?;
                }
                // Same atomic triple as `submit_vote`: vote, reverse
                // index, dirty mark.
                let mut batch = WriteBatch::new();
                batch.put(
                    self.votes.tree(),
                    (vote.software_id.clone(), vote.username.clone()).to_key_bytes(),
                    vote.encode_to_bytes().to_vec(),
                );
                batch.put(
                    self.votes_by_user.tree(),
                    (vote.username.clone(), vote.software_id.clone()).to_key_bytes(),
                    now.encode_to_bytes().to_vec(),
                );
                batch.put(AGG_DIRTY_TREE, vote.software_id.clone().to_key_bytes(), Vec::new());
                self.store.apply(&batch)?;
                self.agg_counters.dirty_marks.fetch_add(1, Ordering::Relaxed);
                seeded += 1;
            }
        }
        Ok(seeded)
    }

    // -----------------------------------------------------------------
    // Pseudonyms (§5 future work: unlinkable membership)
    // -----------------------------------------------------------------

    /// Mark that `username` has drawn their one pseudonym credential.
    /// Fails if it was already drawn — one unlinkable identity per
    /// verified member keeps the §2.1 Sybil economics intact.
    pub fn mark_pseudonym_credential_issued(&self, username: &str) -> CoreResult<()> {
        let _write = self.write_gate.lock();
        let key = username.to_string();
        let mut user =
            self.users.get(&key)?.ok_or_else(|| CoreError::UnknownUser(username.into()))?;
        if !user.activated {
            return Err(CoreError::NotActivated(username.into()));
        }
        if user.pseudonym {
            return Err(CoreError::InvalidInput(
                "pseudonym accounts cannot draw further credentials".into(),
            ));
        }
        if user.pseudonym_credential_issued {
            return Err(CoreError::InvalidInput("pseudonym credential already issued".into()));
        }
        user.pseudonym_credential_issued = true;
        self.users.put(&key, &user)?;
        Ok(())
    }

    /// Create a pseudonym account: no e-mail, activated immediately —
    /// membership was proven by the blind-signed token, whose digest is
    /// recorded to prevent double-spending. The caller (the server layer)
    /// is responsible for verifying the token's signature first.
    pub fn register_pseudonym(
        &self,
        username: &str,
        password: &str,
        token_digest: &str,
        now: Timestamp,
        rng: &mut impl RngCore,
    ) -> CoreResult<()> {
        validate_username(username)?;
        if password.is_empty() {
            return Err(CoreError::InvalidInput("password must not be empty".into()));
        }
        let _write = self.write_gate.lock();
        if self.users.contains(&username.to_string()) {
            return Err(CoreError::DuplicateUsername(username.to_string()));
        }
        if self.store.contains(SPENT_PSEUDONYM_TOKENS_TREE, token_digest.as_bytes()) {
            return Err(CoreError::InvalidInput("pseudonym token already spent".into()));
        }
        let record = UserRecord {
            username: username.to_string(),
            password_hash: PasswordHash::create(password, rng).encode(),
            email_digest: String::new(),
            signed_up: now,
            last_login: now,
            activated: true,
            activation_digest: None,
            pseudonym: true,
            pseudonym_credential_issued: true,
        };
        self.users.put(&username.to_string(), &record)?;
        self.trust.put(&username.to_string(), &TrustEngine::new_user(username, now))?;
        self.store.put(
            SPENT_PSEUDONYM_TOKENS_TREE,
            token_digest.as_bytes().to_vec(),
            Vec::new(),
        )?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Browse & search (the §3 web interface's queries)
    // -----------------------------------------------------------------

    /// Case-insensitive substring search over file names and vendor
    /// names, capped at `limit` results in id order.
    pub fn search_software(&self, query: &str, limit: usize) -> CoreResult<Vec<SoftwareRecord>> {
        let needle = query.to_ascii_lowercase();
        let mut out = Vec::new();
        for (_, record) in self.software.scan()? {
            let hit = record.file_name.to_ascii_lowercase().contains(&needle)
                || record
                    .company
                    .as_deref()
                    .is_some_and(|c| c.to_ascii_lowercase().contains(&needle));
            if hit {
                out.push(record);
                if out.len() == limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// The `limit` best-rated programs (highest first; ties by id).
    pub fn top_rated(&self, limit: usize) -> CoreResult<Vec<RatingRecord>> {
        let mut all: Vec<RatingRecord> = self.ratings.scan()?.into_iter().map(|(_, r)| r).collect();
        all.sort_by(|a, b| {
            b.rating.total_cmp(&a.rating).then_with(|| a.software_id.cmp(&b.software_id))
        });
        all.truncate(limit);
        Ok(all)
    }

    /// The `limit` worst-rated programs (lowest first; ties by id) — the
    /// web interface's warning list.
    pub fn bottom_rated(&self, limit: usize) -> CoreResult<Vec<RatingRecord>> {
        let mut all: Vec<RatingRecord> = self.ratings.scan()?.into_iter().map(|(_, r)| r).collect();
        all.sort_by(|a, b| {
            a.rating.total_cmp(&b.rating).then_with(|| a.software_id.cmp(&b.software_id))
        });
        all.truncate(limit);
        Ok(all)
    }

    /// Deployment-level counters shown on the web front page ("run
    /// statistics", §3.1).
    pub fn deployment_stats(&self) -> DeploymentStats {
        DeploymentStats {
            users: self.users.len() as u64,
            software: self.software.len() as u64,
            votes: self.votes.len() as u64,
            comments: self.comments.len() as u64,
            rated_software: self.ratings.len() as u64,
        }
    }

    // -----------------------------------------------------------------
    // Extensions: analyzer evidence (§5) and rating feeds (§4.2)
    // -----------------------------------------------------------------

    /// Store runtime-analysis evidence for an executable. The latest
    /// analysis wins ("hard evidence on the behaviour for that specific
    /// software", §5); authentication of the analyzer is the server
    /// layer's job.
    pub fn record_evidence(
        &self,
        software_id: &str,
        behaviours: Vec<String>,
        analyzer: &str,
        now: Timestamp,
    ) -> CoreResult<()> {
        if !self.software.contains(&software_id.to_string()) {
            return Err(CoreError::UnknownSoftware(software_id.into()));
        }
        self.evidence.put(
            &software_id.to_string(),
            &EvidenceRecord {
                software_id: software_id.to_string(),
                behaviours,
                analyzer: analyzer.to_string(),
                analyzed_at: now,
            },
        )?;
        self.report_cache.write().remove(software_id);
        Ok(())
    }

    /// The stored evidence for an executable, if any analysis ran.
    pub fn evidence(&self, software_id: &str) -> CoreResult<Option<EvidenceRecord>> {
        Ok(self.evidence.get(&software_id.to_string())?)
    }

    /// Create a rating feed owned by `publisher` (§4.2: organisations
    /// "publish their software ratings … within the reputation system").
    pub fn create_feed(&self, name: &str, publisher: &str, now: Timestamp) -> CoreResult<()> {
        validate_feed_name(name)?;
        self.require_active_user(publisher)?;
        let _write = self.write_gate.lock();
        if self.feeds.contains(&name.to_string()) {
            return Err(CoreError::FeedExists(name.into()));
        }
        self.feeds.put(
            &name.to_string(),
            &FeedRecord {
                name: name.to_string(),
                publisher: publisher.to_string(),
                created_at: now,
            },
        )?;
        Ok(())
    }

    /// Look up a feed.
    pub fn feed(&self, name: &str) -> CoreResult<Option<FeedRecord>> {
        Ok(self.feeds.get(&name.to_string())?)
    }

    /// Publish (or update) a feed's verdict on one executable. Only the
    /// feed's owner may publish — subscribers trust the publisher, so the
    /// server must guarantee provenance.
    pub fn publish_feed_entry(
        &self,
        publisher: &str,
        feed: &str,
        software_id: &str,
        rating: f64,
        behaviours: Vec<String>,
        now: Timestamp,
    ) -> CoreResult<()> {
        self.require_active_user(publisher)?;
        let record = self.feed(feed)?.ok_or_else(|| CoreError::UnknownFeed(feed.to_string()))?;
        if record.publisher != publisher {
            return Err(CoreError::NotFeedOwner { feed: feed.into(), user: publisher.into() });
        }
        if !(1.0..=10.0).contains(&rating) {
            return Err(CoreError::InvalidInput(format!("feed rating {rating} outside 1..=10")));
        }
        if !self.software.contains(&software_id.to_string()) {
            return Err(CoreError::UnknownSoftware(software_id.into()));
        }
        self.feed_entries.put(
            &(feed.to_string(), software_id.to_string()),
            &FeedEntryRecord {
                feed: feed.to_string(),
                software_id: software_id.to_string(),
                rating,
                behaviours,
                published_at: now,
            },
        )?;
        Ok(())
    }

    /// A feed's verdict on one executable, if published.
    pub fn feed_entry(&self, feed: &str, software_id: &str) -> CoreResult<Option<FeedEntryRecord>> {
        Ok(self.feed_entries.get(&(feed.to_string(), software_id.to_string()))?)
    }

    /// Every entry a feed has published, in software-id order.
    pub fn feed_entries(&self, feed: &str) -> CoreResult<Vec<FeedEntryRecord>> {
        let mut out = Vec::new();
        self.feed_entries.for_each_key_prefix(&feed.to_string(), |_, entry| out.push(entry))?;
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Plumbing
    // -----------------------------------------------------------------

    fn next_comment_id(&self) -> CoreResult<u64> {
        let next = match self.store.get(META_TREE, META_NEXT_COMMENT_ID) {
            None => 1,
            Some(raw) => decode_meta_u64(&raw)?,
        };
        self.store.put(
            META_TREE,
            META_NEXT_COMMENT_ID.to_vec(),
            (next + 1).to_be_bytes().to_vec(),
        )?;
        Ok(next)
    }

    /// Storage-level counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

/// Decode a big-endian `u64` meta value without panicking on a short or
/// overlong buffer (a corrupt meta tree must surface as an error, not a
/// crash in the request path).
/// Lock-free counters behind [`ReputationDb::aggregation_stats`].
#[derive(Default)]
struct AggCounters {
    incremental_runs: AtomicU64,
    full_runs: AtomicU64,
    titles_recomputed_incremental: AtomicU64,
    titles_recomputed_full: AtomicU64,
    dirty_marks: AtomicU64,
    report_cache_hits: AtomicU64,
    report_cache_misses: AtomicU64,
    vendor_cache_hits: AtomicU64,
    vendor_cache_misses: AtomicU64,
}

impl AggCounters {
    fn snapshot(&self) -> AggregationStats {
        AggregationStats {
            incremental_runs: self.incremental_runs.load(Ordering::Relaxed),
            full_runs: self.full_runs.load(Ordering::Relaxed),
            titles_recomputed_incremental: self
                .titles_recomputed_incremental
                .load(Ordering::Relaxed),
            titles_recomputed_full: self.titles_recomputed_full.load(Ordering::Relaxed),
            dirty_marks: self.dirty_marks.load(Ordering::Relaxed),
            report_cache_hits: self.report_cache_hits.load(Ordering::Relaxed),
            report_cache_misses: self.report_cache_misses.load(Ordering::Relaxed),
            vendor_cache_hits: self.vendor_cache_hits.load(Ordering::Relaxed),
            vendor_cache_misses: self.vendor_cache_misses.load(Ordering::Relaxed),
        }
    }
}

fn decode_meta_u64(raw: &[u8]) -> CoreResult<u64> {
    let bytes: [u8; 8] = raw.try_into().map_err(|_| {
        CoreError::Storage(softrep_storage::StorageError::Corrupt(format!(
            "meta value is {} bytes, expected 8",
            raw.len()
        )))
    })?;
    Ok(u64::from_be_bytes(bytes))
}

fn validate_username(username: &str) -> CoreResult<()> {
    let ok_chars = username.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if !(3..=32).contains(&username.len()) || !ok_chars {
        return Err(CoreError::InvalidInput("username must be 3–32 chars of [A-Za-z0-9_-]".into()));
    }
    if username.starts_with(BOOTSTRAP_USER_PREFIX) || username.starts_with("__") {
        return Err(CoreError::InvalidInput("usernames starting with __ are reserved".into()));
    }
    Ok(())
}

fn validate_feed_name(name: &str) -> CoreResult<()> {
    let ok_chars = name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
    if !(3..=32).contains(&name.len()) || !ok_chars {
        return Err(CoreError::InvalidInput("feed name must be 3-32 chars of [a-z0-9-]".into()));
    }
    Ok(())
}

fn validate_software_id(software_id: &str) -> CoreResult<()> {
    let is_hex = !software_id.is_empty() && software_id.chars().all(|c| c.is_ascii_hexdigit());
    let ok_len = software_id.len() == 40 || software_id.len() == 64;
    if !is_hex || !ok_len {
        return Err(CoreError::InvalidInput(
            "software id must be a 40- or 64-char hex digest".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{DAY_SECS, WEEK_SECS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn sw_id(tag: u8) -> String {
        format!("{:02x}", tag).repeat(20)
    }

    /// Register + activate a user in one step.
    fn member(db: &ReputationDb, name: &str, now: Timestamp) {
        let token =
            db.register_user(name, "pw", &format!("{name}@example.com"), now, &mut rng()).unwrap();
        db.activate_user(name, &token).unwrap();
    }

    fn db_with_member() -> ReputationDb {
        let db = ReputationDb::in_memory("pepper");
        member(&db, "alice", Timestamp(0));
        db
    }

    #[test]
    fn registration_activation_login_flow() {
        let db = ReputationDb::in_memory("pepper");
        let token = db.register_user("alice", "pw", "a@x.com", Timestamp(0), &mut rng()).unwrap();

        // Login before activation fails.
        assert!(matches!(db.login("alice", "pw", Timestamp(1)), Err(CoreError::NotActivated(_))));
        // Wrong token fails; right token succeeds; idempotent after.
        assert!(matches!(db.activate_user("alice", "wrong"), Err(CoreError::BadActivationToken)));
        db.activate_user("alice", &token).unwrap();
        db.activate_user("alice", &token).unwrap();

        db.login("alice", "pw", Timestamp(5)).unwrap();
        assert!(matches!(db.login("alice", "nope", Timestamp(6)), Err(CoreError::BadCredentials)));
        assert!(matches!(db.login("ghost", "pw", Timestamp(6)), Err(CoreError::BadCredentials)));
        assert_eq!(db.user("alice").unwrap().unwrap().last_login, Timestamp(5));
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 1.0);
    }

    #[test]
    fn duplicate_email_is_rejected_even_with_case_tricks() {
        let db = ReputationDb::in_memory("pepper");
        db.register_user("alice", "pw", "same@x.com", Timestamp(0), &mut rng()).unwrap();
        let err = db.register_user("bob", "pw", " SAME@X.COM ", Timestamp(0), &mut rng());
        assert!(matches!(err, Err(CoreError::DuplicateEmail)));
        assert!(db.email_in_use("same@x.com").unwrap());
        assert!(!db.email_in_use("other@x.com").unwrap());
        // The failed registration left no partial state behind.
        assert!(db.user("bob").unwrap().is_none());
    }

    #[test]
    fn duplicate_username_is_rejected() {
        let db = ReputationDb::in_memory("pepper");
        db.register_user("alice", "pw", "a@x.com", Timestamp(0), &mut rng()).unwrap();
        assert!(matches!(
            db.register_user("alice", "pw", "b@x.com", Timestamp(0), &mut rng()),
            Err(CoreError::DuplicateUsername(_))
        ));
    }

    #[test]
    fn username_validation() {
        let db = ReputationDb::in_memory("pepper");
        let mut r = rng();
        for bad in ["ab", "x".repeat(33).as_str(), "has space", "__bootstrap_1", "__x_y", "emoji😀"]
        {
            assert!(
                matches!(
                    db.register_user(bad, "pw", "e@x.com", Timestamp(0), &mut r),
                    Err(CoreError::InvalidInput(_))
                ),
                "{bad:?} should be rejected"
            );
        }
        db.register_user("ok_name-1", "pw", "ok@x.com", Timestamp(0), &mut r).unwrap();
    }

    #[test]
    fn one_vote_per_user_per_software() {
        let db = db_with_member();
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();
        db.submit_vote("alice", &sw_id(1), 3, vec![], Timestamp(1)).unwrap();
        db.submit_vote("alice", &sw_id(1), 9, vec!["tracking".into()], Timestamp(2)).unwrap();
        assert_eq!(db.vote_count(), 1, "re-voting replaces, never duplicates");
        let vote = db.vote_of("alice", &sw_id(1)).unwrap().unwrap();
        assert_eq!(vote.score, 9);
        assert_eq!(vote.behaviours, vec!["tracking".to_string()]);
    }

    #[test]
    fn votes_require_active_user_known_software_and_legal_score() {
        let db = db_with_member();
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();
        assert!(matches!(
            db.submit_vote("alice", &sw_id(1), 0, vec![], Timestamp(1)),
            Err(CoreError::InvalidScore(0))
        ));
        assert!(matches!(
            db.submit_vote("alice", &sw_id(1), 11, vec![], Timestamp(1)),
            Err(CoreError::InvalidScore(11))
        ));
        assert!(matches!(
            db.submit_vote("ghost", &sw_id(1), 5, vec![], Timestamp(1)),
            Err(CoreError::UnknownUser(_))
        ));
        assert!(matches!(
            db.submit_vote("alice", &sw_id(9), 5, vec![], Timestamp(1)),
            Err(CoreError::UnknownSoftware(_))
        ));

        // Registered but unactivated users cannot vote.
        let mut r = rng();
        db.register_user("newbie", "pw", "n@x.com", Timestamp(0), &mut r).unwrap();
        assert!(matches!(
            db.submit_vote("newbie", &sw_id(1), 5, vec![], Timestamp(1)),
            Err(CoreError::NotActivated(_))
        ));
    }

    #[test]
    fn software_registration_first_report_wins() {
        let db = ReputationDb::in_memory("pepper");
        assert!(db
            .register_software(&sw_id(2), "a.exe", 10, Some("Acme".into()), None, Timestamp(0))
            .unwrap());
        assert!(!db
            .register_software(&sw_id(2), "b.exe", 99, Some("Evil".into()), None, Timestamp(1))
            .unwrap());
        let rec = db.software(&sw_id(2)).unwrap().unwrap();
        assert_eq!(rec.file_name, "a.exe");
        assert_eq!(rec.company.as_deref(), Some("Acme"));
    }

    #[test]
    fn software_id_validation() {
        let db = ReputationDb::in_memory("pepper");
        for bad in ["", "xyz", "12345", &"g".repeat(40)] {
            assert!(db.register_software(bad, "f", 0, None, None, Timestamp(0)).is_err());
        }
        // 64-char (SHA-256) ids are also accepted.
        db.register_software(&"ab".repeat(32), "f", 0, None, None, Timestamp(0)).unwrap();
    }

    #[test]
    fn aggregation_respects_24h_schedule_and_trust() {
        let db = db_with_member();
        member(&db, "expert", Timestamp(0));
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();
        db.submit_vote("alice", &sw_id(1), 10, vec![], Timestamp(10)).unwrap();
        db.submit_vote("expert", &sw_id(1), 2, vec![], Timestamp(10)).unwrap();
        // Give the expert a big trust factor (cap allows +5 in week 0).
        db.adjust_trust("expert", 5.0, Timestamp(20)).unwrap();

        assert_eq!(db.run_aggregation_if_due(Timestamp(100)).unwrap(), 1);
        let r1 = db.rating(&sw_id(1)).unwrap().unwrap();
        // weighted: (10*1 + 2*6) / 7 = 22/7 ≈ 3.14
        assert!((r1.rating - 22.0 / 7.0).abs() < 1e-12);
        assert_eq!(r1.vote_count, 2);

        // Not due again until +24 h; a fresh vote waits in the dirty set
        // until the schedule fires, then is folded in incrementally.
        db.submit_vote("alice", &sw_id(1), 9, vec![], Timestamp(150)).unwrap();
        assert_eq!(db.run_aggregation_if_due(Timestamp(200)).unwrap(), 0);
        assert_eq!(db.dirty_count(), 1);
        assert_eq!(db.run_aggregation_if_due(Timestamp(100 + DAY_SECS)).unwrap(), 1);
        assert_eq!(db.dirty_count(), 0);
        // Nothing dirty → the next due batch recomputes nothing.
        assert_eq!(db.run_aggregation_if_due(Timestamp(100 + 2 * DAY_SECS)).unwrap(), 0);
    }

    #[test]
    fn comments_and_remarks_drive_trust() {
        let db = db_with_member();
        member(&db, "bob", Timestamp(0));
        member(&db, "carol", Timestamp(0));
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();

        let id = db.submit_comment("alice", &sw_id(1), "shows pop-ups", Timestamp(1)).unwrap();
        assert!(matches!(
            db.remark_comment("alice", id, true, Timestamp(2)),
            Err(CoreError::SelfRemark)
        ));

        db.remark_comment("bob", id, true, Timestamp(2)).unwrap();
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 2.0);
        // Idempotent repeat.
        db.remark_comment("bob", id, true, Timestamp(3)).unwrap();
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 2.0);
        assert_eq!(db.remark_score(id).unwrap(), 1);

        db.remark_comment("carol", id, false, Timestamp(4)).unwrap();
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 1.0);
        assert_eq!(db.remark_score(id).unwrap(), 0);

        // Bob flips his remark: -2 relative, floored at 1.
        db.remark_comment("bob", id, false, Timestamp(5)).unwrap();
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 1.0);
        assert_eq!(db.remark_score(id).unwrap(), -2);

        let comments = db.comments_for(&sw_id(1)).unwrap();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].remark_score, -2);
    }

    #[test]
    fn trust_growth_cap_applies_through_remarks() {
        let db = db_with_member();
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();
        let id = db.submit_comment("alice", &sw_id(1), "useful info", Timestamp(1)).unwrap();
        // 20 distinct fans this week — growth still capped at +5.
        for i in 0..20 {
            let fan = format!("fan{i:02}");
            member(&db, &fan, Timestamp(0));
            db.remark_comment(&fan, id, true, Timestamp(10 + i)).unwrap();
        }
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 6.0);
        // Next week another 20 fans: +5 more.
        for i in 20..40 {
            let fan = format!("fan{i:02}");
            member(&db, &fan, Timestamp(0));
            db.remark_comment(&fan, id, true, Timestamp(WEEK_SECS + i)).unwrap();
        }
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 11.0);
    }

    #[test]
    fn moderation_queue_flow() {
        let store = Arc::new(Store::in_memory());
        let db = ReputationDb::with_moderation(
            store,
            SecretPepper::new("p"),
            ModerationPolicy::PreApproval,
        );
        member(&db, "alice", Timestamp(0));
        member(&db, "bob", Timestamp(0));
        db.register_software(&sw_id(1), "app.exe", 100, None, None, Timestamp(0)).unwrap();

        let id = db.submit_comment("alice", &sw_id(1), "pending text", Timestamp(10)).unwrap();
        assert!(db.comments_for(&sw_id(1)).unwrap().is_empty(), "not yet published");
        assert!(matches!(
            db.remark_comment("bob", id, true, Timestamp(11)),
            Err(CoreError::CommentNotPublished(_))
        ));
        assert_eq!(db.pending_comments().unwrap().len(), 1);

        db.moderate_comment(id, ModerationDecision::Approve, Timestamp(100)).unwrap();
        assert_eq!(db.comments_for(&sw_id(1)).unwrap().len(), 1);
        let stats = db.moderation_stats();
        assert_eq!(stats.approved, 1);
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.total_review_latency_secs, 90);

        // Second comment rejected: never visible.
        let id2 = db.submit_comment("alice", &sw_id(1), "spam", Timestamp(200)).unwrap();
        db.moderate_comment(id2, ModerationDecision::Reject, Timestamp(300)).unwrap();
        assert_eq!(db.comments_for(&sw_id(1)).unwrap().len(), 1);
        // Double moderation is invalid.
        assert!(db.moderate_comment(id2, ModerationDecision::Approve, Timestamp(301)).is_err());
    }

    #[test]
    fn vendor_report_averages_software_ratings() {
        let db = db_with_member();
        for (tag, score) in [(1u8, 4u8), (2, 8)] {
            db.register_software(&sw_id(tag), "t.exe", 10, Some("Acme".into()), None, Timestamp(0))
                .unwrap();
            db.submit_vote("alice", &sw_id(tag), score, vec![], Timestamp(1)).unwrap();
        }
        db.register_software(&sw_id(3), "o.exe", 10, Some("Other".into()), None, Timestamp(0))
            .unwrap();
        db.force_aggregation(Timestamp(10)).unwrap();

        let report = db.vendor_report("Acme").unwrap();
        assert_eq!(report.software_count, 2);
        assert_eq!(report.rating.unwrap(), 6.0);

        let unknown = db.vendor_report("Nobody").unwrap();
        assert_eq!(unknown.software_count, 0);
        assert_eq!(unknown.rating, None);
    }

    #[test]
    fn bootstrap_seeds_votes_with_seed_trust() {
        let db = ReputationDb::in_memory("pepper");
        let entries = vec![BootstrapEntry {
            software_id: sw_id(7),
            rating: 8.0,
            vote_count: 25,
            behaviours: vec![],
        }];
        assert_eq!(db.bootstrap(&entries, Timestamp(0)).unwrap(), 25);
        assert_eq!(db.vote_count(), 25);
        assert!(db.software(&sw_id(7)).unwrap().is_some());
        db.force_aggregation(Timestamp(1)).unwrap();
        let rating = db.rating(&sw_id(7)).unwrap().unwrap();
        assert!((rating.rating - 8.0).abs() < 0.05);
        assert_eq!(db.trust_of("__bootstrap_0").unwrap().unwrap(), BOOTSTRAP_SEED_TRUST);
    }

    #[test]
    fn software_report_combines_everything() {
        let db = db_with_member();
        db.register_software(
            &sw_id(1),
            "app.exe",
            10,
            Some("Acme".into()),
            Some("1.0".into()),
            Timestamp(0),
        )
        .unwrap();
        db.submit_vote("alice", &sw_id(1), 7, vec!["popup_ads".into()], Timestamp(1)).unwrap();
        db.submit_comment("alice", &sw_id(1), "it's fine", Timestamp(2)).unwrap();
        db.force_aggregation(Timestamp(3)).unwrap();

        let report = db.software_report(&sw_id(1)).unwrap().unwrap();
        assert_eq!(report.software.file_name, "app.exe");
        assert_eq!(report.rating.as_ref().unwrap().vote_count, 1);
        assert_eq!(report.rating.unwrap().behaviours[0].0, "popup_ads");
        assert_eq!(report.comments.len(), 1);

        assert!(db.software_report(&sw_id(9)).unwrap().is_none());
    }

    #[test]
    fn evidence_records_and_surfaces_in_reports() {
        let db = db_with_member();
        db.register_software(&sw_id(1), "app.exe", 10, None, None, Timestamp(0)).unwrap();
        // Evidence for unknown software is rejected.
        assert!(matches!(
            db.record_evidence(&sw_id(9), vec!["tracking".into()], "sandbox", Timestamp(1)),
            Err(CoreError::UnknownSoftware(_))
        ));
        db.record_evidence(&sw_id(1), vec!["tracking".into()], "sandbox-v1", Timestamp(1)).unwrap();
        let ev = db.evidence(&sw_id(1)).unwrap().unwrap();
        assert_eq!(ev.behaviours, vec!["tracking".to_string()]);
        assert_eq!(ev.analyzer, "sandbox-v1");
        // Latest analysis wins.
        db.record_evidence(&sw_id(1), vec!["popup_ads".into()], "sandbox-v2", Timestamp(2))
            .unwrap();
        let report = db.software_report(&sw_id(1)).unwrap().unwrap();
        assert_eq!(report.evidence.unwrap().behaviours, vec!["popup_ads".to_string()]);
    }

    #[test]
    fn feeds_enforce_ownership_and_validation() {
        let db = db_with_member();
        member(&db, "rival", Timestamp(0));
        db.register_software(&sw_id(1), "app.exe", 10, None, None, Timestamp(0)).unwrap();

        // Name validation.
        assert!(db.create_feed("x", "alice", Timestamp(0)).is_err());
        assert!(db.create_feed("Has Caps", "alice", Timestamp(0)).is_err());
        db.create_feed("av-lab", "alice", Timestamp(0)).unwrap();
        assert!(matches!(
            db.create_feed("av-lab", "rival", Timestamp(0)),
            Err(CoreError::FeedExists(_))
        ));
        assert_eq!(db.feed("av-lab").unwrap().unwrap().publisher, "alice");

        // Only the owner publishes.
        assert!(matches!(
            db.publish_feed_entry("rival", "av-lab", &sw_id(1), 2.0, vec![], Timestamp(1)),
            Err(CoreError::NotFeedOwner { .. })
        ));
        // Rating range enforced.
        assert!(db
            .publish_feed_entry("alice", "av-lab", &sw_id(1), 0.5, vec![], Timestamp(1))
            .is_err());
        assert!(db
            .publish_feed_entry("alice", "av-lab", &sw_id(1), 11.0, vec![], Timestamp(1))
            .is_err());
        // Unknown feed / unknown software.
        assert!(matches!(
            db.publish_feed_entry("alice", "ghost", &sw_id(1), 5.0, vec![], Timestamp(1)),
            Err(CoreError::UnknownFeed(_))
        ));
        assert!(matches!(
            db.publish_feed_entry("alice", "av-lab", &sw_id(9), 5.0, vec![], Timestamp(1)),
            Err(CoreError::UnknownSoftware(_))
        ));

        db.publish_feed_entry(
            "alice",
            "av-lab",
            &sw_id(1),
            2.5,
            vec!["tracking".into()],
            Timestamp(1),
        )
        .unwrap();
        let entry = db.feed_entry("av-lab", &sw_id(1)).unwrap().unwrap();
        assert_eq!(entry.rating, 2.5);
        // Re-publishing replaces.
        db.publish_feed_entry("alice", "av-lab", &sw_id(1), 3.0, vec![], Timestamp(2)).unwrap();
        assert_eq!(db.feed_entry("av-lab", &sw_id(1)).unwrap().unwrap().rating, 3.0);
        assert_eq!(db.feed_entries("av-lab").unwrap().len(), 1);
        assert!(db.feed_entry("av-lab", &sw_id(2)).unwrap().is_none());
    }

    #[test]
    fn search_and_browse_queries() {
        let db = db_with_member();
        db.register_software(
            &sw_id(1),
            "WeatherBar.exe",
            10,
            Some("Acme".into()),
            None,
            Timestamp(0),
        )
        .unwrap();
        db.register_software(&sw_id(2), "codec.exe", 10, Some("BadCo".into()), None, Timestamp(0))
            .unwrap();
        db.register_software(&sw_id(3), "player.exe", 10, Some("Acme".into()), None, Timestamp(0))
            .unwrap();
        db.submit_vote("alice", &sw_id(1), 9, vec![], Timestamp(1)).unwrap();
        db.submit_vote("alice", &sw_id(2), 2, vec![], Timestamp(1)).unwrap();
        db.force_aggregation(Timestamp(2)).unwrap();

        // Case-insensitive search over names and vendors.
        let hits = db.search_software("weather", 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file_name, "WeatherBar.exe");
        assert_eq!(db.search_software("acme", 10).unwrap().len(), 2);
        assert_eq!(db.search_software("acme", 1).unwrap().len(), 1, "limit respected");
        assert!(db.search_software("nothing", 10).unwrap().is_empty());

        // Top/bottom rated.
        let top = db.top_rated(5).unwrap();
        assert_eq!(top[0].software_id, sw_id(1));
        let bottom = db.bottom_rated(5).unwrap();
        assert_eq!(bottom[0].software_id, sw_id(2));

        let stats = db.deployment_stats();
        assert_eq!(stats.users, 1);
        assert_eq!(stats.software, 3);
        assert_eq!(stats.votes, 2);
        assert_eq!(stats.rated_software, 2);
    }

    #[test]
    fn persisted_db_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("softrep-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Arc::new(Store::open(&dir).unwrap());
            let db = ReputationDb::new(store, SecretPepper::new("p"));
            member(&db, "alice", Timestamp(0));
            db.register_software(&sw_id(1), "app.exe", 10, None, None, Timestamp(0)).unwrap();
            db.submit_vote("alice", &sw_id(1), 6, vec![], Timestamp(1)).unwrap();
            db.force_aggregation(Timestamp(2)).unwrap();
            db.store().sync().unwrap();
        }
        let store = Arc::new(Store::open(&dir).unwrap());
        let db = ReputationDb::new(store, SecretPepper::new("p"));
        assert_eq!(db.vote_count(), 1);
        assert_eq!(db.rating(&sw_id(1)).unwrap().unwrap().rating, 6.0);
        db.login("alice", "pw", Timestamp(10)).unwrap();
    }
}
