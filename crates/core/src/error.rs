//! Error type for the reputation system core.

use softrep_storage::StorageError;

/// Any failure raised by the reputation database or its domain logic.
#[derive(Debug)]
pub enum CoreError {
    /// Storage layer failure.
    Storage(StorageError),
    /// The e-mail (by digest) is already bound to an account (§3.2: "it is
    /// possible to sign up only once per e-mail address").
    DuplicateEmail,
    /// The username is already taken.
    DuplicateUsername(String),
    /// No such user.
    UnknownUser(String),
    /// No such software id.
    UnknownSoftware(String),
    /// No such comment id.
    UnknownComment(u64),
    /// Account exists but has not redeemed its activation token.
    NotActivated(String),
    /// Wrong username/password pair.
    BadCredentials,
    /// Wrong or stale activation token.
    BadActivationToken,
    /// Vote score outside 1..=10.
    InvalidScore(u8),
    /// Users may not remark on their own comments.
    SelfRemark,
    /// The comment is not published (pending review or rejected).
    CommentNotPublished(u64),
    /// Free-form validation failure (empty username, oversized text, …).
    InvalidInput(String),
    /// A feed with this name already exists.
    FeedExists(String),
    /// No such feed.
    UnknownFeed(String),
    /// Only the feed's owner may publish into it.
    NotFeedOwner {
        /// The feed.
        feed: String,
        /// The offending user.
        user: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::DuplicateEmail => f.write_str("e-mail address already registered"),
            CoreError::DuplicateUsername(u) => write!(f, "username '{u}' already taken"),
            CoreError::UnknownUser(u) => write!(f, "unknown user '{u}'"),
            CoreError::UnknownSoftware(id) => write!(f, "unknown software '{id}'"),
            CoreError::UnknownComment(id) => write!(f, "unknown comment {id}"),
            CoreError::NotActivated(u) => write!(f, "account '{u}' is not activated"),
            CoreError::BadCredentials => f.write_str("invalid username or password"),
            CoreError::BadActivationToken => f.write_str("invalid activation token"),
            CoreError::InvalidScore(s) => write!(f, "score {s} outside 1..=10"),
            CoreError::SelfRemark => f.write_str("users may not remark on their own comments"),
            CoreError::CommentNotPublished(id) => write!(f, "comment {id} is not published"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::FeedExists(name) => write!(f, "feed '{name}' already exists"),
            CoreError::UnknownFeed(name) => write!(f, "unknown feed '{name}'"),
            CoreError::NotFeedOwner { feed, user } => {
                write!(f, "user '{user}' does not own feed '{feed}'")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        // A unique-index violation on the e-mail index is the domain-level
        // duplicate-email error; everything else passes through.
        match &e {
            StorageError::UniqueViolation { index, .. } if index.contains("email") => {
                CoreError::DuplicateEmail
            }
            _ => CoreError::Storage(e),
        }
    }
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;

/// Machine-readable error codes used on the wire.
impl CoreError {
    /// Stable protocol error code.
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Storage(_) => "storage",
            CoreError::DuplicateEmail => "duplicate-email",
            CoreError::DuplicateUsername(_) => "duplicate-username",
            CoreError::UnknownUser(_) => "unknown-user",
            CoreError::UnknownSoftware(_) => "unknown-software",
            CoreError::UnknownComment(_) => "unknown-comment",
            CoreError::NotActivated(_) => "not-activated",
            CoreError::BadCredentials => "bad-credentials",
            CoreError::BadActivationToken => "bad-activation-token",
            CoreError::InvalidScore(_) => "invalid-score",
            CoreError::SelfRemark => "self-remark",
            CoreError::CommentNotPublished(_) => "comment-not-published",
            CoreError::InvalidInput(_) => "invalid-input",
            CoreError::FeedExists(_) => "feed-exists",
            CoreError::UnknownFeed(_) => "unknown-feed",
            CoreError::NotFeedOwner { .. } => "not-feed-owner",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_unique_violation_maps_to_duplicate_email() {
        let e = CoreError::from(StorageError::UniqueViolation {
            index: "users_by_email".into(),
            key: "ab".into(),
        });
        assert!(matches!(e, CoreError::DuplicateEmail));
    }

    #[test]
    fn other_unique_violations_pass_through() {
        let e = CoreError::from(StorageError::UniqueViolation {
            index: "other_index".into(),
            key: "ab".into(),
        });
        assert!(matches!(e, CoreError::Storage(_)));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes = [
            CoreError::DuplicateEmail.code(),
            CoreError::DuplicateUsername(String::new()).code(),
            CoreError::BadCredentials.code(),
            CoreError::SelfRemark.code(),
            CoreError::InvalidScore(0).code(),
        ];
        let unique: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
    }

    #[test]
    fn display_is_informative() {
        assert!(CoreError::UnknownUser("bob".into()).to_string().contains("bob"));
        assert!(CoreError::InvalidScore(42).to_string().contains("42"));
    }
}
