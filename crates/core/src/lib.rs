#![warn(missing_docs)]

//! The collaborative software reputation system of Boldt et al. (SDM 2007).
//!
//! This crate is the paper's primary contribution: a reputation system in
//! which computer users collaboratively rate the software they run, and the
//! aggregated, trust-weighted ratings guide other users' allow/deny
//! decisions at execution time.
//!
//! Module map (paper section in parentheses):
//!
//! * [`clock`] — simulated and wall-clock time sources; the 24 h
//!   aggregation schedule and weekly trust caps are defined against it.
//! * [`identity`] — software identity: SHA-1/SHA-256 file fingerprints
//!   (§3.3) and the synthetic executable format used across the workspace.
//! * [`model`] — persisted records: users (exactly the privacy-minimal
//!   schema of §3.2), software metadata, votes, comments, remarks, ratings.
//! * [`taxonomy`] — the 3×3 PIS classification of Table 1 and the Table 2
//!   grey-zone transformation.
//! * [`trust`] — user trust factors: minimum 1, maximum 100, growth capped
//!   at +5 per week (§3.2).
//! * [`aggregate`] — trust-weighted rating aggregation on the 24 h batch
//!   schedule, behaviour tallies, and vendor ratings (§3.2–3.3).
//! * [`aggregate_engine`] — the incremental, sharded recompute engine:
//!   dirty-set planning, FNV shard assignment, and the bounded worker
//!   fan-out behind `ReputationDb::force_aggregation_incremental`.
//! * [`bootstrap`] — seeding the database from an existing rating corpus,
//!   the second cold-start mitigation of §2.1.
//! * [`moderation`] — the third mitigation of §2.1: an administrator queue
//!   that verifies comments before publication.
//! * [`extensions`] — the §4.2/§5 extension records: analyzer evidence
//!   and published rating feeds.
//! * [`db`] — [`db::ReputationDb`]: all tables bound to a
//!   `softrep-storage` store, with the domain invariants (one vote per
//!   user/software, unique hashed e-mails, remark dedup) enforced
//!   transactionally.
//! * [`error`] — crate-wide error type.

pub mod aggregate;
pub mod aggregate_engine;
pub mod bootstrap;
pub mod clock;
pub mod db;
pub mod error;
pub mod extensions;
pub mod identity;
pub mod model;
pub mod moderation;
pub mod taxonomy;
pub mod trust;

pub use clock::{SimClock, Timestamp, DAY_SECS, WEEK_SECS};
pub use db::ReputationDb;
pub use error::{CoreError, CoreResult};
pub use identity::{SoftwareId, SyntheticExecutable};
pub use taxonomy::{ConsentLevel, ConsequenceLevel, PisCategory};
pub use trust::{TrustEngine, MAX_TRUST, MIN_TRUST, WEEKLY_TRUST_GROWTH_CAP};
