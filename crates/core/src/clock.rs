//! Time sources for the reputation system.
//!
//! Two of the paper's core mechanisms are defined against wall-clock time:
//! ratings are recomputed "at fixed points in time (currently once in every
//! 24-hour period)" and trust factors may grow by at most 5 units per week
//! (§3.2). The experiments need to compress months of simulated operation
//! into milliseconds, so every component takes a [`Clock`] rather than
//! calling the OS directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Seconds in a day.
pub const DAY_SECS: u64 = 86_400;
/// Seconds in a week.
pub const WEEK_SECS: u64 = 7 * DAY_SECS;

/// A point in time, in seconds since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Seconds since the epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Index of the calendar day containing this instant.
    pub fn day_index(self) -> u64 {
        self.0 / DAY_SECS
    }

    /// Index of the calendar week containing this instant (the unit of the
    /// trust growth cap).
    pub fn week_index(self) -> u64 {
        self.0 / WEEK_SECS
    }

    /// This instant advanced by `secs`.
    pub fn plus_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(secs))
    }

    /// This instant advanced by whole days.
    pub fn plus_days(self, days: u64) -> Timestamp {
        self.plus_secs(days.saturating_mul(DAY_SECS))
    }

    /// This instant advanced by whole weeks.
    pub fn plus_weeks(self, weeks: u64) -> Timestamp {
        self.plus_secs(weeks.saturating_mul(WEEK_SECS))
    }

    /// Seconds elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}d{:02}h", self.day_index(), (self.0 % DAY_SECS) / 3600)
    }
}

/// Anything that can tell the current time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Timestamp;
}

/// A manually-advanced clock shared by every component of a simulation.
///
/// Cloning shares the underlying time cell, so the scenario driver can
/// advance time once and every subsystem observes it.
#[derive(Clone, Default)]
pub struct SimClock {
    current: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        let clock = SimClock::new();
        clock.current.store(start.0, Ordering::SeqCst);
        clock
    }

    /// Advance by `secs` seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.current.fetch_add(secs, Ordering::SeqCst);
    }

    /// Advance by whole days.
    pub fn advance_days(&self, days: u64) {
        self.advance_secs(days * DAY_SECS);
    }

    /// Advance by whole weeks.
    pub fn advance_weeks(&self, weeks: u64) {
        self.advance_secs(weeks * WEEK_SECS);
    }

    /// Jump to an absolute instant (must not move backwards).
    pub fn set(&self, to: Timestamp) {
        debug_assert!(to.0 >= self.current.load(Ordering::SeqCst), "clocks may not run backwards");
        self.current.store(to.0, Ordering::SeqCst);
    }
}

impl SimClock {
    /// The current instant (inherent mirror of [`Clock::now`], so callers
    /// don't need the trait in scope).
    pub fn now(&self) -> Timestamp {
        Timestamp(self.current.load(Ordering::SeqCst))
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        SimClock::now(self)
    }
}

/// The operating system clock, for real deployments of the server binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Timestamp(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::ZERO.plus_days(10).plus_secs(3_600);
        assert_eq!(t.day_index(), 10);
        assert_eq!(t.week_index(), 1);
        assert_eq!(t.since(Timestamp::ZERO), 10 * DAY_SECS + 3_600);
        assert_eq!(Timestamp::ZERO.since(t), 0, "since saturates");
    }

    #[test]
    fn week_boundaries() {
        assert_eq!(Timestamp(WEEK_SECS - 1).week_index(), 0);
        assert_eq!(Timestamp(WEEK_SECS).week_index(), 1);
        assert_eq!(Timestamp::ZERO.plus_weeks(3).week_index(), 3);
    }

    #[test]
    fn sim_clock_is_shared_between_clones() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_days(2);
        assert_eq!(b.now().day_index(), 2);
        b.advance_weeks(1);
        assert_eq!(a.now(), Timestamp(9 * DAY_SECS));
    }

    #[test]
    fn sim_clock_starting_at() {
        let c = SimClock::starting_at(Timestamp(500));
        assert_eq!(c.now(), Timestamp(500));
        c.set(Timestamp(700));
        assert_eq!(c.now().secs(), 700);
    }

    #[test]
    fn system_clock_is_sane() {
        // Anything after 2020-01-01 counts as sane for this check.
        assert!(SystemClock.now().secs() > 1_577_836_800);
    }

    #[test]
    fn display_formats_day_and_hour() {
        let t = Timestamp::ZERO.plus_days(3).plus_secs(2 * 3600);
        assert_eq!(t.to_string(), "t+3d02h");
    }
}
