//! Bootstrapping the program database — the second mitigation of §2.1.
//!
//! "The second approach is to use bootstrapping of the program database at
//! an early stage … copying the information from an existing, more or less
//! reliable, software rating database … That way, it would be possible to
//! ensure that no common program has few or zero votes, and in the event of
//! novice users giving the software unfair positive or negative ratings …
//! the number of existing votes would make their votes one out of many."
//!
//! A [`BootstrapEntry`] carries an external aggregate (rating + vote
//! count); [`expand_entry`] converts it into concrete seed votes cast by
//! reserved `__bootstrap_N` identities, because the reputation database
//! only understands votes. The expansion is deterministic and its mean is
//! the closest achievable integer-score mixture to the imported rating.

use crate::clock::Timestamp;
use crate::model::{VoteRecord, MAX_SCORE, MIN_SCORE};

/// Prefix of the reserved seed identities. Real usernames are validated
/// against starting with `__`, so these can never collide with a member.
pub const BOOTSTRAP_USER_PREFIX: &str = "__bootstrap_";

/// One row imported from an external rating database.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapEntry {
    /// Hex software id the rating applies to.
    pub software_id: String,
    /// Imported aggregate rating (1.0–10.0).
    pub rating: f64,
    /// Number of seed votes to materialise.
    pub vote_count: u32,
    /// Behaviours the external source reported, copied onto every seed
    /// vote so behaviour tallies are also bootstrapped.
    pub behaviours: Vec<String>,
}

/// Deterministically expand an entry into seed votes whose unweighted mean
/// is as close to `entry.rating` as integer scores allow.
///
/// With target rating `r` and `n` votes, the expansion uses scores
/// `floor(r)` and `floor(r)+1` in the unique mixture whose mean is nearest
/// `r`. Returns an empty vector for `vote_count == 0`.
pub fn expand_entry(entry: &BootstrapEntry, now: Timestamp) -> Vec<VoteRecord> {
    let n = entry.vote_count as usize;
    if n == 0 {
        return Vec::new();
    }
    let r = entry.rating.clamp(f64::from(MIN_SCORE), f64::from(MAX_SCORE));
    let lo = (r.floor() as u8).clamp(MIN_SCORE, MAX_SCORE);
    let hi = (lo + 1).min(MAX_SCORE);
    // Number of `hi` votes that brings the mean closest to r.
    let hi_count = if hi == lo { 0 } else { ((r - f64::from(lo)) * n as f64).round() as usize };
    let hi_count = hi_count.min(n);

    (0..n)
        .map(|i| VoteRecord {
            username: format!("{BOOTSTRAP_USER_PREFIX}{i}"),
            software_id: entry.software_id.clone(),
            score: if i < hi_count { hi } else { lo },
            behaviours: entry.behaviours.clone(),
            cast_at: now,
        })
        .collect()
}

/// True if `username` is a reserved bootstrap identity.
pub fn is_bootstrap_user(username: &str) -> bool {
    username.starts_with(BOOTSTRAP_USER_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::unweighted_mean;
    use proptest::prelude::*;

    fn entry(rating: f64, votes: u32) -> BootstrapEntry {
        BootstrapEntry {
            software_id: "ab".repeat(20),
            rating,
            vote_count: votes,
            behaviours: vec!["popup_ads".into()],
        }
    }

    #[test]
    fn expansion_mean_approximates_rating() {
        for rating in [1.0, 2.5, 6.8, 7.25, 9.99, 10.0] {
            let votes = expand_entry(&entry(rating, 40), Timestamp(0));
            let mean = unweighted_mean(votes.iter().map(|v| v.score)).unwrap();
            assert!(
                (mean - rating).abs() <= 0.5 / 40.0 + 0.025 + 1e-9,
                "rating {rating} produced mean {mean}"
            );
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = expand_entry(&entry(6.8, 25), Timestamp(5));
        let b = expand_entry(&entry(6.8, 25), Timestamp(5));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_votes_expand_to_nothing() {
        assert!(expand_entry(&entry(5.0, 0), Timestamp(0)).is_empty());
    }

    #[test]
    fn out_of_range_ratings_are_clamped() {
        let votes = expand_entry(&entry(15.0, 10), Timestamp(0));
        assert!(votes.iter().all(|v| v.score == 10));
        let votes = expand_entry(&entry(-3.0, 10), Timestamp(0));
        assert!(votes.iter().all(|v| v.score == 1));
    }

    #[test]
    fn seed_identities_are_reserved() {
        let votes = expand_entry(&entry(5.0, 3), Timestamp(0));
        for v in &votes {
            assert!(is_bootstrap_user(&v.username));
        }
        assert!(!is_bootstrap_user("alice"));
        assert!(!is_bootstrap_user("bootstrap_fan"));
    }

    #[test]
    fn behaviours_are_copied_to_every_seed_vote() {
        let votes = expand_entry(&entry(4.0, 5), Timestamp(0));
        assert!(votes.iter().all(|v| v.behaviours == vec!["popup_ads".to_string()]));
    }

    proptest! {
        #[test]
        fn all_scores_legal_and_mean_close(rating in 1.0f64..=10.0, n in 1u32..200) {
            let votes = expand_entry(&entry(rating, n), Timestamp(0));
            prop_assert_eq!(votes.len(), n as usize);
            for v in &votes {
                prop_assert!((MIN_SCORE..=MAX_SCORE).contains(&v.score));
            }
            let mean = unweighted_mean(votes.iter().map(|v| v.score)).unwrap();
            // Mixture granularity is 1/n.
            prop_assert!((mean - rating).abs() <= 0.5 / n as f64 + 0.5 + 1e-9);
            prop_assert!((mean - rating).abs() <= 1.0, "never off by a whole unit");
        }
    }
}
