//! The incremental, sharded aggregation engine.
//!
//! The paper recomputes every software rating in one 24 h batch (§3.2).
//! That full scan is the reference semantics — [`crate::aggregate`] stays
//! bit-for-bit faithful to it — but it makes one hot title as expensive as
//! re-averaging the whole catalogue. This module holds the pure machinery
//! behind [`crate::db::ReputationDb::force_aggregation_incremental`]:
//!
//! * a **dirty set**: every mutation that can change a published rating
//!   (vote submission, trust adjustment — which dirties every title that
//!   user voted on — bootstrap seeding, moderation) marks the affected
//!   software ids; the batch then recomputes *only* those titles;
//! * a **shard plan**: dirty ids are hashed (FNV-1a) into a fixed number
//!   of shards so independent titles can be recomputed in parallel;
//! * a **bounded worker pool**: [`run_sharded`] fans shards out over a
//!   small set of scoped threads and returns results in deterministic
//!   shard-then-title order.
//!
//! Equivalence argument (DESIGN.md §9): a published rating depends only on
//! the title's vote set and its voters' trust factors. Both inputs are
//! covered by the dirty rules, so a title absent from the dirty set has a
//! stored rating identical to what the full batch would recompute; for a
//! dirty title the engine calls the *same* [`crate::aggregate`] functions
//! over the same vote scan order, so the recomputed record is bit-identical
//! to the full path's. `tests/properties.rs` checks this with randomized
//! workloads; `tests/golden_aggregation.rs` pins a 10 000-vote scenario.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hash shards the dirty set is partitioned into.
pub const DEFAULT_SHARDS: usize = 16;

/// Worker threads recomputing shards in parallel. Deliberately small: the
/// batch is background work and must not starve the request path.
pub const DEFAULT_WORKERS: usize = 4;

/// FNV-1a 64-bit hash — stable across platforms and runs, so shard
/// assignment (and therefore recompute order) is deterministic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard a software id belongs to (`shards` must be nonzero).
pub fn shard_of(software_id: &str, shards: usize) -> usize {
    (fnv1a(software_id.as_bytes()) % shards.max(1) as u64) as usize
}

/// Partition `ids` into `shards` buckets by [`shard_of`], preserving the
/// input order inside each bucket. Empty buckets are kept so shard indices
/// stay stable.
pub fn plan_shards(ids: impl IntoIterator<Item = String>, shards: usize) -> Vec<Vec<String>> {
    let shards = shards.max(1);
    let mut plan: Vec<Vec<String>> = (0..shards).map(|_| Vec::new()).collect();
    for id in ids {
        let slot = shard_of(&id, shards);
        if let Some(bucket) = plan.get_mut(slot) {
            bucket.push(id);
        }
    }
    plan
}

/// Recompute every title in `plan` by calling `recompute` on a pool of at
/// most `workers` scoped threads (one shard is the unit of work; workers
/// pull shards from a shared cursor). Results come back flattened in
/// shard-then-title order regardless of scheduling, so callers observe a
/// deterministic write order.
pub fn run_sharded<T, F>(plan: &[Vec<String>], workers: usize, recompute: F) -> Vec<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let workers = workers.clamp(1, plan.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Vec<T>>> =
        (0..plan.len()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(ids) = plan.get(shard) else { break };
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    if let Some(record) = recompute(id) {
                        out.push(record);
                    }
                }
                if let Some(slot) = slots.get(shard) {
                    *slot.lock() = out;
                }
            });
        }
    });

    let mut flat = Vec::new();
    for slot in slots {
        flat.extend(slot.into_inner());
    }
    flat
}

/// Point-in-time view of the engine's counters (held by
/// [`crate::db::ReputationDb`], mirrored into `server::stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregationStats {
    /// Incremental batches run (including no-op runs with an empty set).
    pub incremental_runs: u64,
    /// Full (paper-faithful) batches run.
    pub full_runs: u64,
    /// Titles recomputed by incremental batches.
    pub titles_recomputed_incremental: u64,
    /// Titles recomputed by full batches.
    pub titles_recomputed_full: u64,
    /// Software ids marked dirty (one count per mark, including re-marks).
    pub dirty_marks: u64,
    /// Software-report cache hits.
    pub report_cache_hits: u64,
    /// Software-report cache misses (report derived from storage).
    pub report_cache_misses: u64,
    /// Vendor-report cache hits.
    pub vendor_cache_hits: u64,
    /// Vendor-report cache misses.
    pub vendor_cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for id in ["aa", "bb", "cc", "dd"] {
            let s = shard_of(id, DEFAULT_SHARDS);
            assert!(s < DEFAULT_SHARDS);
            assert_eq!(s, shard_of(id, DEFAULT_SHARDS), "stable across calls");
        }
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("anything", 0), 0, "zero shard count is clamped");
    }

    #[test]
    fn plan_preserves_order_within_shards_and_covers_all_ids() {
        let ids: Vec<String> = (0..100).map(|i| format!("{i:040x}")).collect();
        let plan = plan_shards(ids.clone(), DEFAULT_SHARDS);
        assert_eq!(plan.len(), DEFAULT_SHARDS);
        let mut seen: Vec<String> = plan.iter().flatten().cloned().collect();
        assert_eq!(seen.len(), 100, "no id lost or duplicated");
        seen.sort();
        let mut want = ids;
        want.sort();
        assert_eq!(seen, want);
        for (shard, bucket) in plan.iter().enumerate() {
            for id in bucket {
                assert_eq!(shard_of(id, DEFAULT_SHARDS), shard);
            }
            // Input order (numeric here) survives inside each bucket.
            let mut sorted = bucket.clone();
            sorted.sort();
            assert_eq!(&sorted, bucket);
        }
    }

    #[test]
    fn run_sharded_returns_deterministic_order() {
        let ids: Vec<String> = (0..64).map(|i| format!("{i:040x}")).collect();
        let plan = plan_shards(ids, DEFAULT_SHARDS);
        let once = run_sharded(&plan, 4, |id| Some(id.to_string()));
        for workers in [1, 2, 8] {
            let again = run_sharded(&plan, workers, |id| Some(id.to_string()));
            assert_eq!(once, again, "order independent of worker count");
        }
        let flat: Vec<String> = plan.iter().flatten().cloned().collect();
        assert_eq!(once, flat, "shard-then-title order");
    }

    #[test]
    fn run_sharded_drops_none_results() {
        let plan = plan_shards((0..10).map(|i| format!("{i:040x}")), 4);
        let kept = run_sharded(&plan, 2, |id| id.ends_with('3').then(|| id.to_string()));
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn run_sharded_handles_empty_plan() {
        let plan: Vec<Vec<String>> = Vec::new();
        let out: Vec<String> = run_sharded(&plan, 4, |id| Some(id.to_string()));
        assert!(out.is_empty());
    }
}
