//! Persisted domain records and their binary codecs.
//!
//! The user record is deliberately *exactly* the schema §3.2 enumerates:
//! "a username, hashed password and a hashed e-mail address, as well as
//! timestamps of when the user signed up, and was last logged in" (plus the
//! activation state the registration flow needs before the account becomes
//! usable). No IP address, no plaintext e-mail — DESIGN.md invariant 4, and
//! the subject of experiment D8.

use softrep_storage::codec::{get_seq, put_seq, Decode, Encode, Reader, Writer};
use softrep_storage::error::{StorageError, StorageResult};

use crate::clock::Timestamp;

impl Encode for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
}
impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Timestamp(r.get_varint()?))
    }
}

/// A registered account. See module docs for the privacy rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRecord {
    /// Unique username — the only identity stored.
    pub username: String,
    /// Salted, iterated password hash (see `softrep_crypto::salted`),
    /// serialised in its text form.
    pub password_hash: String,
    /// Peppered e-mail digest, hex form; unique across accounts.
    pub email_digest: String,
    /// Signup instant.
    pub signed_up: Timestamp,
    /// Most recent login instant.
    pub last_login: Timestamp,
    /// Accounts start deactivated until the e-mailed token is redeemed.
    pub activated: bool,
    /// Pending activation token digest (cleared on activation). Stored
    /// hashed so a database breach cannot activate accounts.
    pub activation_digest: Option<String>,
    /// True for unlinkable pseudonym accounts (§5): no e-mail digest is
    /// stored and membership was proven by a blind-signed token instead.
    pub pseudonym: bool,
    /// Has this member already drawn their pseudonym credential? (One
    /// credential per verified member keeps Sybil economics intact.)
    pub pseudonym_credential_issued: bool,
}

impl Encode for UserRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.username);
        w.put_str(&self.password_hash);
        w.put_str(&self.email_digest);
        self.signed_up.encode(w);
        self.last_login.encode(w);
        w.put_bool(self.activated);
        self.activation_digest.encode(w);
        w.put_bool(self.pseudonym);
        w.put_bool(self.pseudonym_credential_issued);
    }
}

impl Decode for UserRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(UserRecord {
            username: r.get_str()?,
            password_hash: r.get_str()?,
            email_digest: r.get_str()?,
            signed_up: Timestamp::decode(r)?,
            last_login: Timestamp::decode(r)?,
            activated: r.get_bool()?,
            activation_digest: Option::decode(r)?,
            pseudonym: r.get_bool()?,
            pseudonym_credential_issued: r.get_bool()?,
        })
    }
}

/// Metadata for one executable, keyed by its content digest (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareRecord {
    /// Hex software ID (also the table key).
    pub software_id: String,
    /// Executable file name.
    pub file_name: String,
    /// File size in bytes.
    pub file_size: u64,
    /// Company name embedded in the binary, if present.
    pub company: Option<String>,
    /// Version string embedded in the binary, if present.
    pub version: Option<String>,
    /// When the server first learned of this executable.
    pub first_seen: Timestamp,
}

impl Encode for SoftwareRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.software_id);
        w.put_str(&self.file_name);
        w.put_varint(self.file_size);
        self.company.encode(w);
        self.version.encode(w);
        self.first_seen.encode(w);
    }
}

impl Decode for SoftwareRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(SoftwareRecord {
            software_id: r.get_str()?,
            file_name: r.get_str()?,
            file_size: r.get_varint()?,
            company: Option::decode(r)?,
            version: Option::decode(r)?,
            first_seen: Timestamp::decode(r)?,
        })
    }
}

/// Lowest and highest legal scores (§1: "grading it between 1 and 10").
pub const MIN_SCORE: u8 = 1;
/// See [`MIN_SCORE`].
pub const MAX_SCORE: u8 = 10;

/// One user's vote on one executable. Keyed by `(software_id, username)`,
/// which structurally enforces one vote per user per software — re-voting
/// overwrites (invariant 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRecord {
    /// Voting user.
    pub username: String,
    /// Target software (hex id).
    pub software_id: String,
    /// Score in `MIN_SCORE..=MAX_SCORE`.
    pub score: u8,
    /// Behaviours the voter observed (`popup_ads`, `tracking`, …).
    pub behaviours: Vec<String>,
    /// Submission instant.
    pub cast_at: Timestamp,
}

impl Encode for VoteRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.username);
        w.put_str(&self.software_id);
        w.put_u8(self.score);
        put_seq(w, &self.behaviours);
        self.cast_at.encode(w);
    }
}

impl Decode for VoteRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let rec = VoteRecord {
            username: r.get_str()?,
            software_id: r.get_str()?,
            score: r.get_u8()?,
            behaviours: get_seq(r)?,
            cast_at: Timestamp::decode(r)?,
        };
        if !(MIN_SCORE..=MAX_SCORE).contains(&rec.score) {
            return Err(StorageError::Decode(format!("vote score {} out of range", rec.score)));
        }
        Ok(rec)
    }
}

/// Publication state of a comment (see [`crate::moderation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentStatus {
    /// Visible to all users.
    Published,
    /// Awaiting administrator review.
    PendingReview,
    /// Rejected by an administrator.
    Rejected,
}

impl Encode for CommentStatus {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            CommentStatus::Published => 0,
            CommentStatus::PendingReview => 1,
            CommentStatus::Rejected => 2,
        });
    }
}

impl Decode for CommentStatus {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        match r.get_u8()? {
            0 => Ok(CommentStatus::Published),
            1 => Ok(CommentStatus::PendingReview),
            2 => Ok(CommentStatus::Rejected),
            other => Err(StorageError::Decode(format!("invalid comment status {other}"))),
        }
    }
}

/// A free-text comment on an executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommentRecord {
    /// Server-assigned id.
    pub id: u64,
    /// Author username.
    pub author: String,
    /// Target software (hex id).
    pub software_id: String,
    /// Comment text.
    pub text: String,
    /// Submission instant.
    pub written_at: Timestamp,
    /// Publication state.
    pub status: CommentStatus,
}

impl Encode for CommentRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.id);
        w.put_str(&self.author);
        w.put_str(&self.software_id);
        w.put_str(&self.text);
        self.written_at.encode(w);
        self.status.encode(w);
    }
}

impl Decode for CommentRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(CommentRecord {
            id: r.get_varint()?,
            author: r.get_str()?,
            software_id: r.get_str()?,
            text: r.get_str()?,
            written_at: Timestamp::decode(r)?,
            status: CommentStatus::decode(r)?,
        })
    }
}

/// A remark on a comment: "positive for a good, clear and useful comment or
/// negative for a coloured, non-sense or meaningless comment" (§3.2).
/// Keyed by `(comment_id, rater)`: one remark per user per comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemarkRecord {
    /// Remarking user.
    pub rater: String,
    /// Target comment.
    pub comment_id: u64,
    /// Positive or negative.
    pub positive: bool,
    /// Submission instant.
    pub made_at: Timestamp,
}

impl Encode for RemarkRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.rater);
        w.put_varint(self.comment_id);
        w.put_bool(self.positive);
        self.made_at.encode(w);
    }
}

impl Decode for RemarkRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(RemarkRecord {
            rater: r.get_str()?,
            comment_id: r.get_varint()?,
            positive: r.get_bool()?,
            made_at: Timestamp::decode(r)?,
        })
    }
}

/// The published aggregate rating of one executable, recomputed by the
/// 24 h batch job (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct RatingRecord {
    /// Target software (hex id).
    pub software_id: String,
    /// Trust-weighted mean score, 1.0–10.0.
    pub rating: f64,
    /// Number of votes aggregated.
    pub vote_count: u64,
    /// Sum of voter trust weights (the rating's evidence mass).
    pub trust_mass: f64,
    /// Behaviours reported by voters, with report counts, most-reported
    /// first.
    pub behaviours: Vec<(String, u64)>,
    /// When the batch job produced this record.
    pub computed_at: Timestamp,
}

impl Encode for RatingRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.software_id);
        w.put_f64(self.rating);
        w.put_varint(self.vote_count);
        w.put_f64(self.trust_mass);
        put_seq(w, &self.behaviours);
        self.computed_at.encode(w);
    }
}

impl Decode for RatingRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(RatingRecord {
            software_id: r.get_str()?,
            rating: r.get_f64()?,
            vote_count: r.get_varint()?,
            trust_mass: r.get_f64()?,
            behaviours: get_seq(r)?,
            computed_at: Timestamp::decode(r)?,
        })
    }
}

impl RatingRecord {
    /// Canonical encoding of the rating's *mathematical* content —
    /// everything except `computed_at`, which records when a batch touched
    /// the record, not what it computed. The incremental engine leaves
    /// untouched titles with their original timestamp while the full batch
    /// re-stamps everything, so the equivalence harness
    /// (`tests/properties.rs`, `tests/golden_aggregation.rs`) compares
    /// these bytes: bit-exact on `rating`, `vote_count`, `trust_mass` and
    /// the behaviour tallies.
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut normalized = self.clone();
        normalized.computed_at = Timestamp(0);
        normalized.encode_to_bytes().to_vec()
    }
}

/// Persisted per-software aggregation accumulators: the running
/// `(Σ w·s, Σ w)` pair behind the published rating, maintained by both
/// aggregation paths. A restart reloads these (and the published
/// [`RatingRecord`]s) instead of forcing a cold full scan of every vote.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulatorRecord {
    /// Target software (hex id, also the table key).
    pub software_id: String,
    /// Σ (trust weight × score) over the title's votes.
    pub score_mass: f64,
    /// Σ trust weight over the title's votes.
    pub weight_mass: f64,
    /// Number of votes folded into the masses.
    pub vote_count: u64,
    /// Batch instant that last refreshed this accumulator.
    pub updated_at: Timestamp,
}

impl Encode for AccumulatorRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.software_id);
        w.put_f64(self.score_mass);
        w.put_f64(self.weight_mass);
        w.put_varint(self.vote_count);
        self.updated_at.encode(w);
    }
}

impl Decode for AccumulatorRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(AccumulatorRecord {
            software_id: r.get_str()?,
            score_mass: r.get_f64()?,
            weight_mass: r.get_f64()?,
            vote_count: r.get_varint()?,
            updated_at: Timestamp::decode(r)?,
        })
    }
}

/// Per-user trust state (see [`crate::trust`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrustRecord {
    /// Username.
    pub username: String,
    /// Current trust factor in `[MIN_TRUST, MAX_TRUST]`.
    pub trust: f64,
    /// Week index of the growth-accounting window.
    pub week: u64,
    /// Growth already consumed inside `week`.
    pub growth_this_week: f64,
}

impl Encode for TrustRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.username);
        w.put_f64(self.trust);
        w.put_varint(self.week);
        w.put_f64(self.growth_this_week);
    }
}

impl Decode for TrustRecord {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(TrustRecord {
            username: r.get_str()?,
            trust: r.get_f64()?,
            week: r.get_varint()?,
            growth_this_week: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn user_record_roundtrip() {
        let rec = UserRecord {
            username: "alice".into(),
            password_hash: "1000$ab$cd".into(),
            email_digest: "ff".repeat(32),
            signed_up: Timestamp(100),
            last_login: Timestamp(200),
            activated: true,
            activation_digest: None,
            pseudonym: false,
            pseudonym_credential_issued: true,
        };
        assert_eq!(UserRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
    }

    #[test]
    fn user_record_schema_is_privacy_minimal() {
        // Compile-time-ish check that the record carries no IP/e-mail
        // field: construct from the full field list.
        let rec = UserRecord {
            username: String::new(),
            password_hash: String::new(),
            email_digest: String::new(),
            signed_up: Timestamp::ZERO,
            last_login: Timestamp::ZERO,
            activated: false,
            activation_digest: Some(String::new()),
            pseudonym: false,
            pseudonym_credential_issued: false,
        };
        // Encoded form must not exceed the fields above (no hidden state).
        let bytes = rec.encode_to_bytes();
        assert!(bytes.len() < 32, "record is exactly the §3.2 schema");
    }

    #[test]
    fn vote_record_rejects_out_of_range_scores() {
        let mut rec = VoteRecord {
            username: "u".into(),
            software_id: "s".into(),
            score: 5,
            behaviours: vec!["popup_ads".into()],
            cast_at: Timestamp(1),
        };
        let ok = rec.encode_to_bytes();
        assert!(VoteRecord::decode_from_bytes(&ok).is_ok());

        rec.score = 0;
        assert!(VoteRecord::decode_from_bytes(&rec.encode_to_bytes()).is_err());
        rec.score = 11;
        assert!(VoteRecord::decode_from_bytes(&rec.encode_to_bytes()).is_err());
    }

    #[test]
    fn comment_statuses_roundtrip() {
        for status in
            [CommentStatus::Published, CommentStatus::PendingReview, CommentStatus::Rejected]
        {
            let rec = CommentRecord {
                id: 7,
                author: "a".into(),
                software_id: "s".into(),
                text: "useful".into(),
                written_at: Timestamp(9),
                status,
            };
            assert_eq!(CommentRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }
    }

    #[test]
    fn rating_record_roundtrip() {
        let rec = RatingRecord {
            software_id: "abc".into(),
            rating: 7.25,
            vote_count: 42,
            trust_mass: 99.5,
            behaviours: vec![("popup_ads".into(), 12), ("tracking".into(), 3)],
            computed_at: Timestamp(86_400),
        };
        assert_eq!(RatingRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
    }

    #[test]
    fn rating_content_bytes_ignore_only_computed_at() {
        let rec = RatingRecord {
            software_id: "abc".into(),
            rating: 7.25,
            vote_count: 42,
            trust_mass: 99.5,
            behaviours: vec![("popup_ads".into(), 12)],
            computed_at: Timestamp(86_400),
        };
        let restamped = RatingRecord { computed_at: Timestamp(999), ..rec.clone() };
        assert_eq!(rec.content_bytes(), restamped.content_bytes());
        let drifted = RatingRecord { rating: 7.25 + f64::EPSILON * 8.0, ..rec.clone() };
        assert_ne!(rec.content_bytes(), drifted.content_bytes(), "one ulp of drift is caught");
        let fewer = RatingRecord { vote_count: 41, ..rec };
        assert_ne!(fewer.content_bytes(), restamped.content_bytes());
    }

    #[test]
    fn accumulator_roundtrip() {
        let rec = AccumulatorRecord {
            software_id: "ab".repeat(20),
            score_mass: 123.456,
            weight_mass: 41.0,
            vote_count: 17,
            updated_at: Timestamp(86_400 * 3),
        };
        assert_eq!(AccumulatorRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
    }

    proptest! {
        #[test]
        fn vote_roundtrip(
            user in "[a-z]{1,10}",
            sw in "[0-9a-f]{40}",
            score in 1u8..=10,
            behaviours in proptest::collection::vec("[a-z_]{1,12}", 0..4),
            ts in 0u64..1_000_000,
        ) {
            let rec = VoteRecord {
                username: user, software_id: sw, score, behaviours, cast_at: Timestamp(ts),
            };
            prop_assert_eq!(VoteRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }

        #[test]
        fn remark_roundtrip(rater in "[a-z]{1,10}", id: u64, positive: bool, ts: u64) {
            let rec = RemarkRecord { rater, comment_id: id, positive, made_at: Timestamp(ts) };
            prop_assert_eq!(RemarkRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }

        #[test]
        fn trust_roundtrip(user in "[a-z]{1,10}", trust in 1.0f64..100.0, week: u64, growth in 0.0f64..5.0) {
            let rec = TrustRecord { username: user, trust, week, growth_this_week: growth };
            prop_assert_eq!(TrustRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }

        #[test]
        fn software_roundtrip(
            id in "[0-9a-f]{40}",
            name in "[a-z0-9_.]{1,16}",
            size: u64,
            company in proptest::option::of("[A-Za-z ]{1,12}"),
            version in proptest::option::of("[0-9.]{1,6}"),
        ) {
            let rec = SoftwareRecord {
                software_id: id, file_name: name, file_size: size,
                company, version, first_seen: Timestamp(7),
            };
            prop_assert_eq!(SoftwareRecord::decode_from_bytes(&rec.encode_to_bytes()).unwrap(), rec);
        }
    }
}
