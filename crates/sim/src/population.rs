//! User archetypes and their behaviour models.
//!
//! §2.1 worries about "ignorant users voting and leaving feedback on
//! programs they know nothing or little about" and relies on "more
//! experienced users" to counterbalance them. The population model makes
//! that spectrum concrete: each archetype perceives a program's true
//! quality through its own noise and bias, writes comments of its own
//! quality, and remarks on others' comments with its own discernment.

use rand::Rng;

use crate::universe::SoftwareSpec;

/// The user archetypes of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Security-savvy: near-truth perception, useful comments, accurate
    /// remarks.
    Expert,
    /// Ordinary user: moderate noise, generally sensible.
    Average,
    /// Inexperienced: high noise, positivity bias.
    Novice,
    /// §2.1's problem case: barely looks at the program, loves free
    /// stuff — "give the installer of a program bundled with many
    /// different PIS a high rating, commenting that it is a great free and
    /// highly recommended program".
    Ignorant,
}

impl Archetype {
    /// Perception noise (± range around truth).
    pub fn noise(self) -> f64 {
        match self {
            Archetype::Expert => 0.5,
            Archetype::Average => 1.5,
            Archetype::Novice => 2.5,
            Archetype::Ignorant => 3.0,
        }
    }

    /// Additive positivity bias.
    pub fn bias(self) -> f64 {
        match self {
            Archetype::Expert => 0.0,
            Archetype::Average => 0.3,
            Archetype::Novice => 1.0,
            Archetype::Ignorant => 3.5,
        }
    }

    /// Probability a comment by this archetype is useful (vs junk).
    pub fn comment_usefulness(self) -> f64 {
        match self {
            Archetype::Expert => 0.95,
            Archetype::Average => 0.7,
            Archetype::Novice => 0.35,
            Archetype::Ignorant => 0.1,
        }
    }

    /// Probability this archetype remarks *correctly* on a comment (a
    /// positive remark on useful comments, negative on junk).
    pub fn remark_accuracy(self) -> f64 {
        match self {
            Archetype::Expert => 0.95,
            Archetype::Average => 0.8,
            Archetype::Novice => 0.6,
            Archetype::Ignorant => 0.5, // coin flip
        }
    }

    /// Probability this archetype notices a behaviour the program
    /// exhibits (reported alongside the vote).
    pub fn behaviour_detection(self) -> f64 {
        match self {
            Archetype::Expert => 0.9,
            Archetype::Average => 0.6,
            Archetype::Novice => 0.3,
            Archetype::Ignorant => 0.05,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Archetype::Expert => "expert",
            Archetype::Average => "average",
            Archetype::Novice => "novice",
            Archetype::Ignorant => "ignorant",
        }
    }
}

/// One simulated member of the reputation community.
#[derive(Debug, Clone)]
pub struct SimUser {
    /// Account name (also the username on the server).
    pub name: String,
    /// Behaviour model.
    pub archetype: Archetype,
    /// Indices into the universe: the programs this user has installed.
    pub installed: Vec<usize>,
}

impl SimUser {
    /// The score this user would cast for `spec` (1–10).
    pub fn perceive_score(&self, spec: &SoftwareSpec, rng: &mut impl Rng) -> u8 {
        let noise = (rng.gen::<f64>() * 2.0 - 1.0) * self.archetype.noise();
        let value = spec.true_quality + self.archetype.bias() + noise;
        (value.round()).clamp(1.0, 10.0) as u8
    }

    /// The behaviours this user notices (and reports with the vote).
    pub fn observe_behaviours(&self, spec: &SoftwareSpec, rng: &mut impl Rng) -> Vec<String> {
        spec.behaviours
            .iter()
            .filter(|_| rng.gen_bool(self.archetype.behaviour_detection()))
            .cloned()
            .collect()
    }

    /// Write a comment: returns `(text, is_useful)` — usefulness is ground
    /// truth that remarkers perceive through their own accuracy.
    pub fn write_comment(&self, spec: &SoftwareSpec, rng: &mut impl Rng) -> (String, bool) {
        let useful = rng.gen_bool(self.archetype.comment_usefulness());
        let text = if useful {
            let behaviour =
                spec.behaviours.first().map(String::as_str).unwrap_or("no suspicious behaviour");
            format!(
                "[{}] {}: observed {}; quality around {:.0}/10",
                self.archetype.label(),
                spec.exe.file_name,
                behaviour,
                spec.true_quality
            )
        } else {
            format!(
                "[{}] {} gr8 free program!!! downlod now",
                self.archetype.label(),
                spec.exe.file_name
            )
        };
        (text, useful)
    }

    /// Decide a remark on a comment with ground-truth usefulness
    /// `comment_useful`: `true` = positive remark.
    pub fn remark_on(&self, comment_useful: bool, rng: &mut impl Rng) -> bool {
        if rng.gen_bool(self.archetype.remark_accuracy()) {
            comment_useful
        } else {
            !comment_useful
        }
    }
}

/// Build a population with the given archetype mix. `mix` entries are
/// (archetype, weight); weights need not sum to 1.
pub fn build_population(
    count: usize,
    mix: &[(Archetype, f64)],
    universe_size: usize,
    installs_per_user: usize,
    rng: &mut impl Rng,
) -> Vec<SimUser> {
    use rand::distributions::{Distribution, WeightedIndex};
    use rand::seq::index::sample;

    let dist = WeightedIndex::new(mix.iter().map(|(_, w)| w.max(0.0))).expect("positive weights");
    (0..count)
        .map(|i| {
            let archetype = mix[dist.sample(rng)].0;
            let installs = installs_per_user.min(universe_size);
            let installed = sample(rng, universe_size, installs).into_vec();
            SimUser { name: format!("user{i:05}"), archetype, installed }
        })
        .collect()
}

/// The default archetype mix used by the headline experiments.
pub const DEFAULT_MIX: [(Archetype, f64); 4] = [
    (Archetype::Expert, 0.10),
    (Archetype::Average, 0.55),
    (Archetype::Novice, 0.25),
    (Archetype::Ignorant, 0.10),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> SoftwareSpec {
        let mut rng = StdRng::seed_from_u64(1);
        let config = UniverseConfig { programs: 1, ..Default::default() };
        Universe::generate(&config, &mut rng).specs.remove(0)
    }

    fn user(archetype: Archetype) -> SimUser {
        SimUser { name: "u".into(), archetype, installed: vec![0] }
    }

    #[test]
    fn experts_vote_closer_to_truth_than_ignorants() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(2);
        let err = |archetype: Archetype, rng: &mut StdRng| {
            let u = user(archetype);
            let total: f64 = (0..300)
                .map(|_| (f64::from(u.perceive_score(&spec, rng)) - spec.true_quality).abs())
                .sum();
            total / 300.0
        };
        let expert_err = err(Archetype::Expert, &mut rng);
        let ignorant_err = err(Archetype::Ignorant, &mut rng);
        assert!(
            expert_err + 1.0 < ignorant_err,
            "expert {expert_err:.2} vs ignorant {ignorant_err:.2}"
        );
    }

    #[test]
    fn scores_stay_in_range() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(3);
        for archetype in
            [Archetype::Expert, Archetype::Average, Archetype::Novice, Archetype::Ignorant]
        {
            let u = user(archetype);
            for _ in 0..200 {
                let s = u.perceive_score(&spec, &mut rng);
                assert!((1..=10).contains(&s));
            }
        }
    }

    #[test]
    fn experts_notice_more_behaviours() {
        let mut spec = spec();
        spec.behaviours = vec!["popup_ads".into(), "tracking".into(), "keylogger".into()];
        let mut rng = StdRng::seed_from_u64(4);
        let count = |archetype: Archetype, rng: &mut StdRng| -> usize {
            let u = user(archetype);
            (0..200).map(|_| u.observe_behaviours(&spec, rng).len()).sum()
        };
        assert!(count(Archetype::Expert, &mut rng) > count(Archetype::Ignorant, &mut rng) * 3);
    }

    #[test]
    fn comment_usefulness_tracks_archetype() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(5);
        let useful_count = |archetype: Archetype, rng: &mut StdRng| -> usize {
            let u = user(archetype);
            (0..200).filter(|_| u.write_comment(&spec, rng).1).count()
        };
        let expert = useful_count(Archetype::Expert, &mut rng);
        let ignorant = useful_count(Archetype::Ignorant, &mut rng);
        assert!(expert > 170);
        assert!(ignorant < 50);
    }

    #[test]
    fn remarks_follow_accuracy() {
        let mut rng = StdRng::seed_from_u64(6);
        let expert = user(Archetype::Expert);
        let correct = (0..300).filter(|_| expert.remark_on(true, &mut rng)).count();
        assert!(correct > 260, "experts usually upvote useful comments, got {correct}");
    }

    #[test]
    fn population_respects_mix_and_installs() {
        let mut rng = StdRng::seed_from_u64(7);
        let pop = build_population(400, &DEFAULT_MIX, 50, 10, &mut rng);
        assert_eq!(pop.len(), 400);
        let experts = pop.iter().filter(|u| u.archetype == Archetype::Expert).count();
        assert!((10..=80).contains(&experts), "≈10% experts, got {experts}");
        for u in &pop {
            assert_eq!(u.installed.len(), 10);
            let distinct: std::collections::HashSet<_> = u.installed.iter().collect();
            assert_eq!(distinct.len(), 10, "installs are distinct programs");
            assert!(u.installed.iter().all(|&i| i < 50));
        }
        // Names are unique.
        let names: std::collections::HashSet<_> = pop.iter().map(|u| &u.name).collect();
        assert_eq!(names.len(), 400);
    }
}
