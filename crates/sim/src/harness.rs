//! The simulation harness: a complete in-process deployment.
//!
//! Wires a [`softrep_server::ReputationServer`] to a shared [`SimClock`],
//! registers a population through the real protocol path (puzzle →
//! register → activate → login), and drives weekly community rounds:
//! votes, comments, remarks, and the daily aggregation batch. Every
//! experiment builds on this.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use softrep_core::clock::{Clock, SimClock, Timestamp};
use softrep_core::db::ReputationDb;
use softrep_core::moderation::ModerationPolicy;
use softrep_crypto::salted::SecretPepper;
use softrep_proto::{Request, Response};
use softrep_server::{ReputationServer, ServerConfig};
use softrep_storage::Store;

use crate::population::SimUser;
use crate::universe::Universe;

/// Marker embedded in junk comments so remarkers (and metrics) can
/// recover ground-truth usefulness from text alone.
pub const JUNK_MARKER: &str = "gr8 free program";

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// RNG seed (everything downstream is deterministic in it).
    pub seed: u64,
    /// Registration puzzle difficulty (0 = disabled; most community
    /// simulations disable it and let the attack experiments turn it on).
    pub puzzle_difficulty: u8,
    /// Comment moderation policy.
    pub moderation: ModerationPolicy,
    /// Shared analyzer secret enabling the §5 evidence endpoint.
    pub analyzer_token: Option<String>,
    /// RSA bits for the §5 pseudonym key (0 = disabled, the default).
    pub pseudonym_key_bits: u32,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            seed: 7,
            puzzle_difficulty: 0,
            moderation: ModerationPolicy::Open,
            analyzer_token: None,
            pseudonym_key_bits: 0,
        }
    }
}

/// A complete simulated deployment.
pub struct SimHarness {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The in-process server.
    pub server: Arc<ReputationServer>,
    /// The member population.
    pub users: Vec<SimUser>,
    /// The software corpus.
    pub universe: Universe,
    sessions: HashMap<String, String>,
    rng: StdRng,
}

impl SimHarness {
    /// Stand up a deployment: server, registered+activated members, and
    /// the full corpus registered as software records.
    pub fn new(universe: Universe, users: Vec<SimUser>, config: &HarnessConfig) -> Self {
        let clock = SimClock::new();
        let db = ReputationDb::with_moderation(
            Arc::new(Store::in_memory()),
            SecretPepper::new(format!("sim-pepper-{}", config.seed)),
            config.moderation,
        );
        let server = Arc::new(ReputationServer::new(
            db,
            Arc::new(clock.clone()),
            ServerConfig {
                puzzle_difficulty: config.puzzle_difficulty,
                // Simulations compress months into one process; the flood
                // guard is effectively disabled here and enabled
                // explicitly by the attack experiments.
                flood_capacity: u32::MAX,
                flood_refill_per_hour: u32::MAX,
                analyzer_token: config.analyzer_token.clone(),
                pseudonym_key_bits: config.pseudonym_key_bits,
                ..ServerConfig::default()
            },
            config.seed,
        ));

        let mut harness = SimHarness {
            clock,
            server,
            users,
            universe,
            sessions: HashMap::new(),
            rng: StdRng::seed_from_u64(config.seed ^ 0x5eed),
        };
        harness.register_population();
        harness.register_corpus();
        harness
    }

    fn register_population(&mut self) {
        let names: Vec<String> = self.users.iter().map(|u| u.name.clone()).collect();
        for name in names {
            self.join(&name);
        }
    }

    /// Register + activate + login one account through the protocol.
    /// Returns the session token.
    pub fn join(&mut self, username: &str) -> String {
        let (challenge, solution) = if self.server.config().puzzle_difficulty > 0 {
            let Response::Puzzle { challenge } = self.server.handle(&Request::GetPuzzle, username)
            else {
                panic!("expected puzzle");
            };
            let parsed = softrep_crypto::puzzle::Challenge::decode(&challenge).expect("valid");
            let (sol, _) = parsed.solve();
            (challenge, sol.nonce)
        } else {
            (String::new(), 0)
        };
        let resp = self.server.handle(
            &Request::Register {
                username: username.into(),
                password: "sim-pw".into(),
                email: format!("{username}@sim.example"),
                puzzle_challenge: challenge,
                puzzle_solution: solution,
            },
            username,
        );
        let Response::Registered { activation_token } = resp else {
            panic!("registration failed for {username}: {resp:?}");
        };
        assert_eq!(
            self.server.handle(
                &Request::Activate { username: username.into(), token: activation_token },
                username
            ),
            Response::Ok
        );
        let Response::Session { token } = self.server.handle(
            &Request::Login { username: username.into(), password: "sim-pw".into() },
            username,
        ) else {
            panic!("login failed for {username}");
        };
        self.sessions.insert(username.to_string(), token.clone());
        token
    }

    fn register_corpus(&mut self) {
        for spec in &self.universe.specs {
            let resp = self.server.handle(
                &Request::RegisterSoftware {
                    software_id: spec.id_hex(),
                    file_name: spec.exe.file_name.clone(),
                    file_size: spec.exe.file_size(),
                    company: spec.exe.company.clone(),
                    version: spec.exe.version.clone(),
                },
                "corpus-loader",
            );
            debug_assert_eq!(resp, Response::Ok);
        }
    }

    /// The session token for a member.
    pub fn session_of(&self, username: &str) -> Option<&str> {
        self.sessions.get(username).map(String::as_str)
    }

    /// Refresh sessions after long simulated gaps (tokens expire on the
    /// server clock).
    pub fn relogin_all(&mut self) {
        let names: Vec<String> = self.users.iter().map(|u| u.name.clone()).collect();
        for name in names {
            let Response::Session { token } = self.server.handle(
                &Request::Login { username: name.clone(), password: "sim-pw".into() },
                &name,
            ) else {
                panic!("relogin failed for {name}");
            };
            self.sessions.insert(name, token);
        }
    }

    /// User `user_idx` votes on corpus entry `spec_idx` with their
    /// perceived score and observed behaviours.
    pub fn cast_vote(&mut self, user_idx: usize, spec_idx: usize) {
        let user = self.users[user_idx].clone();
        let spec = self.universe.specs[spec_idx].clone();
        let score = user.perceive_score(&spec, &mut self.rng);
        let behaviours = user.observe_behaviours(&spec, &mut self.rng);
        let session = self.sessions[&user.name].clone();
        let resp = self.server.handle(
            &Request::SubmitVote { session, software_id: spec.id_hex(), score, behaviours },
            &user.name,
        );
        debug_assert_eq!(resp, Response::Ok, "vote by {} failed", user.name);
    }

    /// User writes a comment on a corpus entry. Junk comments embed
    /// [`JUNK_MARKER`].
    pub fn write_comment(&mut self, user_idx: usize, spec_idx: usize) {
        let user = self.users[user_idx].clone();
        let spec = self.universe.specs[spec_idx].clone();
        let (text, _useful) = user.write_comment(&spec, &mut self.rng);
        let session = self.sessions[&user.name].clone();
        let _ = self.server.handle(
            &Request::SubmitComment { session, software_id: spec.id_hex(), text },
            &user.name,
        );
    }

    /// User fetches a random installed program's report and remarks on one
    /// comment (correctly or not, per archetype accuracy).
    pub fn remark_round(&mut self, user_idx: usize) {
        let user = self.users[user_idx].clone();
        let Some(&spec_idx) = user.installed.as_slice().choose(&mut self.rng) else { return };
        let spec = &self.universe.specs[spec_idx];
        let resp =
            self.server.handle(&Request::QueryDetails { software_id: spec.id_hex() }, &user.name);
        let Response::Software(info) = resp else { return };
        let foreign: Vec<_> = info.comments.iter().filter(|c| c.author != user.name).collect();
        let Some(comment) = foreign.choose(&mut self.rng) else { return };
        let useful = !comment.text.contains(JUNK_MARKER);
        let positive = user.remark_on(useful, &mut self.rng);
        let session = self.sessions[&user.name].clone();
        let _ = self.server.handle(
            &Request::RateComment { session, comment_id: comment.id, positive },
            &user.name,
        );
    }

    /// One community week: each user votes on `votes_per_user` installed
    /// programs, comments with probability `comment_prob`, performs
    /// `remark_rounds` remark lookups; then seven daily ticks (the 24 h
    /// aggregation runs inside them) and a session refresh.
    pub fn run_week(&mut self, votes_per_user: usize, comment_prob: f64, remark_rounds: usize) {
        self.run_week_for(0..self.users.len(), votes_per_user, comment_prob, remark_rounds);
    }

    /// [`run_week`](Self::run_week) restricted to a subset of the
    /// population — used by the cold-start experiment, where the member
    /// base grows week by week.
    pub fn run_week_for(
        &mut self,
        active: impl IntoIterator<Item = usize>,
        votes_per_user: usize,
        comment_prob: f64,
        remark_rounds: usize,
    ) {
        for user_idx in active {
            let installed = self.users[user_idx].installed.clone();
            for _ in 0..votes_per_user {
                if let Some(&spec_idx) = installed.as_slice().choose(&mut self.rng) {
                    self.cast_vote(user_idx, spec_idx);
                }
            }
            if self.rng.gen_bool(comment_prob) {
                if let Some(&spec_idx) = installed.as_slice().choose(&mut self.rng) {
                    self.write_comment(user_idx, spec_idx);
                }
            }
            for _ in 0..remark_rounds {
                self.remark_round(user_idx);
            }
        }
        self.advance_days(7);
        self.relogin_all();
    }

    /// Advance the clock day by day, running server maintenance each day.
    pub fn advance_days(&mut self, days: u64) {
        for _ in 0..days {
            self.clock.advance_days(1);
            self.server.tick();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        Clock::now(&self.clock)
    }

    /// The reputation database, for metric extraction.
    pub fn db(&self) -> &ReputationDb {
        self.server.db()
    }

    /// Deterministic RNG handle for experiment-level sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{build_population, DEFAULT_MIX};
    use crate::universe::{Universe, UniverseConfig};

    fn small_harness() -> SimHarness {
        let mut rng = StdRng::seed_from_u64(1);
        let config = UniverseConfig { programs: 12, vendors: 4, ..Default::default() };
        let universe = Universe::generate(&config, &mut rng);
        let users = build_population(10, &DEFAULT_MIX, universe.len(), 5, &mut rng);
        SimHarness::new(universe, users, &HarnessConfig::default())
    }

    #[test]
    fn harness_registers_population_and_corpus() {
        let harness = small_harness();
        assert_eq!(harness.db().user_count(), 10);
        assert_eq!(harness.db().software_count(), 12);
        for user in &harness.users {
            assert!(harness.session_of(&user.name).is_some());
        }
    }

    #[test]
    fn weekly_round_produces_votes_and_ratings() {
        let mut harness = small_harness();
        harness.run_week(2, 0.5, 1);
        assert!(harness.db().vote_count() > 0);
        // Aggregation ran inside the daily ticks: at least one rating.
        let rated = harness
            .universe
            .specs
            .iter()
            .filter(|s| harness.db().rating(&s.id_hex()).unwrap().is_some())
            .count();
        assert!(rated > 0, "weekly ticks must have aggregated some ratings");
    }

    #[test]
    fn votes_replace_rather_than_stack() {
        let mut harness = small_harness();
        // The same user voting twice on the same program leaves one vote.
        harness.cast_vote(0, 0);
        harness.cast_vote(0, 0);
        assert_eq!(harness.db().vote_count(), 1);
    }

    #[test]
    fn remarks_move_trust() {
        let mut harness = small_harness();
        // Everyone comments on program 0 (installed or not — direct call).
        for user_idx in 0..harness.users.len() {
            harness.write_comment(user_idx, 0);
        }
        // Point every user's installs at program 0 so remark rounds find
        // the comments.
        for u in &mut harness.users {
            u.installed = vec![0];
        }
        for _ in 0..3 {
            for user_idx in 0..harness.users.len() {
                harness.remark_round(user_idx);
            }
        }
        let moved = harness
            .users
            .iter()
            .filter(|u| harness.db().trust_of(&u.name).unwrap().unwrap_or(1.0) != 1.0)
            .count();
        assert!(moved > 0, "some authors must have gained or lost trust");
    }

    #[test]
    fn join_with_puzzle_enabled_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = UniverseConfig { programs: 2, vendors: 2, ..Default::default() };
        let universe = Universe::generate(&config, &mut rng);
        let users = build_population(3, &DEFAULT_MIX, universe.len(), 1, &mut rng);
        let harness = SimHarness::new(
            universe,
            users,
            &HarnessConfig { puzzle_difficulty: 4, ..Default::default() },
        );
        assert_eq!(harness.db().user_count(), 3);
    }

    #[test]
    fn sessions_survive_long_simulations_via_relogin() {
        let mut harness = small_harness();
        for _ in 0..5 {
            harness.run_week(1, 0.0, 0);
        }
        // 5 weeks >> session TTL (24 h): run_week relogs in, so votes kept
        // landing. Every user voted 5 times over ≤5 programs.
        assert!(harness.db().vote_count() > 0);
        assert!(harness.now().week_index() >= 5);
    }
}
