#![warn(missing_docs)]

//! End-to-end agent simulation for the softwareputation reproduction.
//!
//! The paper's evaluation is a deployed proof-of-concept with "well over
//! 2000 rated software programs" and no measurement tables; per the
//! reproduction's substitution rule, this crate builds the synthetic
//! equivalent that exercises every code path the deployment would have:
//!
//! * [`universe`] — a software corpus generator over the paper's 9-cell
//!   taxonomy, with ground-truth quality, behaviours, vendors, honesty of
//!   disclosure, polymorphic variants and signed releases.
//! * [`population`] — user archetypes (expert → ignorant, plus attackers)
//!   with archetype-specific perception noise, comment quality and
//!   remark behaviour.
//! * [`harness`] — [`harness::SimHarness`]: a complete in-process
//!   deployment (server + clock + registered agents) with weekly
//!   usage/vote/comment/remark loops and daily aggregation.
//! * [`attack`] — the §2.1 abuse scenarios: vote flooding, Sybil
//!   registration, ballot stuffing, discrediting, with countermeasure
//!   toggles and attacker cost accounting.
//! * [`metrics`] — rating error, coverage, protection metrics shared by
//!   the experiments.
//! * [`report`] — plain-text table rendering for the experiment binaries.
//! * [`experiments`] — one module per table/figure of EXPERIMENTS.md
//!   (T1, T2, D1–D9), each returning a structured, printable report.

pub mod attack;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod population;
pub mod report;
pub mod universe;

pub use harness::{HarnessConfig, SimHarness};
pub use population::{Archetype, SimUser};
pub use report::TextTable;
pub use universe::{SoftwareSpec, Universe, UniverseConfig};
