//! Abuse scenarios and countermeasure accounting (§2.1–2.2).
//!
//! The server's structural defences (one vote per user per software,
//! unique hashed e-mail addresses, the weekly trust cap) are always on —
//! they are invariants, not switches. What the attack model varies is the
//! *cost side* the paper reasons about:
//!
//! * **e-mail scarcity** — with duplicate detection, each account burns a
//!   distinct address; the attacker has finitely many. The no-dedup
//!   ablation is modelled as unlimited addresses (one inbox, infinite
//!   aliases), which is exactly what dedup removes.
//! * **puzzle cost** — with difficulty `d`, each account costs ~2^d hash
//!   evaluations from a finite compute budget.
//! * **flood guarding** — repeated requests from one identity throttle.

use rand::seq::SliceRandom;

use softrep_crypto::puzzle::Challenge;
use softrep_proto::{Request, Response};

use crate::harness::SimHarness;

/// Which §2.1 countermeasures the scenario enables.
#[derive(Debug, Clone, Copy)]
pub struct Defenses {
    /// Duplicate e-mail detection (the hashed-address uniqueness check).
    pub email_dedup: bool,
    /// Registration puzzle difficulty (0 = off).
    pub puzzle_difficulty: u8,
}

/// Attacker resources and goal.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    /// Corpus indices of the programs to push.
    pub targets: Vec<usize>,
    /// Accounts the attacker would like to control.
    pub desired_accounts: usize,
    /// Distinct e-mail addresses available (relevant under dedup).
    pub emails_available: usize,
    /// Hash evaluations the attacker can afford (relevant under puzzles).
    pub hash_budget: u64,
    /// The score pushed onto the targets (10 = ballot stuffing,
    /// 1 = discrediting).
    pub push_score: u8,
}

/// What the attack achieved and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Sybil accounts successfully created.
    pub accounts_created: usize,
    /// Votes that landed (accounts × targets, bounded by one-vote).
    pub votes_landed: usize,
    /// Hash evaluations spent on puzzles.
    pub hash_cost: u64,
    /// Distinct e-mail addresses consumed.
    pub emails_used: usize,
}

/// Run a Sybil registration + ballot-stuffing/discrediting campaign
/// against the harness's server.
///
/// Note: the server's *configured* puzzle difficulty governs; the harness
/// must have been built with `HarnessConfig { puzzle_difficulty, .. }`
/// matching `defenses.puzzle_difficulty`.
pub fn run_sybil_attack(
    harness: &mut SimHarness,
    plan: &AttackPlan,
    defenses: &Defenses,
) -> AttackOutcome {
    let mut outcome =
        AttackOutcome { accounts_created: 0, votes_landed: 0, hash_cost: 0, emails_used: 0 };

    let mut sessions = Vec::new();
    for i in 0..plan.desired_accounts {
        // E-mail scarcity: under dedup each account needs a fresh address.
        if defenses.email_dedup && outcome.emails_used >= plan.emails_available {
            break;
        }
        let username = format!("sybil{i:05}");
        let source = "attacker-host"; // one machine, one flood identity

        // Puzzle cost accounting.
        let (challenge, solution) = if defenses.puzzle_difficulty > 0 {
            let Response::Puzzle { challenge } = harness.server.handle(&Request::GetPuzzle, source)
            else {
                break; // throttled
            };
            let parsed = Challenge::decode(&challenge).expect("server-issued");
            let (sol, cost) = parsed.solve();
            if outcome.hash_cost + cost > plan.hash_budget {
                // Budget exhausted mid-solve: the attacker stops here.
                outcome.hash_cost = plan.hash_budget;
                break;
            }
            outcome.hash_cost += cost;
            (challenge, sol.nonce)
        } else {
            (String::new(), 0)
        };

        let email = if defenses.email_dedup {
            format!("sybil{i:05}@attacker.example")
        } else {
            // Without dedup one inbox mints unlimited aliases; model the
            // alias as free and count one underlying address.
            format!("alias{i:05}@attacker.example")
        };

        let resp = harness.server.handle(
            &Request::Register {
                username: username.clone(),
                password: "attack".into(),
                email,
                puzzle_challenge: challenge,
                puzzle_solution: solution,
            },
            source,
        );
        let Response::Registered { activation_token } = resp else { continue };
        if defenses.email_dedup {
            outcome.emails_used += 1;
        }
        harness.server.handle(
            &Request::Activate { username: username.clone(), token: activation_token },
            source,
        );
        let Response::Session { token } = harness.server.handle(
            &Request::Login { username: username.clone(), password: "attack".into() },
            source,
        ) else {
            continue;
        };
        outcome.accounts_created += 1;
        sessions.push(token);
    }

    // Every controlled account pushes the score onto every target. The
    // one-vote invariant means re-votes would be pointless, so the
    // attacker casts exactly accounts × targets ballots.
    for token in &sessions {
        for &target in &plan.targets {
            let id = harness.universe.specs[target].id_hex();
            let resp = harness.server.handle(
                &Request::SubmitVote {
                    session: token.clone(),
                    software_id: id,
                    score: plan.push_score,
                    behaviours: vec![],
                },
                "attacker-host",
            );
            if resp == Response::Ok {
                outcome.votes_landed += 1;
            }
        }
    }
    outcome
}

/// Vote-flooding: one account hammers one target with `attempts` vote
/// submissions. Returns `(accepted, final_vote_count_for_target)` — the
/// one-vote invariant keeps the count at one regardless of volume.
pub fn run_vote_flood(harness: &mut SimHarness, target: usize, attempts: usize) -> (usize, usize) {
    let mut accepted = 0;
    let username = "flooder";
    let session = harness.join(username);
    let id = harness.universe.specs[target].id_hex();
    let scores: Vec<u8> = (0..attempts).map(|i| (i % 10 + 1) as u8).collect();
    for score in scores {
        let resp = harness.server.handle(
            &Request::SubmitVote {
                session: session.clone(),
                software_id: id.clone(),
                score,
                behaviours: vec![],
            },
            "flooder-host",
        );
        if resp == Response::Ok {
            accepted += 1;
        }
    }
    let final_count = harness
        .db()
        .votes_for(&id)
        .expect("scan")
        .iter()
        .filter(|v| v.username == username)
        .count();
    (accepted, final_count)
}

/// A discrediting campaign helper: pick the `n` highest-quality programs
/// as targets (the competitor software an attacker would smear).
pub fn pick_discredit_targets(harness: &SimHarness, n: usize) -> Vec<usize> {
    let mut indexed: Vec<(usize, f64)> =
        harness.universe.specs.iter().enumerate().map(|(i, s)| (i, s.true_quality)).collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    indexed.into_iter().take(n).map(|(i, _)| i).collect()
}

/// A ballot-stuffing helper: pick `n` low-quality PIS programs the
/// attacker (its vendor) wants to look good.
pub fn pick_boost_targets(harness: &SimHarness, n: usize) -> Vec<usize> {
    let mut indexed: Vec<(usize, f64)> = harness
        .universe
        .specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.category.is_spyware() || s.category.is_malware())
        .map(|(i, s)| (i, s.true_quality))
        .collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
    indexed.into_iter().take(n).map(|(i, _)| i).collect()
}

/// Shuffle helper used by experiments that want random targets.
pub fn pick_random_targets(harness: &mut SimHarness, n: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..harness.universe.len()).collect();
    all.shuffle(harness.rng());
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::HarnessConfig;
    use crate::population::{build_population, DEFAULT_MIX};
    use crate::universe::{Universe, UniverseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn harness(puzzle_difficulty: u8) -> SimHarness {
        let mut rng = StdRng::seed_from_u64(4);
        let config = UniverseConfig { programs: 8, vendors: 3, ..Default::default() };
        let universe = Universe::generate(&config, &mut rng);
        let users = build_population(6, &DEFAULT_MIX, universe.len(), 4, &mut rng);
        SimHarness::new(universe, users, &HarnessConfig { puzzle_difficulty, ..Default::default() })
    }

    #[test]
    fn email_scarcity_caps_sybil_accounts() {
        let mut h = harness(0);
        let plan = AttackPlan {
            targets: vec![0],
            desired_accounts: 20,
            emails_available: 5,
            hash_budget: u64::MAX,
            push_score: 10,
        };
        let outcome =
            run_sybil_attack(&mut h, &plan, &Defenses { email_dedup: true, puzzle_difficulty: 0 });
        assert_eq!(outcome.accounts_created, 5);
        assert_eq!(outcome.emails_used, 5);
        assert_eq!(outcome.votes_landed, 5);
    }

    #[test]
    fn without_dedup_accounts_are_unbounded_by_emails() {
        let mut h = harness(0);
        let plan = AttackPlan {
            targets: vec![0],
            desired_accounts: 12,
            emails_available: 1,
            hash_budget: u64::MAX,
            push_score: 10,
        };
        let outcome =
            run_sybil_attack(&mut h, &plan, &Defenses { email_dedup: false, puzzle_difficulty: 0 });
        assert_eq!(outcome.accounts_created, 12);
        assert_eq!(outcome.emails_used, 0);
    }

    #[test]
    fn puzzle_budget_limits_accounts() {
        let mut h = harness(6);
        let plan = AttackPlan {
            targets: vec![0],
            desired_accounts: 100,
            emails_available: usize::MAX,
            // Difficulty 6 costs ~64 hashes per account on average: a
            // budget of ~320 should stop the attacker well short of 100.
            hash_budget: 320,
            push_score: 10,
        };
        let outcome =
            run_sybil_attack(&mut h, &plan, &Defenses { email_dedup: true, puzzle_difficulty: 6 });
        assert!(outcome.accounts_created < 100, "created {}", outcome.accounts_created);
        assert!(outcome.hash_cost <= 320);
        assert!(outcome.accounts_created >= 1, "some accounts affordable");
    }

    #[test]
    fn one_vote_invariant_defeats_vote_flooding() {
        let mut h = harness(0);
        let (accepted, final_count) = run_vote_flood(&mut h, 0, 50);
        assert_eq!(accepted, 50, "the server accepts re-votes as replacements");
        assert_eq!(final_count, 1, "…but only one ballot exists");
    }

    #[test]
    fn attack_shifts_rating_and_trust_cap_limits_it() {
        let mut h = harness(0);
        // Honest community builds ratings first (and some trust).
        h.run_week(3, 0.3, 2);
        let target = pick_discredit_targets(&h, 1)[0];
        let id = h.universe.specs[target].id_hex();
        h.db().force_aggregation(h.now()).unwrap();
        let before = h.db().rating(&id).unwrap().map(|r| r.rating);

        let plan = AttackPlan {
            targets: vec![target],
            desired_accounts: 30,
            emails_available: 30,
            hash_budget: u64::MAX,
            push_score: 1,
        };
        run_sybil_attack(&mut h, &plan, &Defenses { email_dedup: true, puzzle_difficulty: 0 });
        h.db().force_aggregation(h.now()).unwrap();
        let after = h.db().rating(&id).unwrap().map(|r| r.rating).unwrap();

        if let Some(before) = before {
            assert!(after < before, "30 sybils at score 1 must drag the rating down");
        }
        // Attacker trust stayed at the newcomer minimum.
        assert_eq!(h.db().trust_of("sybil00000").unwrap().unwrap(), 1.0);
    }

    #[test]
    fn target_pickers_return_sensible_sets() {
        let mut h = harness(0);
        let top = pick_discredit_targets(&h, 3);
        assert_eq!(top.len(), 3);
        let q0 = h.universe.specs[top[0]].true_quality;
        let q2 = h.universe.specs[top[2]].true_quality;
        assert!(q0 >= q2);

        let boost = pick_boost_targets(&h, 2);
        for idx in &boost {
            let c = h.universe.specs[*idx].category;
            assert!(c.is_spyware() || c.is_malware());
        }

        let random = pick_random_targets(&mut h, 4);
        assert_eq!(random.len(), 4);
        let distinct: std::collections::HashSet<_> = random.iter().collect();
        assert_eq!(distinct.len(), 4);
    }
}
