//! Synthetic software universe.
//!
//! Generates a corpus with per-program ground truth spanning all nine
//! cells of Table 1. Ground truth drives everything downstream: agents
//! *perceive* quality with archetype-dependent noise, behaviours feed the
//! policy engine, honesty of disclosure drives the Table 2 transform, and
//! category determines what the anti-virus baseline may flag.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

use softrep_core::identity::{SoftwareId, SyntheticExecutable};
use softrep_core::taxonomy::{ConsentLevel, ConsequenceLevel, PisCategory};

/// Behaviour tags used across the workspace (clients report these with
/// votes; policies match on them; §4.3 names ads / settings changes /
/// broken uninstallers explicitly).
pub mod behaviours {
    /// Displays pop-up advertisements.
    pub const POPUP_ADS: &str = "popup_ads";
    /// Tracks browsing/usage and phones home.
    pub const TRACKING: &str = "tracking";
    /// Registers itself to start with the system.
    pub const STARTUP_REGISTRATION: &str = "startup_registration";
    /// Uninstaller leaves the software (partially) behind.
    pub const INCOMPLETE_UNINSTALL: &str = "incomplete_uninstall";
    /// Changes browser/system settings.
    pub const SETTINGS_CHANGE: &str = "settings_change";
    /// Records keystrokes.
    pub const KEYLOGGER: &str = "keylogger";
    /// Exfiltrates personal data.
    pub const DATA_EXFILTRATION: &str = "data_exfiltration";
}

/// Ground truth for one program in the corpus.
#[derive(Debug, Clone)]
pub struct SoftwareSpec {
    /// The executable (hashable bytes + embedded metadata).
    pub exe: SyntheticExecutable,
    /// Table 1 cell.
    pub category: PisCategory,
    /// The score (1–10) a fully-informed expert would assign.
    pub true_quality: f64,
    /// Behaviours the program actually exhibits.
    pub behaviours: Vec<String>,
    /// Does its EULA/description honestly disclose those behaviours?
    /// (Drives the Table 2 transform.)
    pub honestly_disclosed: bool,
    /// EULA length in words (flavour from §1: "sometimes spanning well
    /// over 5000 words").
    pub eula_words: u32,
    /// Is this an essential OS component (blocking it crashes the OS)?
    pub essential: bool,
    /// Vendor index in [`Universe::vendors`], if the binary declares one.
    pub vendor_index: Option<usize>,
}

impl SoftwareSpec {
    /// Hex software id (SHA-1, per the paper).
    pub fn id_hex(&self) -> String {
        self.exe.id_sha1().to_hex()
    }

    /// The typed software id.
    pub fn id(&self) -> SoftwareId {
        self.exe.id_sha1()
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Number of programs.
    pub programs: usize,
    /// Number of vendors to spread programs over.
    pub vendors: usize,
    /// Weights over the nine Table 1 cells (cell 1 first). The default
    /// skews toward legitimate software with a substantial grey zone,
    /// matching §1's "well over 80% of home PCs are infected" framing
    /// (many machines run a few PIS programs among mostly-legitimate
    /// software).
    pub category_weights: [f64; 9],
    /// Fraction of programs that are essential OS components (always from
    /// the legitimate cell).
    pub essential_fraction: f64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            programs: 1_000,
            vendors: 60,
            //         1     2     3     4     5     6     7     8     9
            category_weights: [0.40, 0.08, 0.02, 0.12, 0.14, 0.04, 0.06, 0.09, 0.05],
            essential_fraction: 0.03,
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Universe {
    /// All programs.
    pub specs: Vec<SoftwareSpec>,
    /// Vendor names (referenced by index from specs).
    pub vendors: Vec<String>,
}

impl Universe {
    /// Generate a corpus from `config` with `rng`.
    pub fn generate(config: &UniverseConfig, rng: &mut impl Rng) -> Self {
        let vendors: Vec<String> = (0..config.vendors.max(1))
            .map(|i| format!("{} {}", VENDOR_STEMS[i % VENDOR_STEMS.len()], i / VENDOR_STEMS.len()))
            .map(|name| name.trim_end_matches(" 0").to_string())
            .collect();

        let dist = WeightedIndex::new(config.category_weights.iter().map(|w| w.max(0.0)))
            .expect("at least one positive weight");
        let categories = PisCategory::all();

        let essential_count = (config.programs as f64 * config.essential_fraction) as usize;

        let specs = (0..config.programs)
            .map(|i| {
                let essential = i < essential_count;
                let category = if essential {
                    PisCategory::LegitimateSoftware
                } else {
                    categories[dist.sample(rng)]
                };
                Self::spec_for(i, category, essential, &vendors, rng)
            })
            .collect();

        Universe { specs, vendors }
    }

    fn spec_for(
        index: usize,
        category: PisCategory,
        essential: bool,
        vendors: &[String],
        rng: &mut impl Rng,
    ) -> SoftwareSpec {
        let true_quality = sample_quality(category, rng);
        let behaviours = sample_behaviours(category, rng);
        // Malware always lies; legitimate software is honest; grey-zone
        // software honestly discloses with the probability that makes the
        // grey zone a genuine mix (§4.1's transform needs both kinds).
        let honestly_disclosed = match category.consent() {
            ConsentLevel::High => true,
            ConsentLevel::Low => false,
            ConsentLevel::Medium => rng.gen_bool(0.5),
        };
        // §1: EULAs "sometimes spanning well over 5000 words"; dishonest
        // software hides behind longer ones.
        let eula_words = if honestly_disclosed {
            rng.gen_range(200..2_000)
        } else {
            rng.gen_range(3_000..9_000)
        };
        // Low-consent software often strips its vendor metadata (§3.3's
        // "signal for PIS").
        let strip_vendor =
            category.consent() == ConsentLevel::Low && rng.gen_bool(0.6) && !essential;
        let vendor_index = if strip_vendor { None } else { Some(rng.gen_range(0..vendors.len())) };

        let file_name = format!("{}-{index}.exe", file_stem(category));
        // The body carries runtime behaviour markers (see
        // `softrep_analysis::markers`) so the §5 sandbox can observe the
        // program's true behaviours, padded with random bytes.
        let mut body: Vec<u8> = (0..rng.gen_range(64..512)).map(|_| rng.gen()).collect();
        softrep_analysis::markers::embed_markers(&mut body, &behaviours);
        let exe = match vendor_index {
            Some(v) => SyntheticExecutable::new(
                file_name,
                vendors[v].clone(),
                format!("{}.{}", rng.gen_range(1..6), rng.gen_range(0..10)),
                body,
            ),
            None => SyntheticExecutable::anonymous(file_name, body),
        };

        SoftwareSpec {
            exe,
            category,
            true_quality,
            behaviours,
            honestly_disclosed,
            eula_words,
            essential,
            vendor_index,
        }
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Programs counted per Table 1 cell (index = cell_number − 1).
    pub fn cell_counts(&self) -> [usize; 9] {
        let mut counts = [0usize; 9];
        for spec in &self.specs {
            counts[(spec.category.cell_number() - 1) as usize] += 1;
        }
        counts
    }

    /// The vendor name for a spec, if declared.
    pub fn vendor_of(&self, spec: &SoftwareSpec) -> Option<&str> {
        spec.vendor_index.map(|i| self.vendors[i].as_str())
    }
}

/// Quality distribution per cell: consent and consequence both hurt the
/// informed-expert score. Values are anchored so cell 1 centres high and
/// cell 9 centres at the floor.
fn sample_quality(category: PisCategory, rng: &mut impl Rng) -> f64 {
    let centre = match category.cell_number() {
        1 => 8.5,
        2 => 6.0,
        3 => 3.0,
        4 => 7.0,
        5 => 4.5,
        6 => 2.5,
        7 => 3.5,
        8 => 2.0,
        _ => 1.3,
    };
    // Triangular-ish noise from two uniform draws.
    let noise = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * 1.2;
    (centre + noise).clamp(1.0, 10.0)
}

fn sample_behaviours(category: PisCategory, rng: &mut impl Rng) -> Vec<String> {
    use behaviours::*;
    let mut out = Vec::new();
    let consequence = category.consequence();
    let consent = category.consent();

    if consequence != ConsequenceLevel::Tolerable {
        if rng.gen_bool(0.75) {
            out.push(POPUP_ADS.to_string());
        }
        if rng.gen_bool(0.6) {
            out.push(TRACKING.to_string());
        }
        if rng.gen_bool(0.4) {
            out.push(SETTINGS_CHANGE.to_string());
        }
        if rng.gen_bool(0.5) {
            out.push(INCOMPLETE_UNINSTALL.to_string());
        }
    } else if rng.gen_bool(0.15) {
        // Even tolerable software occasionally registers at startup.
        out.push(STARTUP_REGISTRATION.to_string());
    }
    if consequence == ConsequenceLevel::Severe {
        if rng.gen_bool(0.6) {
            out.push(KEYLOGGER.to_string());
        }
        out.push(DATA_EXFILTRATION.to_string());
    }
    if consent == ConsentLevel::Low && rng.gen_bool(0.5) {
        out.push(STARTUP_REGISTRATION.to_string());
    }
    out.sort();
    out.dedup();
    out
}

fn file_stem(category: PisCategory) -> &'static str {
    match category.cell_number() {
        1 => "app",
        2 => "adbar",
        3 => "agent",
        4 => "shareware",
        5 => "toolbar",
        6 => "bundle",
        7 => "quietsvc",
        8 => "freegame",
        _ => "codec",
    }
}

const VENDOR_STEMS: [&str; 12] = [
    "Acme Software",
    "Globex Systems",
    "Initech",
    "Umbrella Apps",
    "Contoso",
    "NorthWind Tools",
    "BlueSky Media",
    "Pied Piper",
    "Hooli Labs",
    "Vandelay Industries",
    "Wayne Utilities",
    "Stark Freeware",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe(n: usize, seed: u64) -> Universe {
        let config = UniverseConfig { programs: n, ..UniverseConfig::default() };
        Universe::generate(&config, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn generates_requested_size_with_unique_ids() {
        let u = universe(300, 1);
        assert_eq!(u.len(), 300);
        let ids: std::collections::HashSet<String> =
            u.specs.iter().map(SoftwareSpec::id_hex).collect();
        assert_eq!(ids.len(), 300, "content digests must be unique");
    }

    #[test]
    fn all_nine_cells_are_populated_at_scale() {
        let u = universe(2_000, 2);
        for (i, count) in u.cell_counts().iter().enumerate() {
            assert!(*count > 0, "cell {} is empty", i + 1);
        }
    }

    #[test]
    fn quality_orders_with_severity() {
        let u = universe(3_000, 3);
        let mean_quality = |cell: u8| {
            let qs: Vec<f64> = u
                .specs
                .iter()
                .filter(|s| s.category.cell_number() == cell)
                .map(|s| s.true_quality)
                .collect();
            qs.iter().sum::<f64>() / qs.len() as f64
        };
        assert!(mean_quality(1) > mean_quality(5));
        assert!(mean_quality(5) > mean_quality(9));
        assert!(mean_quality(1) > 7.0);
        assert!(mean_quality(9) < 3.0);
    }

    #[test]
    fn honesty_follows_consent_rows() {
        let u = universe(2_000, 4);
        for spec in &u.specs {
            match spec.category.consent() {
                ConsentLevel::High => assert!(spec.honestly_disclosed),
                ConsentLevel::Low => assert!(!spec.honestly_disclosed),
                ConsentLevel::Medium => {} // mixed by design
            }
        }
        let medium: Vec<&SoftwareSpec> =
            u.specs.iter().filter(|s| s.category.consent() == ConsentLevel::Medium).collect();
        let honest = medium.iter().filter(|s| s.honestly_disclosed).count();
        assert!(honest > 0 && honest < medium.len(), "grey zone must be a mix");
    }

    #[test]
    fn severe_software_carries_severe_behaviours() {
        let u = universe(1_000, 5);
        for spec in &u.specs {
            if spec.category.consequence() == ConsequenceLevel::Severe {
                assert!(
                    spec.behaviours.iter().any(|b| b == behaviours::DATA_EXFILTRATION),
                    "severe software must exfiltrate"
                );
            }
        }
    }

    #[test]
    fn essential_components_are_legitimate_and_first() {
        let config =
            UniverseConfig { programs: 100, essential_fraction: 0.1, ..Default::default() };
        let u = Universe::generate(&config, &mut StdRng::seed_from_u64(6));
        let essentials: Vec<&SoftwareSpec> = u.specs.iter().filter(|s| s.essential).collect();
        assert_eq!(essentials.len(), 10);
        for e in essentials {
            assert_eq!(e.category, PisCategory::LegitimateSoftware);
        }
    }

    #[test]
    fn some_low_consent_software_strips_vendor() {
        let u = universe(2_000, 7);
        let stripped = u
            .specs
            .iter()
            .filter(|s| s.category.consent() == ConsentLevel::Low && s.vendor_index.is_none())
            .count();
        assert!(stripped > 0, "vendor stripping must occur in the low-consent rows");
        // And high-consent software never strips.
        for spec in &u.specs {
            if spec.category.consent() == ConsentLevel::High {
                assert!(spec.vendor_index.is_some());
            }
        }
    }

    #[test]
    fn dishonest_eulas_are_longer() {
        let u = universe(2_000, 8);
        let mean = |honest: bool| {
            let ws: Vec<f64> = u
                .specs
                .iter()
                .filter(|s| s.honestly_disclosed == honest)
                .map(|s| f64::from(s.eula_words))
                .collect();
            ws.iter().sum::<f64>() / ws.len() as f64
        };
        assert!(mean(false) > mean(true) * 2.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = universe(100, 42);
        let b = universe(100, 42);
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(x.id_hex(), y.id_hex());
            assert_eq!(x.true_quality, y.true_quality);
        }
        let c = universe(100, 43);
        assert_ne!(a.specs[0].id_hex(), c.specs[0].id_hex());
    }
}
