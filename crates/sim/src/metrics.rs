//! Shared experiment metrics.

use softrep_core::aggregate::unweighted_mean;
use softrep_core::db::ReputationDb;

use crate::universe::Universe;

/// Mean absolute error between published (trust-weighted) ratings and
/// ground-truth quality, over the rated subset. `None` when nothing is
/// rated.
pub fn weighted_rating_mae(db: &ReputationDb, universe: &Universe) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for spec in &universe.specs {
        if let Some(rating) = db.rating(&spec.id_hex()).ok().flatten() {
            total += (rating.rating - spec.true_quality).abs();
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

/// Mean absolute error an *unweighted* aggregation would publish over the
/// same votes — the D2 baseline, computed from the raw vote table.
pub fn unweighted_rating_mae(db: &ReputationDb, universe: &Universe) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for spec in &universe.specs {
        let votes = db.votes_for(&spec.id_hex()).ok()?;
        if votes.is_empty() {
            continue;
        }
        let mean = unweighted_mean(votes.iter().map(|v| v.score))?;
        total += (mean - spec.true_quality).abs();
        n += 1;
    }
    (n > 0).then(|| total / n as f64)
}

/// Fraction of the corpus with at least `k` votes.
pub fn vote_coverage(db: &ReputationDb, universe: &Universe, k: usize) -> f64 {
    if universe.is_empty() {
        return 0.0;
    }
    let covered = universe
        .specs
        .iter()
        .filter(|s| db.votes_for(&s.id_hex()).map(|v| v.len()).unwrap_or(0) >= k)
        .count();
    covered as f64 / universe.len() as f64
}

/// Fraction of the corpus with a published rating.
pub fn rating_coverage(db: &ReputationDb, universe: &Universe) -> f64 {
    if universe.is_empty() {
        return 0.0;
    }
    let rated =
        universe.specs.iter().filter(|s| db.rating(&s.id_hex()).ok().flatten().is_some()).count();
    rated as f64 / universe.len() as f64
}

/// Published rating of one program, if any.
pub fn published_rating(db: &ReputationDb, universe: &Universe, spec_idx: usize) -> Option<f64> {
    db.rating(&universe.specs[spec_idx].id_hex()).ok().flatten().map(|r| r.rating)
}

/// A program counts as *warned-about* when its published rating sits at or
/// below `threshold` — the signal that makes a user "think twice" (§4.3).
pub fn is_warned(db: &ReputationDb, id_hex: &str, threshold: f64) -> bool {
    db.rating(id_hex).ok().flatten().is_some_and(|r| r.rating <= threshold)
}

/// Simple mean helper.
pub fn mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Median helper (sorts a copy).
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    Some(sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{HarnessConfig, SimHarness};
    use crate::population::{build_population, DEFAULT_MIX};
    use crate::universe::{Universe, UniverseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn harness() -> SimHarness {
        let mut rng = StdRng::seed_from_u64(9);
        let config = UniverseConfig { programs: 10, vendors: 3, ..Default::default() };
        let universe = Universe::generate(&config, &mut rng);
        let users = build_population(12, &DEFAULT_MIX, universe.len(), 6, &mut rng);
        SimHarness::new(universe, users, &HarnessConfig::default())
    }

    #[test]
    fn coverage_and_mae_move_with_activity() {
        let mut h = harness();
        assert_eq!(vote_coverage(h.db(), &h.universe, 1), 0.0);
        assert_eq!(rating_coverage(h.db(), &h.universe), 0.0);
        assert!(weighted_rating_mae(h.db(), &h.universe).is_none());

        h.run_week(3, 0.0, 0);
        assert!(vote_coverage(h.db(), &h.universe, 1) > 0.0);
        assert!(rating_coverage(h.db(), &h.universe) > 0.0);
        let mae = weighted_rating_mae(h.db(), &h.universe).unwrap();
        assert!(mae < 5.0, "votes track truth loosely at worst, got {mae}");
        assert!(unweighted_rating_mae(h.db(), &h.universe).is_some());
    }

    #[test]
    fn warning_threshold_classifies() {
        let mut h = harness();
        h.run_week(4, 0.0, 0);
        // At least one program should be warned about or not — exercise
        // both branches by checking consistency with published ratings.
        for spec in h.universe.specs.clone() {
            if let Some(r) = h.db().rating(&spec.id_hex()).unwrap() {
                assert_eq!(is_warned(h.db(), &spec.id_hex(), 4.0), r.rating <= 4.0);
            } else {
                assert!(!is_warned(h.db(), &spec.id_hex(), 4.0));
            }
        }
    }

    #[test]
    fn mean_and_median_helpers() {
        assert_eq!(mean([1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[5.0]).unwrap(), 5.0);
    }
}
