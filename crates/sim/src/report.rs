//! Plain-text table rendering for the experiment binaries.
//!
//! The bench harnesses print "the same rows/series the paper reports";
//! this is the shared formatter so every experiment's output looks alike.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl TextTable {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (cells are any `Display`able values, pre-rendered).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity must match header");
        self.rows.push(cells);
        self
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");

        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };

        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimals, or a dash for `None`.
pub fn fmt_opt(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}"),
        None => "—".to_string(),
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "23.5".into()]);
        t.note("a footnote");
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("a-much-longer-name  23.5"));
        assert!(rendered.contains("note: a footnote"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(1, 1), "23.5");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(fmt_opt(Some(1.234)), "1.23");
        assert_eq!(fmt_opt(None), "—");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
