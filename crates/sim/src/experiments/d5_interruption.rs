//! **D5 — user interruption**: the 50-execution / 2-per-week prompt policy.
//!
//! §3.1 fixes two parameters to "minimize the user interruption": a
//! program must be executed more than 50 times before its author is asked
//! to rate it, and at most two rating prompts fire per week. The
//! experiment replays a realistic usage trace (Zipf-weighted launches over
//! an installed set) against [`RatingPromptPolicy`] for a grid of both
//! parameters and reports prompts/week and rating coverage.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_client::prompt::RatingPromptPolicy;
use softrep_core::clock::{Timestamp, DAY_SECS};

use crate::report::{pct, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Installed programs per user.
    pub installed: usize,
    /// Launches per day.
    pub launches_per_day: usize,
    /// Trace length in weeks.
    pub weeks: u64,
    /// Execution thresholds to sweep (the paper's value is 50).
    pub thresholds: Vec<u64>,
    /// Weekly caps to sweep (the paper's value is 2).
    pub caps: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            installed: 12,
            launches_per_day: 8,
            weeks: 8,
            thresholds: vec![10, 50],
            caps: vec![1, 2],
            seed: 61,
        }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            installed: 30,
            launches_per_day: 15,
            weeks: 26,
            thresholds: vec![10, 25, 50, 100],
            caps: vec![1, 2, 5],
            seed: 61,
        }
    }
}

/// One grid point.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Execution threshold.
    pub threshold: u64,
    /// Weekly cap.
    pub cap: u32,
    /// Mean prompts per week over the trace.
    pub prompts_per_week: f64,
    /// Fraction of installed programs rated by the end.
    pub rated_fraction: f64,
    /// First week in which a prompt fired (None = never).
    pub first_prompt_week: Option<u64>,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// The swept grid.
    pub grid: Vec<GridPoint>,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// Generate the Zipf-weighted launch trace: `(timestamp, program index)`.
fn usage_trace(config: &Config) -> Vec<(Timestamp, usize)> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Zipf weights: program i launched with weight 1/(i+1).
    let weights: Vec<f64> = (0..config.installed).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let dist = WeightedIndex::new(&weights).expect("positive weights");

    let mut trace = Vec::new();
    for day in 0..config.weeks * 7 {
        for launch in 0..config.launches_per_day {
            let ts = Timestamp(day * DAY_SECS + (launch as u64) * 900);
            trace.push((ts, dist.sample(&mut rng)));
        }
    }
    trace
}

fn run_point(trace: &[(Timestamp, usize)], config: &Config, threshold: u64, cap: u32) -> GridPoint {
    let mut policy = RatingPromptPolicy::new(threshold, cap);
    let mut rated = std::collections::HashSet::new();
    let mut first_prompt_week = None;
    let mut prompts = 0u64;

    for &(ts, program) in trace {
        let id = format!("prog{program:03}");
        if policy.on_execution(&id, ts) {
            prompts += 1;
            first_prompt_week.get_or_insert(ts.week_index());
            // The user rates when prompted (the compliant-user model; the
            // rate of prompt dismissal only shifts coverage downward).
            policy.mark_rated(&id);
            rated.insert(program);
        }
    }

    GridPoint {
        threshold,
        cap,
        prompts_per_week: prompts as f64 / config.weeks as f64,
        rated_fraction: rated.len() as f64 / config.installed as f64,
        first_prompt_week,
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let trace = usage_trace(config);
    let mut grid = Vec::new();
    for &threshold in &config.thresholds {
        for &cap in &config.caps {
            grid.push(run_point(&trace, config, threshold, cap));
        }
    }

    let mut table = TextTable::new(
        format!(
            "D5 — rating-prompt interruption ({} programs, {} launches/day, {} weeks, Zipf usage)",
            config.installed, config.launches_per_day, config.weeks
        ),
        &["threshold", "weekly cap", "prompts/week", "programs rated", "first prompt (week)"],
    );
    for p in &grid {
        let marker = if p.threshold == 50 && p.cap == 2 { " ← paper" } else { "" };
        table.row(vec![
            format!("{}{}", p.threshold, marker),
            p.cap.to_string(),
            format!("{:.2}", p.prompts_per_week),
            pct(p.rated_fraction),
            p.first_prompt_week.map_or("never".into(), |w| w.to_string()),
        ]);
    }
    table.note("paper defaults: threshold 50, cap 2 (§3.1); compliant user rates at every prompt");

    Result { grid, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(result: &Result, threshold: u64, cap: u32) -> GridPoint {
        *result.grid.iter().find(|p| p.threshold == threshold && p.cap == cap).unwrap()
    }

    #[test]
    fn weekly_cap_bounds_prompt_rate() {
        let result = run(&Config::quick());
        for p in &result.grid {
            assert!(
                p.prompts_per_week <= f64::from(p.cap) + 1e-9,
                "threshold {} cap {}: {:.2} prompts/week",
                p.threshold,
                p.cap,
                p.prompts_per_week
            );
        }
    }

    #[test]
    fn lower_thresholds_prompt_sooner_and_cover_more() {
        let result = run(&Config::quick());
        let aggressive = point(&result, 10, 2);
        let conservative = point(&result, 50, 2);
        assert!(aggressive.first_prompt_week <= conservative.first_prompt_week);
        assert!(aggressive.rated_fraction >= conservative.rated_fraction);
    }

    #[test]
    fn zipf_usage_rates_head_programs_first() {
        // With threshold 50, only frequently-launched programs ever cross
        // it: coverage stays below 100% on a short trace.
        let result = run(&Config::quick());
        let paper = point(&result, 50, 2);
        assert!(paper.rated_fraction < 1.0);
        assert!(paper.rated_fraction > 0.0, "the head of the Zipf curve crosses 50 launches");
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::quick());
        let b = run(&Config::quick());
        assert_eq!(a.grid.len(), b.grid.len());
        for (x, y) in a.grid.iter().zip(&b.grid) {
            assert_eq!(x.prompts_per_week, y.prompts_per_week);
        }
    }
}
