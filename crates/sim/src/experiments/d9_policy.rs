//! **D9 — the policy manager** (§4.2): how much interaction do signatures
//! and policies remove, and at what protection cost?
//!
//! "It would also be possible to implement a signature handling interface
//! … which — in turn — could considerably lower the need for user
//! interaction." … "allowing system owners to define policies … e.g., by
//! specifying that any software from trusted vendors should be allowed,
//! while other software only is allowed if it has a rating over 7.5/10 and
//! does not show any advertisements."
//!
//! Five arms execute the whole corpus once through a measurement client:
//!
//! 1. no client at all (the pre-reputation baseline: everything runs);
//! 2. client, dialog for everything (rating-aware but naive user);
//! 3. \+ trusted-vendor signatures;
//! 4. \+ the paper's example policy;
//! 5. a strict corporate policy.
//!
//! Measured: dialogs shown, automation rate, PIS that ran (infection), and
//! legitimate software wrongly blocked. A sidebar reproduces the §4.2
//! system-stability hazard (blocking essential components) and its
//! white-list fix.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softrep_client::os::{LaunchOutcome, SimOs};
use softrep_client::{ClientHook, CodeSignature, InProcessConnector, ReputationClient};
use softrep_crypto::ots::WinternitzKeypair;
use softrep_proto::message::SoftwareInfo;

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Community size building the ratings.
    pub users: usize,
    /// Installed programs per community member.
    pub installs_per_user: usize,
    /// Community weeks before measurement.
    pub weeks: usize,
    /// Number of vendors marked trusted (their legitimate releases are
    /// signed).
    pub trusted_vendors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            programs: 40,
            users: 30,
            installs_per_user: 12,
            weeks: 2,
            trusted_vendors: 3,
            seed: 101,
        }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            programs: 500,
            users: 600,
            installs_per_user: 25,
            weeks: 8,
            trusted_vendors: 5,
            seed: 101,
        }
    }
}

/// The §4.2 example policy, verbatim in the DSL (with the symmetric deny
/// rule that makes low ratings decisive too).
pub const PAPER_POLICY: &str = r#"
allow if signed_by_trusted
deny  if rating <= 4
allow if rating > 7.5 and not behaviour("popup_ads")
ask otherwise
"#;

/// A corporate lockdown policy.
pub const STRICT_POLICY: &str = r#"
allow if signed_by_trusted
deny  if behaviour("keylogger") or behaviour("data_exfiltration")
deny  if behaviour("popup_ads") or vendor_stripped
deny  if not has_rating
allow if rating >= 6.5 and vote_count >= 3
deny otherwise
"#;

/// One arm's measurements.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Arm label.
    pub label: String,
    /// Dialogs shown per program executed.
    pub dialog_rate: f64,
    /// Fraction of executions decided without the user.
    pub automation_rate: f64,
    /// Fraction of PIS (spyware + malware) that ran.
    pub pis_ran: f64,
    /// Fraction of legitimate software blocked.
    pub legit_blocked: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Arms 1–5.
    pub arms: Vec<ArmResult>,
    /// OS crashes in the §4.2 hazard sidebar: (without whitelist, with).
    pub crashes: (u64, u64),
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// The measurement user: consults the displayed rating, naive otherwise.
struct RatingAwareUser;

impl UserAgent for RatingAwareUser {
    fn decide(&mut self, ctx: &PromptContext) -> UserChoice {
        match ctx.report.as_ref().and_then(|r| r.rating) {
            Some(rating) if rating <= 4.0 => UserChoice::DenyAlways,
            Some(rating) if rating >= 7.0 => UserChoice::AllowAlways,
            // Unknown or middling: the naive default is to run it — the
            // §1 premise that users wave things through.
            _ => UserChoice::AllowOnce,
        }
    }

    fn rate(&mut self, _file: &str, _report: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

struct ArmSpec {
    label: &'static str,
    use_client: bool,
    signatures: bool,
    policy: Option<&'static str>,
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(
        config.users,
        &DEFAULT_MIX,
        universe.len(),
        config.installs_per_user,
        &mut rng,
    );
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );
    for _ in 0..config.weeks {
        harness.run_week(3, 0.2, 1);
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    // Sign the trusted vendors' legitimate releases.
    let trusted: Vec<String> =
        harness.universe.vendors.iter().take(config.trusted_vendors).cloned().collect();
    let mut signatures: HashMap<String, CodeSignature> = HashMap::new();
    let mut published_keys = Vec::new();
    for spec in &harness.universe.specs {
        let Some(vendor) = harness.universe.vendor_of(spec) else { continue };
        if !trusted.iter().any(|t| t == vendor) || !spec.category.is_legitimate() {
            continue;
        }
        let keypair = WinternitzKeypair::generate(&mut rng);
        let bytes = spec.exe.to_bytes();
        signatures.insert(
            spec.id_hex(),
            CodeSignature {
                vendor: vendor.to_string(),
                public_key: keypair.public_key().clone(),
                signature: keypair.sign(&bytes),
            },
        );
        published_keys.push((vendor.to_string(), keypair.public_key().clone()));
    }

    let arms_spec = [
        ArmSpec {
            label: "1: no client (baseline)",
            use_client: false,
            signatures: false,
            policy: None,
        },
        ArmSpec {
            label: "2: client, dialog for everything",
            use_client: true,
            signatures: false,
            policy: None,
        },
        ArmSpec {
            label: "3: + trusted signatures",
            use_client: true,
            signatures: true,
            policy: None,
        },
        ArmSpec {
            label: "4: + paper example policy",
            use_client: true,
            signatures: true,
            policy: Some(PAPER_POLICY),
        },
        ArmSpec {
            label: "5: strict corporate policy",
            use_client: true,
            signatures: true,
            policy: Some(STRICT_POLICY),
        },
    ];

    let mut arms = Vec::new();
    for (arm_idx, spec) in arms_spec.iter().enumerate() {
        arms.push(run_arm(&mut harness, spec, arm_idx, &signatures, &published_keys));
    }

    // Sidebar: the §4.2 crash hazard.
    let crashes = crash_sidebar(&mut harness);

    let mut table = TextTable::new(
        format!(
            "D9 — policy-manager automation over a {}-program corpus (ratings from {} users, {} weeks)",
            config.programs, config.users, config.weeks
        ),
        &["arm", "dialogs/exec", "automated", "PIS ran", "legit blocked"],
    );
    for arm in &arms {
        table.row(vec![
            arm.label.clone(),
            pct(arm.dialog_rate),
            pct(arm.automation_rate),
            pct(arm.pis_ran),
            pct(arm.legit_blocked),
        ]);
    }
    table.note("PIS = spyware + malware cells of Table 1; arm 1 runs everything by definition");

    let mut crash_table = TextTable::new(
        "D9 — §4.2 system-stability hazard",
        &["configuration", "OS crashes while exercising essential components"],
    );
    crash_table.row(vec!["deny-happy user, no white list".into(), crashes.0.to_string()]);
    crash_table.row(vec!["essential components pre-whitelisted".into(), crashes.1.to_string()]);
    crash_table.note(
        "\"we also handed them the ability to crash the entire system in a single mouse click\"",
    );

    Result { arms, crashes, tables: vec![table, crash_table] }
}

fn run_arm(
    harness: &mut SimHarness,
    spec: &ArmSpec,
    arm_idx: usize,
    signatures: &HashMap<String, CodeSignature>,
    published_keys: &[(String, softrep_crypto::ots::WinternitzPublicKey)],
) -> ArmResult {
    let total = harness.universe.len() as f64;
    let mut pis_total = 0usize;
    let mut legit_total = 0usize;
    let mut pis_ran = 0usize;
    let mut legit_blocked = 0usize;
    let mut dialogs = 0u64;

    if !spec.use_client {
        for program in &harness.universe.specs {
            if !program.category.is_legitimate() {
                pis_total += 1;
                pis_ran += 1;
            }
        }
        return ArmResult {
            label: spec.label.to_string(),
            dialog_rate: 0.0,
            automation_rate: 1.0,
            pis_ran: pis_ran as f64 / pis_total.max(1) as f64,
            legit_blocked: 0.0,
        };
    }

    let connector =
        InProcessConnector::new(std::sync::Arc::clone(&harness.server), "inspector-host");
    let clock: std::sync::Arc<dyn softrep_core::clock::Clock> =
        std::sync::Arc::new(harness.clock.clone());
    let mut client = ReputationClient::new(connector, clock);
    client
        .register_and_login(
            &format!("inspector{arm_idx}"),
            "pw",
            &format!("inspector{arm_idx}@lab.example"),
        )
        .expect("inspector joins");
    if spec.signatures {
        for (vendor, key) in published_keys {
            client.registry_mut().publish_key(vendor, key);
            client.registry_mut().trust_vendor(vendor);
        }
    }
    if let Some(text) = spec.policy {
        client.set_policy_text(text).expect("policy parses");
    }

    let mut user = RatingAwareUser;
    for program in harness.universe.specs.clone() {
        let signature = if spec.signatures { signatures.get(&program.id_hex()) } else { None };
        let outcome = client.handle_execution(&program.exe, signature, &mut user);
        if outcome.asked_user {
            dialogs += 1;
        }
        if program.category.is_legitimate() {
            legit_total += 1;
            if !outcome.allowed {
                legit_blocked += 1;
            }
        } else {
            pis_total += 1;
            if outcome.allowed {
                pis_ran += 1;
            }
        }
    }

    ArmResult {
        label: spec.label.to_string(),
        dialog_rate: dialogs as f64 / total,
        automation_rate: 1.0 - dialogs as f64 / total,
        pis_ran: pis_ran as f64 / pis_total.max(1) as f64,
        legit_blocked: legit_blocked as f64 / legit_total.max(1) as f64,
    }
}

/// The §4.2 hazard: a deny-happy user meets essential OS components, with
/// and without the pre-whitelist. Returns (crashes without, crashes with).
fn crash_sidebar(harness: &mut SimHarness) -> (u64, u64) {
    struct DenyHappy;
    impl UserAgent for DenyHappy {
        fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
            UserChoice::DenyOnce
        }
        fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
            None
        }
    }

    let essentials: Vec<_> =
        harness.universe.specs.iter().filter(|s| s.essential).cloned().collect();
    let signatures = HashMap::new();

    let run_once = |harness: &SimHarness, prewhitelist: bool| -> u64 {
        let mut os = SimOs::new();
        for e in &essentials {
            os.mark_essential(&e.id_hex());
        }
        let connector =
            InProcessConnector::new(std::sync::Arc::clone(&harness.server), "hazard-host");
        let clock: std::sync::Arc<dyn softrep_core::clock::Clock> =
            std::sync::Arc::new(harness.clock.clone());
        let mut client = ReputationClient::new(connector, clock);
        if prewhitelist {
            for e in &essentials {
                client.lists_mut().whitelist(&e.id_hex());
            }
        }
        let mut user = DenyHappy;
        let mut crashes = 0;
        for e in &essentials {
            let mut hook = ClientHook::new(&mut client, &mut user, &signatures);
            if os.launch(&e.exe, &mut hook) == LaunchOutcome::Crashed {
                crashes += 1;
                os.reboot();
            }
        }
        crashes
    };

    (run_once(harness, false), run_once(harness, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_and_policies_raise_automation() {
        let result = run(&Config::quick());
        let dialog_only = result.arms[1].automation_rate;
        let with_policy = result.arms[4].automation_rate;
        assert!(
            with_policy >= dialog_only,
            "the strict policy must automate at least as much: {dialog_only:.2} -> {with_policy:.2}"
        );
        assert_eq!(result.arms[4].dialog_rate, 0.0, "a deny-otherwise policy never asks");
    }

    #[test]
    fn any_client_beats_no_client_on_infection() {
        let result = run(&Config::quick());
        let baseline = result.arms[0].pis_ran;
        assert_eq!(baseline, 1.0, "without a client every PIS runs");
        for arm in &result.arms[1..] {
            assert!(
                arm.pis_ran < baseline,
                "{} must block some PIS ({:.2})",
                arm.label,
                arm.pis_ran
            );
        }
    }

    #[test]
    fn strict_policy_trades_false_positives_for_protection() {
        let result = run(&Config::quick());
        let strict = result.arms.last().unwrap();
        let dialog_only = &result.arms[1];
        assert!(strict.pis_ran <= dialog_only.pis_ran, "strict blocks more PIS");
    }

    #[test]
    fn whitelist_prevents_the_crash_hazard() {
        let result = run(&Config::quick());
        let (without, with) = result.crashes;
        assert!(without > 0, "the hazard must be reproducible");
        assert_eq!(with, 0, "pre-whitelisting the OS components removes it");
    }
}
