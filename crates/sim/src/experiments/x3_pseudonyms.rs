//! **X3 — pseudonymous participation** (extension; §5 future work).
//!
//! "Finally, it would be interesting to investigate how pseudonyms could
//! be used as a way to protect user privacy and anonymity, e.g. through
//! the use of idemix."
//!
//! Implemented with Chaum blind signatures over the workspace's own RSA:
//! each verified member may draw exactly one blind-signed credential and
//! redeem it — from a different network identity, with no session — as a
//! fully functional pseudonym account. The experiment runs the whole flow
//! through the server and then plays the breach adversary: given every
//! stored byte, how well can pseudonyms be linked back to members?
//!
//! The answer the construction guarantees: the server saw only blinded
//! group elements at issuance, so every pseudonym is equally likely to
//! belong to any credential-drawing member — an anonymity set equal to
//! the number of drawers. The experiment verifies the bookkeeping that
//! argument rests on (no e-mail digests on pseudonyms, no token reuse,
//! one credential per member) and measures the costs.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use softrep_crypto::bignum::BigUint;
use softrep_crypto::hex;
use softrep_crypto::rsa::{BlindingSession, RsaPublicKey};
use softrep_proto::{Request, Response};

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Verified members.
    pub members: usize,
    /// How many of them draw and redeem a pseudonym credential.
    pub pseudonym_users: usize,
    /// RSA modulus bits (small in quick mode for debug-build speed).
    pub key_bits: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { members: 8, pseudonym_users: 4, key_bits: 256, seed: 131 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config { members: 100, pseudonym_users: 40, key_bits: 1024, seed: 131 }
    }
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Pseudonym accounts successfully created.
    pub pseudonyms_created: usize,
    /// Pseudonym records found storing an e-mail digest (must be 0).
    pub pseudonyms_with_email: usize,
    /// Replayed tokens that minted a second account (must be 0).
    pub replays_accepted: usize,
    /// Second credentials issued to one member (must be 0).
    pub double_credentials: usize,
    /// The breach adversary's anonymity set per pseudonym (= members who
    /// drew a credential).
    pub anonymity_set: usize,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn fetch_key(harness: &SimHarness) -> RsaPublicKey {
    let Response::PseudonymKey { n, e } = harness.server.handle(&Request::GetPseudonymKey, "x3")
    else {
        panic!("pseudonym key must be configured for X3");
    };
    RsaPublicKey { n: BigUint::from_hex(&n).unwrap(), e: BigUint::from_hex(&e).unwrap() }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: 10, vendors: 3, ..Default::default() },
        &mut rng,
    );
    let users = build_population(config.members, &DEFAULT_MIX, universe.len(), 3, &mut rng);
    let harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig {
            seed: config.seed,
            pseudonym_key_bits: config.key_bits,
            ..Default::default()
        },
    );
    let public = fetch_key(&harness);

    let mut pseudonyms_created = 0usize;
    let mut replays_accepted = 0usize;
    let mut double_credentials = 0usize;
    let mut spent_tokens: Vec<(String, String)> = Vec::new();

    let drawers: Vec<String> = harness.users[..config.pseudonym_users.min(config.members)]
        .iter()
        .map(|u| u.name.clone())
        .collect();

    for (i, member) in drawers.iter().enumerate() {
        let session = harness.session_of(member).expect("member session").to_string();
        let mut token = [0u8; 32];
        rng.fill_bytes(&mut token);
        let (blind_session, blinded) = BlindingSession::blind(&token, &public, &mut rng);
        let Response::BlindSignature { value } = harness.server.handle(
            &Request::BlindSignPseudonym { session: session.clone(), blinded: blinded.to_hex() },
            "member-host",
        ) else {
            continue;
        };
        let signature = blind_session
            .unblind(&BigUint::from_hex(&value).unwrap())
            .expect("server signature verifies");

        // A second draw must be refused.
        let (_, blinded2) = BlindingSession::blind(b"greedy", &public, &mut rng);
        if matches!(
            harness.server.handle(
                &Request::BlindSignPseudonym { session, blinded: blinded2.to_hex() },
                "member-host",
            ),
            Response::BlindSignature { .. }
        ) {
            double_credentials += 1;
        }

        // Redeem from a fresh network identity, sessionless.
        let token_hex = hex::encode(&token);
        let sig_hex = signature.0.to_hex();
        let resp = harness.server.handle(
            &Request::RegisterPseudonym {
                username: format!("nym{i:03}"),
                password: "nym-pw".into(),
                token: token_hex.clone(),
                signature: sig_hex.clone(),
            },
            &format!("cafe-wifi-{i}"),
        );
        if resp == Response::Ok {
            pseudonyms_created += 1;
            spent_tokens.push((token_hex, sig_hex));
        }
    }

    // Replay every spent token once.
    for (i, (token, signature)) in spent_tokens.iter().enumerate() {
        let resp = harness.server.handle(
            &Request::RegisterPseudonym {
                username: format!("replay{i:03}"),
                password: "pw".into(),
                token: token.clone(),
                signature: signature.clone(),
            },
            "replay-host",
        );
        if resp == Response::Ok {
            replays_accepted += 1;
        }
    }

    // Breach audit over the stored records.
    let mut pseudonyms_with_email = 0usize;
    let mut credential_drawers = 0usize;
    for i in 0..pseudonyms_created {
        let record = harness.db().user(&format!("nym{i:03}")).unwrap().unwrap();
        assert!(record.pseudonym);
        if !record.email_digest.is_empty() {
            pseudonyms_with_email += 1;
        }
    }
    for member in &drawers {
        if harness.db().user(member).unwrap().unwrap().pseudonym_credential_issued {
            credential_drawers += 1;
        }
    }

    let mut table = TextTable::new(
        format!(
            "X3 — pseudonymous participation ({}-bit blind-signature credentials)",
            config.key_bits
        ),
        &["measure", "value"],
    );
    table.row(vec!["members".into(), config.members.to_string()]);
    table.row(vec!["credential drawers".into(), credential_drawers.to_string()]);
    table.row(vec!["pseudonyms created".into(), pseudonyms_created.to_string()]);
    table.row(vec![
        "pseudonym records storing an e-mail digest".into(),
        pseudonyms_with_email.to_string(),
    ]);
    table.row(vec!["token replays accepted".into(), replays_accepted.to_string()]);
    table.row(vec!["second credentials issued".into(), double_credentials.to_string()]);
    table.row(vec![
        "breach adversary's anonymity set per pseudonym".into(),
        format!(
            "{credential_drawers} (best linking = {})",
            pct(1.0 / credential_drawers.max(1) as f64)
        ),
    ]);
    table.note("the server signed only blinded elements, so stored data cannot link a pseudonym to its member (§5 / Chaum)");

    Result {
        pseudonyms_created,
        pseudonyms_with_email,
        replays_accepted,
        double_credentials,
        anonymity_set: credential_drawers,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudonym_flow_holds_all_guarantees() {
        let result = run(&Config::quick());
        assert_eq!(result.pseudonyms_created, 4);
        assert_eq!(result.pseudonyms_with_email, 0);
        assert_eq!(result.replays_accepted, 0);
        assert_eq!(result.double_credentials, 0);
        assert_eq!(result.anonymity_set, 4);
    }
}
