//! **D4 — the trust growth schedule**: §3.2's cap in numbers.
//!
//! "The reputation system has implemented a growth limitation on users'
//! trust factors, by setting the maximum growth per week to 5 units.
//! Hence, you can reach a maximum trust factor of 5 the first week you are
//! a member, 10 the second week, and so on. Thereby preventing any user
//! from gaining a high trust factor and a high influence without proving
//! themselves worthy of it over a relatively long period of time."
//!
//! The experiment traces three accounts over a year — a celebrated expert
//! (maximal positive remarks every week), a typical member (+1/week), and
//! a freshly-registered Sybil — and reports the attacker's maximum vote-
//! weight share against a mature community of a given size.

use softrep_core::clock::Timestamp;
use softrep_core::model::TrustRecord;
use softrep_core::trust::TrustEngine;

use crate::report::{pct, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Weeks traced.
    pub weeks: u64,
    /// Weeks sampled into the output table.
    pub sample_every: u64,
    /// Honest community size for the weight-share computation.
    pub community: usize,
    /// Sybil accounts the attacker registers at the measurement instant.
    pub sybils: usize,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { weeks: 12, sample_every: 4, community: 50, sybils: 10 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config { weeks: 52, sample_every: 4, community: 1_000, sybils: 100 }
    }
}

/// One sampled week.
#[derive(Debug, Clone, Copy)]
pub struct WeekSample {
    /// Week index.
    pub week: u64,
    /// Theoretical maximum reachable trust.
    pub max_reachable: f64,
    /// The celebrated expert's actual trust.
    pub expert: f64,
    /// The typical member's trust.
    pub typical: f64,
    /// Attacker weight share at this community age: `sybils × 1` against
    /// `community × typical`.
    pub attacker_share: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Sampled weeks.
    pub samples: Vec<WeekSample>,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn at_week(w: u64) -> Timestamp {
    Timestamp::ZERO.plus_weeks(w)
}

/// Run the experiment. Pure `TrustEngine` arithmetic — no harness needed.
pub fn run(config: &Config) -> Result {
    let mut expert: TrustRecord = TrustEngine::new_user("expert", at_week(0));
    let mut typical: TrustRecord = TrustEngine::new_user("typical", at_week(0));

    let mut samples = Vec::new();
    for week in 0..=config.weeks {
        if week > 0 {
            // The expert maxes the weekly allowance; the typical member
            // earns one positive remark a week.
            TrustEngine::apply_delta(&mut expert, f64::INFINITY, at_week(week));
            TrustEngine::apply_delta(&mut typical, 1.0, at_week(week));
        }
        if week % config.sample_every == 0 || week == config.weeks {
            let honest_mass = config.community as f64 * typical.trust;
            let attacker_mass = config.sybils as f64 * 1.0; // newcomers hold trust 1
            samples.push(WeekSample {
                week,
                max_reachable: TrustEngine::max_reachable(week),
                expert: expert.trust,
                typical: typical.trust,
                attacker_share: attacker_mass / (attacker_mass + honest_mass),
            });
        }
    }

    let mut table = TextTable::new(
        format!(
            "D4 — trust growth under the +5/week cap ({} honest members vs {} fresh sybils)",
            config.community, config.sybils
        ),
        &["week", "max reachable", "expert", "typical member", "sybil weight share"],
    );
    for s in &samples {
        table.row(vec![
            s.week.to_string(),
            format!("{:.0}", s.max_reachable),
            format!("{:.0}", s.expert),
            format!("{:.1}", s.typical),
            pct(s.attacker_share),
        ]);
    }
    table.note(
        "sybils always weigh 1 (the newcomer minimum); their share decays as honest trust matures",
    );

    Result { samples, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    use softrep_core::trust::MAX_TRUST;

    #[test]
    fn expert_tracks_the_cap_schedule() {
        let result = run(&Config::quick());
        for s in &result.samples {
            assert!(s.expert <= s.max_reachable);
            assert!(s.expert <= MAX_TRUST);
            // The maximal earner stays within one weekly allowance of the
            // theoretical bound.
            assert!(s.max_reachable - s.expert <= 5.0 + 1e-9, "week {}", s.week);
        }
    }

    #[test]
    fn attacker_share_decays_with_community_age() {
        let result = run(&Config::quick());
        let first = result.samples.first().unwrap().attacker_share;
        let last = result.samples.last().unwrap().attacker_share;
        assert!(last < first, "sybil share must decay: {first:.3} -> {last:.3}");
    }

    #[test]
    fn typical_member_grows_one_unit_per_week() {
        let result = run(&Config::quick());
        for s in &result.samples {
            assert!((s.typical - (1.0 + s.week as f64)).abs() < 1e-9, "week {}", s.week);
        }
    }

    #[test]
    fn full_year_reaches_the_ceiling() {
        let result = run(&Config::full());
        let last = result.samples.last().unwrap();
        assert_eq!(last.expert, MAX_TRUST, "a year of maximal remarks reaches 100");
    }
}
