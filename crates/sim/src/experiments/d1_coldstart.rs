//! **D1 — cold start ("budding phase")**: the three §2.1 mitigations.
//!
//! "If the number of users is low, compared to the number of software to
//! be rated, there is a big risk that many software will be without any,
//! or with just a few, votes." The experiment grows the member base week
//! by week and measures:
//!
//! * vote **coverage** (fraction of the corpus with ≥ k votes) and rating
//!   error, with and without **bootstrapping** the database from an
//!   external source (mitigation 2);
//! * the **junk-comment exposure** and publication latency under open
//!   publication vs. **administrator moderation** with finite weekly
//!   capacity (mitigation 3). (Mitigation 1 — trust weighting — gets its
//!   own experiment, D2.)

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use softrep_core::bootstrap::BootstrapEntry;
use softrep_core::moderation::{ModerationDecision, ModerationPolicy};

use crate::harness::{HarnessConfig, SimHarness, JUNK_MARKER};
use crate::metrics;
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{fmt_opt, pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size ("well over 2000 rated software programs").
    pub programs: usize,
    /// Final community size.
    pub users_final: usize,
    /// Members active in week 0.
    pub users_initial: usize,
    /// Weeks simulated.
    pub weeks: usize,
    /// Installed programs per user.
    pub installs_per_user: usize,
    /// Fraction of the corpus seeded by the bootstrap arm.
    pub bootstrap_fraction: f64,
    /// Coverage threshold k (programs with ≥ k votes count as covered).
    pub coverage_k: usize,
    /// Administrator reviews per week in the moderated arm.
    pub admin_capacity_per_week: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            programs: 60,
            users_final: 30,
            users_initial: 6,
            weeks: 3,
            installs_per_user: 8,
            bootstrap_fraction: 0.5,
            coverage_k: 3,
            admin_capacity_per_week: 10,
            seed: 31,
        }
    }

    /// Headline run (2 000 programs as reported by the deployment).
    pub fn full() -> Self {
        Config {
            programs: 2_000,
            users_final: 1_200,
            users_initial: 100,
            weeks: 12,
            installs_per_user: 25,
            bootstrap_fraction: 0.5,
            coverage_k: 5,
            admin_capacity_per_week: 150,
            seed: 31,
        }
    }
}

/// Weekly series for one arm.
#[derive(Debug, Clone, Default)]
pub struct ArmSeries {
    /// Coverage (≥ k votes) per week.
    pub coverage: Vec<f64>,
    /// Weighted-rating MAE per week (None before any rating).
    pub mae: Vec<Option<f64>>,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Plain arm.
    pub plain: ArmSeries,
    /// Bootstrapped arm.
    pub bootstrapped: ArmSeries,
    /// Junk fraction among *visible* comments, open publication.
    pub junk_visible_open: f64,
    /// Junk fraction among visible comments under moderation.
    pub junk_visible_moderated: f64,
    /// Mean review latency (hours) under moderation.
    pub review_latency_hours: f64,
    /// Moderation backlog at the end.
    pub moderation_backlog: u64,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn active_count(config: &Config, week: usize) -> usize {
    // Linear community growth from users_initial to users_final.
    if config.weeks <= 1 {
        return config.users_final;
    }
    let span = config.users_final - config.users_initial;
    config.users_initial + span * week / (config.weeks - 1)
}

fn build_harness(config: &Config, moderation: ModerationPolicy, seed_offset: u64) -> SimHarness {
    let mut rng = StdRng::seed_from_u64(config.seed + seed_offset);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(
        config.users_final,
        &DEFAULT_MIX,
        universe.len(),
        config.installs_per_user,
        &mut rng,
    );
    SimHarness::new(
        universe,
        users,
        &HarnessConfig {
            seed: config.seed,
            puzzle_difficulty: 0,
            moderation,
            ..Default::default()
        },
    )
}

fn run_growth_arm(config: &Config, bootstrap: bool) -> ArmSeries {
    let mut harness = build_harness(config, ModerationPolicy::Open, 0);
    if bootstrap {
        let mut rng = StdRng::seed_from_u64(config.seed + 99);
        let count = (config.programs as f64 * config.bootstrap_fraction) as usize;
        let entries: Vec<BootstrapEntry> = harness.universe.specs[..count]
            .iter()
            .map(|spec| BootstrapEntry {
                software_id: spec.id_hex(),
                // The external database is "more or less reliable": truth
                // plus mild noise.
                rating: (spec.true_quality + rng.gen_range(-1.0..1.0)).clamp(1.0, 10.0),
                vote_count: rng.gen_range(10..30),
                behaviours: spec.behaviours.clone(),
            })
            .collect();
        harness.db().bootstrap(&entries, harness.now()).unwrap();
    }

    let mut series = ArmSeries::default();
    for week in 0..config.weeks {
        let active = active_count(config, week);
        harness.run_week_for(0..active, 2, 0.0, 0);
        series.coverage.push(metrics::vote_coverage(
            harness.db(),
            &harness.universe,
            config.coverage_k,
        ));
        series.mae.push(metrics::weighted_rating_mae(harness.db(), &harness.universe));
    }
    series
}

struct ModerationMeasures {
    junk_visible: f64,
    review_latency_hours: f64,
    backlog: u64,
}

fn run_moderation_arm(config: &Config, policy: ModerationPolicy) -> ModerationMeasures {
    let mut harness = build_harness(config, policy, 7);
    for week in 0..config.weeks {
        let active = active_count(config, week);
        harness.run_week_for(0..active, 1, 0.6, 0);
        if policy == ModerationPolicy::PreApproval {
            // The administrator reviews up to capacity, approving useful
            // comments and rejecting junk (admins are assumed competent;
            // their bottleneck is throughput — exactly the §2.1 concern).
            let pending = harness.db().pending_comments().unwrap();
            for comment in pending.into_iter().take(config.admin_capacity_per_week) {
                let decision = if comment.text.contains(JUNK_MARKER) {
                    ModerationDecision::Reject
                } else {
                    ModerationDecision::Approve
                };
                harness.db().moderate_comment(comment.id, decision, harness.now()).unwrap();
            }
        }
    }

    // Visible junk fraction over the whole corpus.
    let mut visible = 0usize;
    let mut junk = 0usize;
    for spec in &harness.universe.specs {
        for pc in harness.db().comments_for(&spec.id_hex()).unwrap() {
            visible += 1;
            if pc.comment.text.contains(JUNK_MARKER) {
                junk += 1;
            }
        }
    }
    let stats = harness.db().moderation_stats();
    ModerationMeasures {
        junk_visible: if visible == 0 { 0.0 } else { junk as f64 / visible as f64 },
        review_latency_hours: stats.mean_review_latency_secs() / 3_600.0,
        backlog: stats.pending,
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let plain = run_growth_arm(config, false);
    let bootstrapped = run_growth_arm(config, true);
    let open = run_moderation_arm(config, ModerationPolicy::Open);
    let moderated = run_moderation_arm(config, ModerationPolicy::PreApproval);

    let mut growth = TextTable::new(
        format!(
            "D1 — cold start: coverage (≥{} votes) & rating error, {} programs",
            config.coverage_k, config.programs
        ),
        &[
            "week",
            "members",
            "coverage plain",
            "coverage bootstrapped",
            "MAE plain",
            "MAE bootstrapped",
        ],
    );
    for week in 0..config.weeks {
        growth.row(vec![
            week.to_string(),
            active_count(config, week).to_string(),
            pct(plain.coverage[week]),
            pct(bootstrapped.coverage[week]),
            fmt_opt(plain.mae[week]),
            fmt_opt(bootstrapped.mae[week]),
        ]);
    }
    growth.note(format!(
        "bootstrap arm seeds {} of the corpus from an external database (§2.1 mitigation 2)",
        pct(config.bootstrap_fraction)
    ));

    let mut moderation = TextTable::new(
        "D1 — moderation: junk exposure vs. administrator cost (§2.1 mitigation 3)",
        &["arm", "junk among visible comments", "mean review latency (h)", "backlog"],
    );
    moderation.row(vec![
        "open publication".into(),
        pct(open.junk_visible),
        "0.00".into(),
        "0".into(),
    ]);
    moderation.row(vec![
        format!("pre-approval ({} reviews/week)", config.admin_capacity_per_week),
        pct(moderated.junk_visible),
        format!("{:.2}", moderated.review_latency_hours),
        moderated.backlog.to_string(),
    ]);
    moderation.note("moderation removes junk at the price of latency and manual work — the paper's stated trade-off");

    Result {
        plain,
        bootstrapped,
        junk_visible_open: open.junk_visible,
        junk_visible_moderated: moderated.junk_visible,
        review_latency_hours: moderated.review_latency_hours,
        moderation_backlog: moderated.backlog,
        tables: vec![growth, moderation],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_dominates_early_coverage() {
        let result = run(&Config::quick());
        // In week 0 the bootstrapped arm must already have large coverage
        // (seeded with 10–30 votes per seeded program).
        assert!(
            result.bootstrapped.coverage[0] > result.plain.coverage[0],
            "bootstrapped {:.2} must exceed plain {:.2} in week 0",
            result.bootstrapped.coverage[0],
            result.plain.coverage[0],
        );
        assert!(result.bootstrapped.coverage[0] >= 0.4, "half the corpus was seeded");
    }

    #[test]
    fn plain_coverage_grows_with_membership() {
        let result = run(&Config::quick());
        let first = result.plain.coverage.first().copied().unwrap();
        let last = result.plain.coverage.last().copied().unwrap();
        assert!(last >= first, "coverage must not shrink: {first} -> {last}");
    }

    #[test]
    fn moderation_reduces_visible_junk_at_a_latency_cost() {
        let result = run(&Config::quick());
        assert!(
            result.junk_visible_moderated <= result.junk_visible_open,
            "moderated junk {:.2} must not exceed open junk {:.2}",
            result.junk_visible_moderated,
            result.junk_visible_open
        );
        // Open publication pays no review latency; moderation does (or has
        // an outstanding backlog when capacity is too small).
        assert!(result.review_latency_hours > 0.0 || result.moderation_backlog > 0);
    }

    #[test]
    fn tables_render() {
        let result = run(&Config::quick());
        assert_eq!(result.tables.len(), 2);
        assert!(result.tables[0].render().contains("cold start"));
        assert!(result.tables[1].render().contains("moderation"));
    }
}
