//! One module per reproduced table/figure (see DESIGN.md §3 and
//! EXPERIMENTS.md).
//!
//! Every experiment exposes a `Config` with `quick()` (used by unit tests;
//! seconds in debug builds) and `full()` (used by the bench harness
//! binaries; the headline numbers recorded in EXPERIMENTS.md), and a
//! `run(&Config)` returning both structured results and printable
//! [`crate::report::TextTable`]s.

pub mod d1_coldstart;
pub mod d2_trust_weighting;
pub mod d3_attacks;
pub mod d4_trust_growth;
pub mod d5_interruption;
pub mod d6_baseline;
pub mod d7_identity;
pub mod d8_privacy;
pub mod d9_policy;
pub mod t1_taxonomy;
pub mod t2_transform;
pub mod x1_evidence;
pub mod x2_feeds;
pub mod x3_pseudonyms;
