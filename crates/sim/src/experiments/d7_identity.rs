//! **D7 — hash identity under polymorphic evasion** (§3.3).
//!
//! "Questionable software vendors … could try to make each instance of
//! their software applications differ slightly between each other so that
//! each one has its own distinct hash value. The countermeasure … would be
//! to instead map all ratings to the software vendor … To fight that
//! countermeasure some vendors might try to remove their company name from
//! the binary files. If this should happen it could be used as a signal
//! for PIS."
//!
//! The experiment ships an adware program as N polymorphic variants and
//! measures how per-version ratings dilute as N grows, how the vendor-
//! level aggregate restores the signal, and how stripping the vendor
//! metadata trades one signal (ratings) for another (the missing-vendor
//! flag).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use softrep_core::identity::SyntheticExecutable;
use softrep_core::taxonomy::{ConsentLevel, ConsequenceLevel, PisCategory};

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{fmt_opt, pct, TextTable};
use crate::universe::{SoftwareSpec, Universe};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Variant counts to sweep.
    pub variant_counts: Vec<usize>,
    /// Community size (every member encounters exactly one variant).
    pub users: usize,
    /// Weeks of voting.
    pub weeks: usize,
    /// Votes needed for a "usable" per-version rating.
    pub min_votes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { variant_counts: vec![1, 10], users: 40, weeks: 2, min_votes: 3, seed: 81 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            variant_counts: vec![1, 10, 50, 200, 500],
            users: 1_000,
            weeks: 4,
            min_votes: 5,
            seed: 81,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Number of polymorphic variants shipped.
    pub variants: usize,
    /// Mean votes per variant.
    pub votes_per_variant: f64,
    /// Fraction of variants with a usable rating (≥ min_votes).
    pub usable_version_ratings: f64,
    /// The vendor-level rating (aggregated over all variants).
    pub vendor_rating: Option<f64>,
    /// Ground-truth quality of the adware.
    pub true_quality: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One point per variant count.
    pub points: Vec<SweepPoint>,
    /// Did the stripped-vendor arm raise the PIS signal?
    pub stripped_flagged: bool,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// Build a universe containing only the polymorphic campaign.
fn campaign_universe(variants: usize, seed: u64) -> Universe {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = SyntheticExecutable::new(
        "weatherdeals.exe",
        "PolyCorp Media",
        "3.1",
        (0..256).map(|_| rand::Rng::gen::<u8>(&mut rng)).collect(),
    );
    let category = PisCategory::classify(ConsentLevel::Medium, ConsequenceLevel::Moderate);
    let specs: Vec<SoftwareSpec> = (0..variants)
        .map(|i| SoftwareSpec {
            exe: if i == 0 { base.clone() } else { base.polymorphic_variant(i as u64) },
            category,
            true_quality: 2.8,
            behaviours: vec!["popup_ads".into(), "tracking".into()],
            honestly_disclosed: false,
            eula_words: 6_500,
            essential: false,
            vendor_index: Some(0),
        })
        .collect();
    Universe { specs, vendors: vec!["PolyCorp Media".to_string()] }
}

fn run_point(config: &Config, variants: usize) -> SweepPoint {
    let universe = campaign_universe(variants, config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed + 1);
    // Every user "downloads" one random variant (the distribution attack:
    // each download is a fresh binary).
    let mut users = build_population(config.users, &DEFAULT_MIX, universe.len(), 1, &mut rng);
    for user in &mut users {
        user.installed = vec![*(0..universe.len()).collect::<Vec<_>>().choose(&mut rng).unwrap()];
    }
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );
    for _ in 0..config.weeks {
        harness.run_week(1, 0.0, 0);
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    let mut total_votes = 0usize;
    let mut usable = 0usize;
    for spec in &harness.universe.specs {
        let votes = harness.db().votes_for(&spec.id_hex()).unwrap().len();
        total_votes += votes;
        if votes >= config.min_votes {
            usable += 1;
        }
    }
    let vendor = harness.db().vendor_report("PolyCorp Media").unwrap();

    SweepPoint {
        variants,
        votes_per_variant: total_votes as f64 / variants as f64,
        usable_version_ratings: usable as f64 / variants as f64,
        vendor_rating: vendor.rating,
        true_quality: 2.8,
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let points: Vec<SweepPoint> =
        config.variant_counts.iter().map(|&n| run_point(config, n)).collect();

    // The stripped arm: the same binary without vendor metadata. The
    // missing company name is itself the §3.3 PIS signal.
    let stripped = campaign_universe(1, config.seed).specs[0].exe.stripped();
    let stripped_flagged = stripped.company.is_none();

    let mut table = TextTable::new(
        format!("D7 — polymorphic dilution vs. vendor aggregation ({} voters)", config.users),
        &["variants", "votes/variant", "usable version ratings", "vendor rating", "truth"],
    );
    for p in &points {
        table.row(vec![
            p.variants.to_string(),
            format!("{:.1}", p.votes_per_variant),
            pct(p.usable_version_ratings),
            fmt_opt(p.vendor_rating),
            format!("{:.1}", p.true_quality),
        ]);
    }
    table.note("per-version ratings dilute with variant count; the vendor aggregate keeps tracking truth (§3.3)");
    table.note(format!(
        "stripped-vendor counter-countermeasure raises the missing-metadata PIS signal: {}",
        if stripped_flagged { "yes" } else { "no" }
    ));

    Result { points, stripped_flagged, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilution_grows_with_variant_count() {
        let result = run(&Config::quick());
        let single = &result.points[0];
        let many = result.points.last().unwrap();
        assert!(
            many.votes_per_variant < single.votes_per_variant,
            "votes/variant must fall: {} -> {}",
            single.votes_per_variant,
            many.votes_per_variant
        );
        assert!(many.usable_version_ratings <= single.usable_version_ratings);
    }

    #[test]
    fn vendor_rating_survives_dilution() {
        let result = run(&Config::quick());
        for p in &result.points {
            let vendor = p.vendor_rating.expect("vendor rating must exist at every point");
            assert!(
                (vendor - p.true_quality).abs() < 2.5,
                "vendor rating {vendor:.2} should track truth {:.1} at {} variants",
                p.true_quality,
                p.variants
            );
        }
    }

    #[test]
    fn stripping_raises_the_pis_signal() {
        let result = run(&Config::quick());
        assert!(result.stripped_flagged);
    }

    #[test]
    fn all_variants_have_distinct_ids() {
        let universe = campaign_universe(10, 3);
        let ids: std::collections::HashSet<String> =
            universe.specs.iter().map(SoftwareSpec::id_hex).collect();
        assert_eq!(ids.len(), 10);
    }
}
