//! **T1 — Table 1**: classification of privacy-invasive software with
//! respect to user's informed consent (high/medium/low) and negative user
//! consequences (tolerable/moderate/severe).
//!
//! The paper's Table 1 is definitional; the reproduction instantiates it:
//! generate a synthetic corpus with ground-truth consent/consequence per
//! program, classify every program through
//! [`softrep_core::taxonomy::PisCategory::classify`], and print the 3×3
//! grid with the paper's cell names and numbers, plus the §1.1 group
//! totals (legitimate / spyware / malware).

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::taxonomy::PisCategory;

use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { programs: 200, seed: 11 }
    }

    /// Headline run (the corpus size the deployment reported: "well over
    /// 2000 rated software programs" → 2 000, scaled to 1 000 programs ×
    /// multiple versions elsewhere).
    pub fn full() -> Self {
        Config { programs: 2_000, seed: 11 }
    }
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Count per Table 1 cell (index = cell number − 1).
    pub cell_counts: [usize; 9],
    /// §1.1 group totals: (legitimate, spyware, malware).
    pub group_counts: (usize, usize, usize),
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );

    // Classify every program from its ground truth (the classification
    // function, not the stored label, is what is under test).
    let mut cell_counts = [0usize; 9];
    let mut groups = (0usize, 0usize, 0usize);
    for spec in &universe.specs {
        let category = PisCategory::classify(spec.category.consent(), spec.category.consequence());
        assert_eq!(category, spec.category, "classification must be total and stable");
        cell_counts[(category.cell_number() - 1) as usize] += 1;
        if category.is_legitimate() {
            groups.0 += 1;
        } else if category.is_spyware() {
            groups.1 += 1;
        } else {
            groups.2 += 1;
        }
    }

    let mut grid = TextTable::new(
        format!("T1 / Table 1 — PIS classification of a {}-program corpus", config.programs),
        &["consent \\ consequence", "Tolerable", "Moderate", "Severe"],
    );
    for (row_label, base) in [("High consent", 0usize), ("Medium consent", 3), ("Low consent", 6)] {
        let cells: Vec<String> = (0..3)
            .map(|col| {
                let cell = base + col;
                let cat = PisCategory::all()[cell];
                format!("{}) {} [{}]", cat.cell_number(), cat.name(), cell_counts[cell])
            })
            .collect();
        grid.row(vec![row_label.to_string(), cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    }
    grid.note("cell layout and names exactly as the paper's Table 1; [n] = corpus count");

    let total = config.programs as f64;
    let mut totals =
        TextTable::new("T1 — §1.1 group totals", &["group", "cells", "programs", "share"]);
    totals.row(vec![
        "legitimate software".into(),
        "1".into(),
        groups.0.to_string(),
        pct(groups.0 as f64 / total),
    ]);
    totals.row(vec![
        "spyware (grey zone)".into(),
        "2, 4, 5".into(),
        groups.1.to_string(),
        pct(groups.1 as f64 / total),
    ]);
    totals.row(vec![
        "malware".into(),
        "3, 6, 7, 8, 9".into(),
        groups.2.to_string(),
        pct(groups.2 as f64 / total),
    ]);

    Result { cell_counts, group_counts: groups, tables: vec![grid, totals] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cover_corpus_and_groups_partition() {
        let result = run(&Config::quick());
        assert_eq!(result.cell_counts.iter().sum::<usize>(), 200);
        let (l, s, m) = result.group_counts;
        assert_eq!(l + s + m, 200);
        // Group membership by cells (§1.1).
        assert_eq!(l, result.cell_counts[0]);
        assert_eq!(s, result.cell_counts[1] + result.cell_counts[3] + result.cell_counts[4]);
    }

    #[test]
    fn tables_render_paper_cell_names() {
        let result = run(&Config::quick());
        let rendered = result.tables[0].render();
        for name in [
            "Legitimate software",
            "Adverse software",
            "Double agents",
            "Semi-transparent software",
            "Unsolicited software",
            "Semi-parasites",
            "Covert software",
            "Trojans",
            "Parasites",
        ] {
            assert!(rendered.contains(name), "missing cell name {name}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run(&Config::quick());
        let b = run(&Config::quick());
        assert_eq!(a.cell_counts, b.cell_counts);
    }
}
