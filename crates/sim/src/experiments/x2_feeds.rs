//! **X2 — expert-group rating feeds** (extension; §4.2 improvement).
//!
//! "Allowing for instance organisations or groups of technically skilled
//! individuals to publish their software ratings and other feedback within
//! the reputation system … Allowing computer users to subscribe to
//! information from organisations or groups that they find trustworthy,
//! i.e. not having to worry about unskilled users that might negatively
//! influence the information."
//!
//! Scenario: a brand-new deployment (no community ratings yet) and a
//! security team that has already vetted part of the corpus and published
//! its verdicts as a feed. A subscriber's policy keys on `feed_rating`;
//! a non-subscriber has nothing to go on. The experiment measures the
//! protection delta during exactly the cold-start window where the
//! community signal does not exist yet.

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softrep_client::{InProcessConnector, ReputationClient};
use softrep_proto::message::SoftwareInfo;

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Fraction of the corpus the security team has vetted.
    pub vetted_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { programs: 40, vetted_fraction: 0.6, seed: 121 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config { programs: 500, vetted_fraction: 0.6, seed: 121 }
    }
}

/// One arm's measurements.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Arm label.
    pub label: String,
    /// Fraction of PIS that ran.
    pub pis_ran: f64,
    /// Fraction of legitimate software blocked.
    pub legit_blocked: f64,
    /// Dialogs per execution.
    pub dialog_rate: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Non-subscriber and subscriber arms.
    pub arms: Vec<ArmResult>,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// The subscriber's policy: trust the feed where it speaks, ask otherwise.
const SUBSCRIBER_POLICY: &str = r#"
deny  if feed_rating <= 4
allow if feed_rating >= 7
ask otherwise
"#;

struct NaiveUser {
    dialogs: u64,
}

impl UserAgent for NaiveUser {
    fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
        self.dialogs += 1;
        // Cold start: no information in the dialog either, the §1 default
        // is to click through.
        UserChoice::AllowOnce
    }
    fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    // A tiny population — only the security team needs an account; there
    // is deliberately NO community voting phase.
    let users = build_population(1, &DEFAULT_MIX, universe.len(), 1, &mut rng);
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );

    // The security team vets the first fraction of the corpus and
    // publishes verdicts derived from ground truth (they are experts).
    let sec_session = harness.join("sec-team-lead");
    let _ = sec_session;
    harness.db().create_feed("sec-team", "sec-team-lead", harness.now()).unwrap();
    let vetted = (config.programs as f64 * config.vetted_fraction) as usize;
    let now = harness.now();
    for spec in &harness.universe.specs[..vetted] {
        harness
            .db()
            .publish_feed_entry(
                "sec-team-lead",
                "sec-team",
                &spec.id_hex(),
                spec.true_quality.clamp(1.0, 10.0),
                spec.behaviours.clone(),
                now,
            )
            .unwrap();
    }

    let mut arms = Vec::new();
    for (label, subscribe) in [("non-subscriber (cold start)", false), ("feed subscriber", true)] {
        let connector = InProcessConnector::new(std::sync::Arc::clone(&harness.server), "x2-host");
        let clock: std::sync::Arc<dyn softrep_core::clock::Clock> =
            std::sync::Arc::new(harness.clock.clone());
        let mut client = ReputationClient::new(connector, clock);
        client.set_policy_text(SUBSCRIBER_POLICY).expect("policy parses");
        if subscribe {
            client.subscribe_feed("sec-team");
        }

        let mut user = NaiveUser { dialogs: 0 };
        let mut pis = (0usize, 0usize);
        let mut legit = (0usize, 0usize);
        for spec in harness.universe.specs.clone() {
            let outcome = client.handle_execution(&spec.exe, None, &mut user);
            if spec.category.is_legitimate() {
                legit.1 += 1;
                if !outcome.allowed {
                    legit.0 += 1;
                }
            } else {
                pis.1 += 1;
                if outcome.allowed {
                    pis.0 += 1;
                }
            }
        }
        arms.push(ArmResult {
            label: label.to_string(),
            pis_ran: pis.0 as f64 / pis.1.max(1) as f64,
            legit_blocked: legit.0 as f64 / legit.1.max(1) as f64,
            dialog_rate: user.dialogs as f64 / config.programs as f64,
        });
    }

    let mut table = TextTable::new(
        format!(
            "X2 — feed subscriptions at cold start ({} of {} programs vetted by the publisher)",
            pct(config.vetted_fraction),
            config.programs
        ),
        &["arm", "PIS ran", "legit blocked", "dialogs/exec"],
    );
    for arm in &arms {
        table.row(vec![
            arm.label.clone(),
            pct(arm.pis_ran),
            pct(arm.legit_blocked),
            pct(arm.dialog_rate),
        ]);
    }
    table.note("no community votes exist yet; the feed is the only signal (§4.2 subscriptions)");

    Result { arms, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_protects_during_cold_start() {
        let result = run(&Config::quick());
        let cold = &result.arms[0];
        let subscribed = &result.arms[1];
        assert_eq!(cold.pis_ran, 1.0, "with no signal at all, everything runs");
        assert!(
            subscribed.pis_ran < cold.pis_ran,
            "the feed must block vetted PIS: {:.2} vs {:.2}",
            subscribed.pis_ran,
            cold.pis_ran
        );
    }

    #[test]
    fn subscription_reduces_dialogs() {
        let result = run(&Config::quick());
        assert!(result.arms[1].dialog_rate < result.arms[0].dialog_rate);
    }

    #[test]
    fn expert_feed_causes_no_false_positives() {
        // The publisher rates from ground truth, so legitimate software
        // (quality well above 4) is never denied by the feed rule.
        let result = run(&Config::quick());
        assert!(result.arms[1].legit_blocked < 0.1);
    }
}
