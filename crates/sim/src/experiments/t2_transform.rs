//! **T2 — Table 2**: the grey-zone collapse.
//!
//! §4.1: "all PIS that previously have suffered from a medium user consent
//! level, now instead would be transformed into either a high consent
//! level (i.e. legitimate software) or a low consent level (i.e.
//! malware)." The reproduction runs a community until ratings exist, then
//! applies the transform to every program *whose behaviour the reputation
//! system actually revealed* (a rating plus reported behaviours); grey-
//! zone programs the system has not yet covered stay in the grey zone —
//! quantifying how much of the paper's idealised Table 2 a real deployment
//! achieves at a given coverage.

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::taxonomy::{transform_with_reputation, ConsentLevel};

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Community size.
    pub users: usize,
    /// Installed programs per user.
    pub installs_per_user: usize,
    /// Community weeks before measuring.
    pub weeks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { programs: 40, users: 25, installs_per_user: 10, weeks: 2, seed: 21 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config { programs: 600, users: 400, installs_per_user: 25, weeks: 8, seed: 21 }
    }
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Table 1 cell counts before the transform.
    pub before: [usize; 9],
    /// Table 2 cell counts after (indexed by cell number − 1; indices
    /// 3..=5 — the medium row — stay zero for covered programs).
    pub after: [usize; 9],
    /// Grey-zone programs whose behaviour the system revealed.
    pub grey_covered: usize,
    /// Grey-zone programs total.
    pub grey_total: usize,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(
        config.users,
        &DEFAULT_MIX,
        universe.len(),
        config.installs_per_user,
        &mut rng,
    );
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );
    for _ in 0..config.weeks {
        harness.run_week(3, 0.3, 1);
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    let before = harness.universe.cell_counts();
    let mut after = [0usize; 9];
    let mut grey_total = 0usize;
    let mut grey_covered = 0usize;

    for spec in &harness.universe.specs {
        let is_grey = spec.category.consent() == ConsentLevel::Medium;
        if is_grey {
            grey_total += 1;
        }
        // "Revealed" = the reputation system has a published rating and at
        // least one reported behaviour (or the program genuinely has none
        // to report).
        let rating = harness.db().rating(&spec.id_hex()).unwrap();
        let revealed =
            rating.as_ref().is_some_and(|r| spec.behaviours.is_empty() || !r.behaviours.is_empty());

        if is_grey && !revealed {
            // Not yet covered: stays in its Table 1 cell.
            after[(spec.category.cell_number() - 1) as usize] += 1;
            continue;
        }
        if is_grey {
            grey_covered += 1;
        }
        let transformed = transform_with_reputation(spec.category, spec.honestly_disclosed);
        after[(transformed.cell_number() - 1) as usize] += 1;
    }

    let mut table = TextTable::new(
        format!(
            "T2 / Table 2 — grey-zone collapse after {} community weeks ({} programs)",
            config.weeks, config.programs
        ),
        &["cell", "name", "before (Table 1)", "after (Table 2)"],
    );
    let names = [
        "Legitimate software",
        "Adverse software",
        "Double agents",
        "Semi-transparent software",
        "Unsolicited software",
        "Semi-parasites",
        "Covert software",
        "Trojans",
        "Parasites",
    ];
    for cell in 0..9 {
        table.row(vec![
            (cell + 1).to_string(),
            names[cell].to_string(),
            before[cell].to_string(),
            after[cell].to_string(),
        ]);
    }
    table.note(format!(
        "grey-zone coverage: {}/{} ({}) medium-consent programs revealed and reclassified",
        grey_covered,
        grey_total,
        pct(if grey_total == 0 { 0.0 } else { grey_covered as f64 / grey_total as f64 })
    ));
    table.note("honest grey-zone software → high consent; deceptive → low consent (§4.1)");

    Result { before, after, grey_covered, grey_total, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_moves_covered_grey_zone_out_of_medium_row() {
        let result = run(&Config::quick());
        let medium_before: usize = result.before[3..6].iter().sum();
        let medium_after: usize = result.after[3..6].iter().sum();
        assert!(medium_before > 0, "corpus must contain grey-zone software");
        assert!(result.grey_covered > 0, "community must cover some of it");
        assert_eq!(
            medium_after,
            medium_before - result.grey_covered,
            "every covered grey program left the medium row"
        );
    }

    #[test]
    fn totals_are_preserved() {
        let result = run(&Config::quick());
        assert_eq!(
            result.before.iter().sum::<usize>(),
            result.after.iter().sum::<usize>(),
            "the transform relabels, never drops"
        );
    }

    #[test]
    fn non_grey_rows_only_grow() {
        // High- and low-consent rows can only gain (from reclassified grey
        // programs), never lose members.
        let result = run(&Config::quick());
        for cell in [0usize, 1, 2, 6, 7, 8] {
            assert!(
                result.after[cell] >= result.before[cell],
                "cell {} shrank: {} -> {}",
                cell + 1,
                result.before[cell],
                result.after[cell]
            );
        }
    }
}
