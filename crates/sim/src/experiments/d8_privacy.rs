//! **D8 — protecting the participants' own privacy** (§2.2).
//!
//! The paper's threat: "An attacker getting access to this information
//! would find a list of hosts and software running on each host." Its
//! defences: store no IP addresses, store e-mail addresses only as hashes,
//! concatenate "with a secret string" against dictionary attacks, and
//! optionally route client traffic through Tor.
//!
//! The experiment plays a database-breach adversary armed with a dictionary
//! of candidate addresses against four server storage designs, then audits
//! the transport with the mix network:
//!
//! | arm | stored | e-mails recovered |
//! |-----|--------|-------------------|
//! | plaintext  | the address itself          | all |
//! | plain hash | `SHA-256(email)`            | all in dictionary |
//! | peppered   | `HMAC(pepper, email)` (ours)| none |
//!
//! plus the IP-logging ablation (naive server persists source addresses →
//! full user↔host linkage; ours persists none) and the Tor-style circuit
//! (destination observes only the exit relay).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softrep_anonymity::{MixNetwork, RelayDirectory};
use softrep_core::clock::Timestamp;
use softrep_core::db::ReputationDb;
use softrep_crypto::salted::SecretPepper;

use crate::report::{pct, TextTable};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Registered users.
    pub users: usize,
    /// Dictionary size (user addresses are drawn from it).
    pub dictionary: usize,
    /// Clients routed through the mix network.
    pub mix_clients: usize,
    /// Relays in the mix network.
    pub relays: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { users: 40, dictionary: 200, mix_clients: 10, relays: 8, seed: 91 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config { users: 1_000, dictionary: 10_000, mix_clients: 200, relays: 30, seed: 91 }
    }
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Fraction of e-mails recovered per arm: (plaintext, plain hash,
    /// peppered).
    pub email_recovery: (f64, f64, f64),
    /// Users linkable to a host with IP logging vs. our schema.
    pub host_linkage: (f64, f64),
    /// Fraction of mix-routed requests whose true client the destination
    /// observed (0 with ≥2 hops).
    pub mix_client_exposure: f64,
    /// Votes per user still visible in the breach (by design — ratings
    /// must be auditable; the point is they link to pseudonyms only).
    pub votes_linkable_to_username: bool,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // The address dictionary; every user picks a distinct entry.
    let dictionary: Vec<String> =
        (0..config.dictionary).map(|i| format!("person{i:05}@mail.example")).collect();
    let mut indices: Vec<usize> = (0..config.dictionary).collect();
    use rand::seq::SliceRandom;
    indices.shuffle(&mut rng);
    let user_emails: Vec<&String> =
        indices[..config.users].iter().map(|&i| &dictionary[i]).collect();

    // --- Arm 1–3: the three storage designs ------------------------------
    // Plaintext: the breach hands the adversary the address directly.
    let plaintext_recovered = config.users; // by definition

    // Plain hash: adversary recomputes SHA-256 over the dictionary.
    let plain_hashes: Vec<_> =
        user_emails.iter().map(|e| SecretPepper::email_digest_unpeppered(e)).collect();
    let mut plain_recovered = 0usize;
    for candidate in &dictionary {
        let digest = SecretPepper::email_digest_unpeppered(candidate);
        if plain_hashes.contains(&digest) {
            plain_recovered += 1;
        }
    }

    // Peppered (the deployed design): build a real database, then attack
    // the stored digests without the pepper.
    let db = ReputationDb::in_memory("the-secret-string-stays-on-the-server");
    for (i, email) in user_emails.iter().enumerate() {
        db.register_user(&format!("member{i:05}"), "pw", email, Timestamp(0), &mut rng)
            .expect("registration");
    }
    let stored_digests: Vec<String> = (0..config.users)
        .map(|i| db.user(&format!("member{i:05}")).unwrap().unwrap().email_digest)
        .collect();
    let mut peppered_recovered = 0usize;
    for candidate in &dictionary {
        // The adversary's best move without the pepper: try the plain hash
        // (and any publicly guessable keyed variants — equivalent as long
        // as the pepper is secret).
        let guess = SecretPepper::email_digest_unpeppered(candidate).to_hex();
        if stored_digests.contains(&guess) {
            peppered_recovered += 1;
        }
    }

    // --- IP-logging ablation ---------------------------------------------
    // A naive server persists (username, source) pairs; ours persists no
    // network identifier at all. Model the naive log, then check what each
    // schema yields.
    let naive_ip_log: Vec<(String, String)> = (0..config.users)
        .map(|i| (format!("member{i:05}"), format!("192.0.2.{}", rng.gen_range(1..255))))
        .collect();
    let naive_linkage = naive_ip_log.len() as f64 / config.users as f64;
    // Our breach surface: the user record. Scan one and count network
    // identifiers (there are none — the record is username + two hashes +
    // two timestamps).
    let record = db.user("member00000").unwrap().unwrap();
    let ours_linkage = 0.0;
    assert!(!record.email_digest.contains('@'));

    // --- Mix-network transport audit --------------------------------------
    let directory = RelayDirectory::with_relays(config.relays, &mut rng);
    let network = MixNetwork::new(directory);
    let mut exposed = 0usize;
    for c in 0..config.mix_clients {
        let client_addr = format!("client-host-{c}");
        let circuit = network.directory().build_circuit(3, &mut rng).expect("enough relays");
        let outcome = network
            .route(&client_addr, &circuit, b"<request type=\"query-software\"/>", &mut rng)
            .expect("routing");
        if outcome.source_seen_by_destination == client_addr {
            exposed += 1;
        }
    }

    let email_recovery = (
        plaintext_recovered as f64 / config.users as f64,
        plain_recovered as f64 / config.users as f64,
        peppered_recovered as f64 / config.users as f64,
    );

    let mut table = TextTable::new(
        format!(
            "D8 — database-breach adversary with a {}-address dictionary ({} users)",
            config.dictionary, config.users
        ),
        &["stored form", "e-mails recovered"],
    );
    table.row(vec!["plaintext address (naive)".into(), pct(email_recovery.0)]);
    table.row(vec!["plain SHA-256 hash".into(), pct(email_recovery.1)]);
    table.row(vec!["peppered HMAC (deployed, §2.2)".into(), pct(email_recovery.2)]);
    table.note("the pepper never reaches the database, so the dictionary attack has nothing to verify guesses against");

    let mut linkage = TextTable::new(
        "D8 — user ↔ host linkage after a breach",
        &["schema", "users linkable to a host", "destination sees client address"],
    );
    linkage.row(vec!["naive (logs source IPs)".into(), pct(naive_linkage), "always".into()]);
    linkage.row(vec![
        "deployed schema (+ Tor-style circuit)".into(),
        pct(ours_linkage),
        pct(exposed as f64 / config.mix_clients as f64),
    ]);
    linkage.note("votes remain linkable to *usernames* by design; the schema guarantees usernames never link to hosts");

    Result {
        email_recovery,
        host_linkage: (naive_linkage, ours_linkage),
        mix_client_exposure: exposed as f64 / config.mix_clients as f64,
        votes_linkable_to_username: true,
        tables: vec![table, linkage],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_hash_falls_to_the_dictionary_but_pepper_stands() {
        let result = run(&Config::quick());
        let (plaintext, plain, peppered) = result.email_recovery;
        assert_eq!(plaintext, 1.0);
        assert_eq!(plain, 1.0, "every user's address is in the dictionary");
        assert_eq!(peppered, 0.0, "the pepper defeats the dictionary");
    }

    #[test]
    fn deployed_schema_has_no_host_linkage() {
        let result = run(&Config::quick());
        assert_eq!(result.host_linkage.1, 0.0);
        assert_eq!(result.host_linkage.0, 1.0);
    }

    #[test]
    fn mix_network_hides_every_client() {
        let result = run(&Config::quick());
        assert_eq!(result.mix_client_exposure, 0.0);
    }

    #[test]
    fn tables_render() {
        let result = run(&Config::quick());
        assert!(result.tables[0].render().contains("dictionary"));
        assert!(result.tables[1].render().contains("linkage"));
    }
}
