//! **D2 — rating-the-raters**: trust-weighted vs. unweighted aggregation
//! under ignorant-user noise.
//!
//! §2.1's first mitigation: "allowing the users to rate not only the
//! software but also the feedback of other users … making the votes and
//! comments of well-known, reliable users more visible and influential
//! than those of new users … as soon as more experienced users give
//! contradicting votes, their opinions will carry a higher weight, tipping
//! the balance in a — hopefully — more correct direction."
//!
//! The experiment sweeps the ignorant-user fraction and compares the mean
//! absolute rating error of the deployed (trust-weighted) aggregation
//! against a plain average over the same votes. Trust accrues the way the
//! paper describes: experts write useful comments, the community remarks
//! on them, remark deltas feed the capped trust factors.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{HarnessConfig, SimHarness};
use crate::metrics;
use crate::population::{build_population, Archetype};
use crate::report::{fmt_opt, pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Community size.
    pub users: usize,
    /// Installed programs per user.
    pub installs_per_user: usize,
    /// Community weeks (trust needs time under the +5/week cap).
    pub weeks: usize,
    /// Ignorant fractions to sweep.
    pub ignorant_fractions: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            programs: 30,
            users: 30,
            installs_per_user: 10,
            weeks: 3,
            ignorant_fractions: vec![0.1, 0.6],
            seed: 41,
        }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            programs: 500,
            users: 1_000,
            installs_per_user: 20,
            weeks: 26,
            ignorant_fractions: vec![0.0, 0.2, 0.4, 0.6, 0.8],
            seed: 41,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Ignorant fraction.
    pub ignorant_fraction: f64,
    /// MAE of the unweighted average.
    pub mae_unweighted: Option<f64>,
    /// MAE of the trust-weighted aggregation.
    pub mae_weighted: Option<f64>,
    /// Mean trust of experts at the end.
    pub expert_trust: f64,
    /// Mean trust of ignorant users at the end.
    pub ignorant_trust: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One point per swept fraction.
    pub points: Vec<SweepPoint>,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn run_point(config: &Config, ignorant_fraction: f64) -> SweepPoint {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    // Experts stay at 10%; the remaining mass splits between average and
    // ignorant users according to the sweep.
    let remaining = (0.9 - ignorant_fraction).max(0.0);
    let mix = [
        (Archetype::Expert, 0.10),
        (Archetype::Average, remaining * 0.7),
        (Archetype::Novice, remaining * 0.3),
        (Archetype::Ignorant, ignorant_fraction),
    ];
    let users =
        build_population(config.users, &mix, universe.len(), config.installs_per_user, &mut rng);
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );

    for _ in 0..config.weeks {
        // Votes + comments + remarks: the remark stream is what separates
        // expert trust from ignorant trust.
        harness.run_week(2, 0.5, 2);
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    let trust_mean = |archetype: Archetype, harness: &SimHarness| -> f64 {
        let values: Vec<f64> = harness
            .users
            .iter()
            .filter(|u| u.archetype == archetype)
            .filter_map(|u| harness.db().trust_of(&u.name).ok().flatten())
            .collect();
        metrics::mean(values.iter().copied()).unwrap_or(1.0)
    };

    SweepPoint {
        ignorant_fraction,
        mae_unweighted: metrics::unweighted_rating_mae(harness.db(), &harness.universe),
        mae_weighted: metrics::weighted_rating_mae(harness.db(), &harness.universe),
        expert_trust: trust_mean(Archetype::Expert, &harness),
        ignorant_trust: trust_mean(Archetype::Ignorant, &harness),
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let points: Vec<SweepPoint> =
        config.ignorant_fractions.iter().map(|&f| run_point(config, f)).collect();

    let mut table = TextTable::new(
        format!(
            "D2 — trust weighting vs. plain averaging ({} users, {} weeks)",
            config.users, config.weeks
        ),
        &[
            "ignorant users",
            "MAE unweighted",
            "MAE trust-weighted",
            "improvement",
            "expert trust",
            "ignorant trust",
        ],
    );
    for p in &points {
        let improvement = match (p.mae_unweighted, p.mae_weighted) {
            (Some(u), Some(w)) if u > 0.0 => pct((u - w) / u),
            _ => "—".into(),
        };
        table.row(vec![
            pct(p.ignorant_fraction),
            fmt_opt(p.mae_unweighted),
            fmt_opt(p.mae_weighted),
            improvement,
            format!("{:.1}", p.expert_trust),
            format!("{:.1}", p.ignorant_trust),
        ]);
    }
    table.note("trust accrues via comment remarks under the +5/week cap (§3.2)");

    Result { points, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experts_accumulate_more_trust_than_ignorants() {
        let result = run(&Config::quick());
        for p in &result.points {
            assert!(
                p.expert_trust > p.ignorant_trust,
                "experts {:.2} vs ignorants {:.2} at f={}",
                p.expert_trust,
                p.ignorant_trust,
                p.ignorant_fraction
            );
        }
    }

    #[test]
    fn weighting_helps_when_noise_is_heavy() {
        let result = run(&Config::quick());
        // At the heavy-ignorance point, trust weighting must not be worse
        // than plain averaging (it should be better; tolerate equality for
        // the tiny quick configuration).
        let heavy = result.points.last().unwrap();
        let (u, w) = (heavy.mae_unweighted.unwrap(), heavy.mae_weighted.unwrap());
        assert!(w <= u + 0.05, "weighted {w:.3} should not lose to unweighted {u:.3}");
    }

    #[test]
    fn error_rises_with_ignorance_for_unweighted() {
        let result = run(&Config::quick());
        let first = result.points.first().unwrap().mae_unweighted.unwrap();
        let last = result.points.last().unwrap().mae_unweighted.unwrap();
        assert!(
            last > first,
            "more ignorant voters must hurt the plain average: {first:.3} -> {last:.3}"
        );
    }
}
