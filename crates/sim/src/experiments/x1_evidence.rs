//! **X1 — runtime-analysis evidence** (extension; §5 future work).
//!
//! "We will also examine the possibility of using runtime software
//! analysis to automatically collect information about whether software
//! has some unwanted behaviour … The results … could then be inserted
//! into the reputation system as hard evidence."
//!
//! The experiment measures what that buys: after a *short* community phase
//! (sparse votes, few behaviours reported), a sandbox analyses a sweep of
//! coverage fractions of the corpus and submits evidence. A strict
//! behaviour-blocking policy then executes the whole corpus; evidence
//! fills the gap between what voters happened to notice and what the
//! programs actually do.

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_analysis::{AnalysisService, Sandbox};
use softrep_client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softrep_client::{InProcessConnector, ReputationClient};
use softrep_proto::message::SoftwareInfo;
use softrep_proto::Response;

use crate::harness::{HarnessConfig, SimHarness};
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Community size (kept small: the point is sparse coverage).
    pub users: usize,
    /// Community weeks before analysis.
    pub weeks: usize,
    /// Analysis coverage fractions to sweep.
    pub coverage_fractions: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config { programs: 40, users: 12, weeks: 1, coverage_fractions: vec![0.0, 1.0], seed: 111 }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            programs: 500,
            users: 150,
            weeks: 2,
            coverage_fractions: vec![0.0, 0.25, 0.5, 1.0],
            seed: 111,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Fraction of the corpus analysed.
    pub coverage: f64,
    /// Behaviour recall visible to clients: behaviours exposed (reported
    /// or verified) / behaviours that exist.
    pub behaviour_recall: f64,
    /// Fraction of PIS blocked by the strict policy.
    pub pis_blocked: f64,
    /// Fraction of legitimate software blocked (false positives).
    pub legit_blocked: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One point per coverage fraction.
    pub points: Vec<SweepPoint>,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

/// The strict behaviour policy used for measurement. `behaviour(...)`
/// matches both user reports and verified evidence.
const BEHAVIOUR_POLICY: &str = r#"
deny if behaviour("keylogger") or behaviour("data_exfiltration")
deny if behaviour("popup_ads") and behaviour("tracking")
allow otherwise
"#;

const ANALYZER_TOKEN: &str = "x1-analyzer-token";

struct SilentUser;
impl UserAgent for SilentUser {
    fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
        UserChoice::AllowOnce
    }
    fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

fn run_point(config: &Config, coverage: f64) -> SweepPoint {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(config.users, &DEFAULT_MIX, universe.len(), 10, &mut rng);
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig {
            seed: config.seed,
            analyzer_token: Some(ANALYZER_TOKEN.to_string()),
            ..Default::default()
        },
    );
    for _ in 0..config.weeks {
        harness.run_week(1, 0.0, 0);
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    // The sandbox analyses the first `coverage` fraction of the corpus.
    let analysed_count = (config.programs as f64 * coverage).round() as usize;
    {
        let server = std::sync::Arc::clone(&harness.server);
        let transport =
            move |req: &softrep_proto::Request| -> Response { server.handle(req, "analysis-lab") };
        let mut service =
            AnalysisService::new(Sandbox::default(), "sandbox-v1", ANALYZER_TOKEN, transport);
        for spec in &harness.universe.specs[..analysed_count] {
            service.analyse_and_submit(&spec.exe);
        }
        assert_eq!(service.rejected(), 0, "token must authorise the analyzer");
    }

    // Behaviour recall: what fraction of true behaviours can a client see?
    let mut behaviours_total = 0usize;
    let mut behaviours_visible = 0usize;
    for spec in &harness.universe.specs {
        let report = harness.db().software_report(&spec.id_hex()).unwrap().unwrap();
        let reported: Vec<&str> = report
            .rating
            .as_ref()
            .map(|r| r.behaviours.iter().map(|(b, _)| b.as_str()).collect())
            .unwrap_or_default();
        let verified: Vec<&str> = report
            .evidence
            .as_ref()
            .map(|e| e.behaviours.iter().map(String::as_str).collect())
            .unwrap_or_default();
        for b in &spec.behaviours {
            behaviours_total += 1;
            if reported.contains(&b.as_str()) || verified.contains(&b.as_str()) {
                behaviours_visible += 1;
            }
        }
    }

    // The strict policy executes the corpus through a real client.
    let connector = InProcessConnector::new(std::sync::Arc::clone(&harness.server), "x1-host");
    let clock: std::sync::Arc<dyn softrep_core::clock::Clock> =
        std::sync::Arc::new(harness.clock.clone());
    let mut client = ReputationClient::new(connector, clock);
    client.set_policy_text(BEHAVIOUR_POLICY).expect("policy parses");

    let mut user = SilentUser;
    let mut pis = (0usize, 0usize); // (blocked, total)
    let mut legit = (0usize, 0usize);
    for spec in harness.universe.specs.clone() {
        let outcome = client.handle_execution(&spec.exe, None, &mut user);
        if spec.category.is_legitimate() {
            legit.1 += 1;
            if !outcome.allowed {
                legit.0 += 1;
            }
        } else {
            pis.1 += 1;
            if !outcome.allowed {
                pis.0 += 1;
            }
        }
    }

    SweepPoint {
        coverage,
        behaviour_recall: if behaviours_total == 0 {
            1.0
        } else {
            behaviours_visible as f64 / behaviours_total as f64
        },
        pis_blocked: pis.0 as f64 / pis.1.max(1) as f64,
        legit_blocked: legit.0 as f64 / legit.1.max(1) as f64,
    }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let points: Vec<SweepPoint> =
        config.coverage_fractions.iter().map(|&c| run_point(config, c)).collect();

    let mut table = TextTable::new(
        format!(
            "X1 — runtime-analysis evidence (sparse community: {} users, {} week(s), {} programs)",
            config.users, config.weeks, config.programs
        ),
        &["corpus analysed", "behaviour recall", "PIS blocked by policy", "legit blocked"],
    );
    for p in &points {
        table.row(vec![
            pct(p.coverage),
            pct(p.behaviour_recall),
            pct(p.pis_blocked),
            pct(p.legit_blocked),
        ]);
    }
    table.note(
        "evidence turns unobserved behaviours into verified facts the policy can act on (§5)",
    );

    Result { points, tables: vec![table] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_raises_behaviour_recall_and_protection() {
        let result = run(&Config::quick());
        let without = &result.points[0];
        let with = result.points.last().unwrap();
        assert!(
            with.behaviour_recall > without.behaviour_recall,
            "full analysis must expose more behaviours: {:.2} -> {:.2}",
            without.behaviour_recall,
            with.behaviour_recall
        );
        assert!(
            with.pis_blocked >= without.pis_blocked,
            "more visibility must not reduce protection"
        );
        assert!(
            (with.behaviour_recall - 1.0).abs() < 1e-9,
            "the sandbox sees everything at 100% coverage"
        );
    }

    #[test]
    fn evidence_does_not_hurt_legitimate_software() {
        // Legitimate software has (almost) no flagged behaviours; evidence
        // about it cannot trip the behaviour policy's deny rules (which
        // need ad+tracking combos or severe behaviours).
        let result = run(&Config::quick());
        for p in &result.points {
            assert!(
                p.legit_blocked < 0.35,
                "false positives stay bounded, got {}",
                p.legit_blocked
            );
        }
    }
}
