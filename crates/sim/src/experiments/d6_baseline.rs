//! **D6 — reputation system vs. anti-virus baseline** (§4.3).
//!
//! A 52-week release stream flows into three countermeasures at once:
//!
//! * a **conservative anti-virus** engine (flags clear malware only — the
//!   stance §1 says vendors retreat to after lawsuits),
//! * an **aggressive anti-spyware** engine (also flags the grey zone, and
//!   absorbs the resulting legal challenges), and
//! * the **reputation system** (users vote; a program whose published
//!   rating falls to the warning threshold counts as "users are warned").
//!
//! Measured per §1.1 group: protection coverage at the end, false alarms
//! on legitimate software, median time-to-protection, and the aggressive
//! engine's lawsuit bill. The paper's qualitative claims this quantifies:
//! AV is reliable but blind to the grey zone (or sued out of it); the
//! reputation system covers the grey zone at the price of needing votes
//! first.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use softrep_baseline::{AntiVirusEngine, EngineConfig, Sample, ScanVerdict};

use crate::harness::{HarnessConfig, SimHarness};
use crate::metrics;
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{fmt_opt, pct, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Community size.
    pub users: usize,
    /// Installed programs per user.
    pub installs_per_user: usize,
    /// Weeks simulated.
    pub weeks: u64,
    /// Releases are spread over this many initial weeks.
    pub release_spread_weeks: u64,
    /// Rating at or below which users count as warned.
    pub warn_threshold: f64,
    /// Probability a named vendor sues over a grey-zone detection.
    pub lawsuit_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            programs: 40,
            users: 40,
            installs_per_user: 12,
            weeks: 8,
            release_spread_weeks: 3,
            warn_threshold: 4.0,
            lawsuit_probability: 0.5,
            seed: 71,
        }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            programs: 1_000,
            users: 800,
            installs_per_user: 25,
            weeks: 52,
            release_spread_weeks: 26,
            warn_threshold: 4.0,
            lawsuit_probability: 0.3,
            seed: 71,
        }
    }
}

/// Per-group coverage for one countermeasure.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupCoverage {
    /// Fraction of legitimate software flagged/warned (false alarms).
    pub legitimate: f64,
    /// Fraction of grey-zone (spyware) programs covered.
    pub spyware: f64,
    /// Fraction of malware covered.
    pub malware: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Conservative AV coverage.
    pub av_conservative: GroupCoverage,
    /// Aggressive AV coverage (post-lawsuit).
    pub av_aggressive: GroupCoverage,
    /// Reputation-system coverage.
    pub reputation: GroupCoverage,
    /// Lawsuits absorbed by the aggressive engine.
    pub lawsuits: u64,
    /// Reputation grey-zone coverage at alternative warning thresholds
    /// (threshold, coverage) — the warning bar is a policy choice, and
    /// its sensitivity matters for interpreting the headline row.
    pub reputation_threshold_sweep: Vec<(f64, f64)>,
    /// Median weeks from release to protection: (aggressive AV, reputation)
    /// over grey-zone programs both ended up covering.
    pub time_to_protection: (Option<f64>, Option<f64>),
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn release_week(config: &Config, index: usize) -> u64 {
    (index as u64 * config.release_spread_weeks) / config.programs as u64
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(
        config.users,
        &DEFAULT_MIX,
        universe.len(),
        config.installs_per_user,
        &mut rng,
    );
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, ..Default::default() },
    );

    let av_config_base = EngineConfig {
        discovery_lag_secs: 2 * 86_400,
        analysis_latency_secs: 5 * 86_400,
        client_update_interval_secs: 86_400,
        detect_grey_zone: false,
        legal_challenge_probability: 0.0,
    };
    let mut av_conservative = AntiVirusEngine::new(av_config_base);
    let mut av_aggressive = AntiVirusEngine::new(EngineConfig {
        detect_grey_zone: true,
        legal_challenge_probability: config.lawsuit_probability,
        ..av_config_base
    });

    // Per-program first week with a warning-level rating.
    let mut first_warned_week: Vec<Option<u64>> = vec![None; harness.universe.len()];

    for week in 0..config.weeks {
        // New releases reach the AV vendors' telemetry.
        for (idx, spec) in harness.universe.specs.clone().iter().enumerate() {
            if release_week(config, idx) == week {
                let sample = Sample {
                    software_id: spec.id_hex(),
                    vendor: harness.universe.vendor_of(spec).map(str::to_string),
                    category: spec.category,
                };
                av_conservative.observe_release(&sample, harness.now());
                av_aggressive.observe_release(&sample, harness.now());
            }
        }

        // Community week restricted to released software.
        for user_idx in 0..harness.users.len() {
            let installed = harness.users[user_idx].installed.clone();
            let released: Vec<usize> =
                installed.into_iter().filter(|&i| release_week(config, i) <= week).collect();
            for _ in 0..2 {
                if let Some(&spec_idx) = released.as_slice().choose(harness.rng()) {
                    harness.cast_vote(user_idx, spec_idx);
                }
            }
        }
        harness.advance_days(7);
        harness.relogin_all();
        av_conservative.tick(harness.now(), &mut rng);
        av_aggressive.tick(harness.now(), &mut rng);

        // Record first warned week per program.
        for (idx, spec) in harness.universe.specs.clone().iter().enumerate() {
            if first_warned_week[idx].is_none()
                && metrics::is_warned(harness.db(), &spec.id_hex(), config.warn_threshold)
            {
                first_warned_week[idx] = Some(week);
            }
        }
    }

    // Final coverage per group.
    let coverage = |covered: &dyn Fn(usize) -> bool, harness: &SimHarness| -> GroupCoverage {
        let mut counts = [(0usize, 0usize); 3]; // (covered, total) per group
        for (idx, spec) in harness.universe.specs.iter().enumerate() {
            let group = if spec.category.is_legitimate() {
                0
            } else if spec.category.is_spyware() {
                1
            } else {
                2
            };
            counts[group].1 += 1;
            if covered(idx) {
                counts[group].0 += 1;
            }
        }
        let frac = |(c, t): (usize, usize)| if t == 0 { 0.0 } else { c as f64 / t as f64 };
        GroupCoverage {
            legitimate: frac(counts[0]),
            spyware: frac(counts[1]),
            malware: frac(counts[2]),
        }
    };

    let specs = harness.universe.specs.clone();
    let av_c = coverage(
        &|idx| av_conservative.client_scan(&specs[idx].id_hex(), true) == ScanVerdict::Malicious,
        &harness,
    );
    let av_a = coverage(
        &|idx| av_aggressive.client_scan(&specs[idx].id_hex(), true) == ScanVerdict::Malicious,
        &harness,
    );
    let rep = coverage(&|idx| first_warned_week[idx].is_some(), &harness);

    // Grey-zone coverage at alternative (final-state) warning thresholds.
    let mut reputation_threshold_sweep = Vec::new();
    for threshold in
        [config.warn_threshold, config.warn_threshold + 1.0, config.warn_threshold + 1.5]
    {
        let cov = coverage(
            &|idx| metrics::is_warned(harness.db(), &specs[idx].id_hex(), threshold),
            &harness,
        );
        reputation_threshold_sweep.push((threshold, cov.spyware));
    }

    // Time-to-protection over grey-zone programs.
    let mut av_ttp = Vec::new();
    let mut rep_ttp = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        if !spec.category.is_spyware() {
            continue;
        }
        let released = release_week(config, idx);
        if let Some(published) = av_aggressive.protection_published_at(&spec.id_hex()) {
            av_ttp.push(published.secs() as f64 / (7.0 * 86_400.0) - released as f64);
        }
        if let Some(warned) = first_warned_week[idx] {
            rep_ttp.push(warned as f64 - released as f64);
        }
    }

    let mut table = TextTable::new(
        format!(
            "D6 — coverage after {} weeks ({} programs, warn threshold {:.1})",
            config.weeks, config.programs, config.warn_threshold
        ),
        &["countermeasure", "legit flagged (false alarms)", "grey zone covered", "malware covered"],
    );
    for (label, cov) in [
        ("anti-virus (conservative)", av_c),
        ("anti-spyware (aggressive, post-lawsuits)", av_a),
        ("reputation system (warned users)", rep),
    ] {
        table.row(vec![label.to_string(), pct(cov.legitimate), pct(cov.spyware), pct(cov.malware)]);
    }
    table.note(format!(
        "aggressive engine absorbed {} lawsuit(s); {} vendor(s) now on its do-not-detect list",
        av_aggressive.lawsuits(),
        av_aggressive.protected_vendors()
    ));
    table.note(format!(
        "reputation grey-zone coverage vs warning bar: {}",
        reputation_threshold_sweep
            .iter()
            .map(|(t, c)| format!("≤{t:.1} → {}", pct(*c)))
            .collect::<Vec<_>>()
            .join(", ")
    ));

    let mut ttp_table = TextTable::new(
        "D6 — median weeks from release to protection (grey zone)",
        &["countermeasure", "median weeks", "programs protected"],
    );
    ttp_table.row(vec![
        "anti-spyware (aggressive)".into(),
        fmt_opt(metrics::median(&av_ttp)),
        av_ttp.len().to_string(),
    ]);
    ttp_table.row(vec![
        "reputation system".into(),
        fmt_opt(metrics::median(&rep_ttp)),
        rep_ttp.len().to_string(),
    ]);
    ttp_table.note("reputation protection requires votes to accumulate; AV protection requires lab analysis to finish and lawyers to stay away");

    Result {
        av_conservative: av_c,
        av_aggressive: av_a,
        reputation: rep,
        lawsuits: av_aggressive.lawsuits(),
        reputation_threshold_sweep,
        time_to_protection: (metrics::median(&av_ttp), metrics::median(&rep_ttp)),
        tables: vec![table, ttp_table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_av_misses_the_grey_zone_entirely() {
        let result = run(&Config::quick());
        assert_eq!(result.av_conservative.spyware, 0.0);
        assert!(result.av_conservative.malware > 0.9, "clear malware is AV bread and butter");
        assert_eq!(result.av_conservative.legitimate, 0.0, "no false alarms");
    }

    #[test]
    fn reputation_covers_grey_zone_that_av_cannot() {
        let result = run(&Config::quick());
        assert!(
            result.reputation.spyware > result.av_conservative.spyware,
            "reputation {:.2} must beat conservative AV {:.2} on spyware",
            result.reputation.spyware,
            result.av_conservative.spyware
        );
    }

    #[test]
    fn lawsuits_erode_aggressive_av_grey_coverage() {
        let result = run(&Config::quick());
        // With challenge probability 0.5 and named vendors, the aggressive
        // engine loses part of the grey zone.
        assert!(result.av_aggressive.spyware < 1.0);
        assert!(result.lawsuits > 0, "somebody always sues at p=0.5");
        // But lawsuits never touch clear malware.
        assert!(result.av_aggressive.malware > 0.9);
    }

    #[test]
    fn tables_render() {
        let result = run(&Config::quick());
        assert_eq!(result.tables.len(), 2);
        assert!(result.tables[0].render().contains("coverage"));
    }

    #[test]
    fn warning_bar_sweep_is_monotone() {
        // A higher warning bar can only warn about at least as much.
        let result = run(&Config::quick());
        let sweep = &result.reputation_threshold_sweep;
        assert_eq!(sweep.len(), 3);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "coverage must grow with the threshold: {sweep:?}");
        }
    }
}
