//! **D3 — abuse resilience**: vote flooding and Sybil campaigns under
//! countermeasure ablation.
//!
//! §2.1: "one such attack would be to intentionally try to enter a massive
//! amount of incorrect data into the database … trying to subject
//! [specific applications] to positive or negative discrimination." The
//! experiment builds an honest community, then runs a discrediting
//! campaign (score 1 against the best-rated programs) under four arms:
//!
//! | arm | e-mail dedup | puzzle | community age |
//! |-----|--------------|--------|---------------|
//! | A: open door       | off | off | young |
//! | B: + e-mail dedup  | on  | off | young |
//! | C: + puzzles       | on  | on  | young |
//! | D: + trust maturity| on  | on  | aged (honest trust has grown) |
//!
//! Measured: Sybil accounts created, attacker hash cost, and the mean
//! rating distortion on the targets. One-vote-per-user and the trust cap
//! are structural and active in every arm.
//!
//! A third scenario measures the *transport* half of the §2.1 defence: a
//! flooder that opens a fresh TCP connection per request (the trick that
//! defeated the old `ip:port` flood-guard keying) against the real socket
//! front end, counting how many requests the IP-keyed token bucket
//! throttles.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::{Request, Response};
use softrep_server::tcp::{TcpClient, TcpServer};
use softrep_server::{ReputationServer, ServerConfig};

use crate::attack::{
    pick_discredit_targets, run_sybil_attack, run_vote_flood, AttackPlan, Defenses,
};
use crate::harness::{HarnessConfig, SimHarness};
use crate::metrics;
use crate::population::{build_population, DEFAULT_MIX};
use crate::report::{fmt_opt, TextTable};
use crate::universe::{Universe, UniverseConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Corpus size.
    pub programs: usize,
    /// Honest community size.
    pub users: usize,
    /// Installed programs per user.
    pub installs_per_user: usize,
    /// Community weeks before the attack (arm D doubles this).
    pub weeks: usize,
    /// Number of targeted programs.
    pub targets: usize,
    /// Sybil accounts the attacker wants.
    pub attacker_accounts: usize,
    /// Distinct e-mail addresses the attacker owns.
    pub attacker_emails: usize,
    /// Attacker hash budget for puzzles.
    pub attacker_hash_budget: u64,
    /// Puzzle difficulty in the puzzle arms.
    pub puzzle_difficulty: u8,
    /// Requests the transport flooder sends (one fresh connection each).
    pub transport_flood_requests: usize,
    /// Flood-guard burst capacity in the transport-flood scenario.
    pub transport_flood_capacity: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Config {
    /// Test-sized run.
    pub fn quick() -> Self {
        Config {
            programs: 25,
            users: 20,
            installs_per_user: 8,
            weeks: 2,
            targets: 3,
            attacker_accounts: 40,
            attacker_emails: 8,
            attacker_hash_budget: 2_000,
            puzzle_difficulty: 6,
            transport_flood_requests: 24,
            transport_flood_capacity: 4,
            seed: 51,
        }
    }

    /// Headline run.
    pub fn full() -> Self {
        Config {
            programs: 300,
            users: 500,
            installs_per_user: 20,
            weeks: 6,
            targets: 10,
            attacker_accounts: 400,
            attacker_emails: 40,
            attacker_hash_budget: 200_000,
            puzzle_difficulty: 12,
            transport_flood_requests: 200,
            transport_flood_capacity: 20,
            seed: 51,
        }
    }
}

/// One arm's outcome.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Arm label.
    pub label: String,
    /// Sybil accounts created.
    pub accounts: usize,
    /// Attacker hash cost.
    pub hash_cost: u64,
    /// Mean |Δ rating| over the targets.
    pub mean_distortion: Option<f64>,
}

/// Outcome of the transport-level reconnect flood.
#[derive(Debug, Clone, Copy)]
pub struct TransportFlood {
    /// Requests sent, each over a brand-new TCP connection.
    pub requests: usize,
    /// Responses answered with the `throttled` error.
    pub throttled: usize,
    /// The server-side flood guard's rejection counter.
    pub rejected: u64,
    /// Identities the guard ended up tracking (1 ⇒ IP-keyed, as intended;
    /// one per connection would mean the `ip:port` bug is back).
    pub identities: usize,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Arms A–D.
    pub arms: Vec<ArmResult>,
    /// Vote-flood outcome: (attempts, accepted, final ballot count).
    pub flood: (usize, usize, usize),
    /// Transport-level reconnect-flood outcome.
    pub transport_flood: TransportFlood,
    /// Printable tables.
    pub tables: Vec<TextTable>,
}

fn build_community(config: &Config, puzzle_difficulty: u8, weeks: usize) -> SimHarness {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let universe = Universe::generate(
        &UniverseConfig { programs: config.programs, ..Default::default() },
        &mut rng,
    );
    let users = build_population(
        config.users,
        &DEFAULT_MIX,
        universe.len(),
        config.installs_per_user,
        &mut rng,
    );
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: config.seed, puzzle_difficulty, ..Default::default() },
    );
    for _ in 0..weeks {
        harness.run_week(2, 0.4, 2);
    }
    harness.db().force_aggregation(harness.now()).unwrap();
    harness
}

fn run_arm(config: &Config, label: &str, defenses: Defenses, weeks: usize) -> ArmResult {
    let mut harness = build_community(config, defenses.puzzle_difficulty, weeks);
    let targets = pick_discredit_targets(&harness, config.targets);
    let before: Vec<Option<f64>> = targets
        .iter()
        .map(|&t| metrics::published_rating(harness.db(), &harness.universe, t))
        .collect();

    let plan = AttackPlan {
        targets: targets.clone(),
        desired_accounts: config.attacker_accounts,
        emails_available: config.attacker_emails,
        hash_budget: config.attacker_hash_budget,
        push_score: 1,
    };
    let outcome = run_sybil_attack(&mut harness, &plan, &defenses);
    harness.db().force_aggregation(harness.now()).unwrap();

    let distortions: Vec<f64> = targets
        .iter()
        .zip(&before)
        .filter_map(|(&t, &b)| {
            let after = metrics::published_rating(harness.db(), &harness.universe, t)?;
            Some((after - b?).abs())
        })
        .collect();

    ArmResult {
        label: label.to_string(),
        accounts: outcome.accounts_created,
        hash_cost: outcome.hash_cost,
        mean_distortion: metrics::mean(distortions.iter().copied()),
    }
}

/// Reconnect-per-request flooder from one IP against the real TCP front
/// end. Every request rides a fresh connection (and thus a fresh ephemeral
/// port); the IP-keyed guard must still see one identity and throttle
/// everything beyond the burst capacity.
fn run_transport_flood(config: &Config) -> TransportFlood {
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("d3-transport-pepper"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: config.transport_flood_capacity,
            flood_refill_per_hour: 1,
            ..ServerConfig::default()
        },
        config.seed,
    ));
    let Ok(tcp) = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0") else {
        // No loopback available (hermetic sandbox): report zero activity
        // rather than aborting the whole experiment.
        return TransportFlood { requests: 0, throttled: 0, rejected: 0, identities: 0 };
    };

    let probe = Request::QuerySoftware { software_id: "ab".repeat(20) };
    let mut throttled = 0;
    for _ in 0..config.transport_flood_requests {
        let response = TcpClient::connect(tcp.local_addr())
            .map_err(softrep_proto::framing::FrameError::Io)
            .and_then(|mut client| client.call(&probe));
        if matches!(response, Ok(Response::Error { ref code, .. }) if code == "throttled") {
            throttled += 1;
        }
    }

    let rejected = server.flood_guard().rejected_count();
    let identities = server.flood_guard().tracked_identities();
    tcp.shutdown();
    TransportFlood { requests: config.transport_flood_requests, throttled, rejected, identities }
}

/// Run the experiment.
pub fn run(config: &Config) -> Result {
    let arms = vec![
        run_arm(
            config,
            "A: open door (no dedup, no puzzle)",
            Defenses { email_dedup: false, puzzle_difficulty: 0 },
            config.weeks,
        ),
        run_arm(
            config,
            "B: + e-mail dedup",
            Defenses { email_dedup: true, puzzle_difficulty: 0 },
            config.weeks,
        ),
        run_arm(
            config,
            "C: + registration puzzles",
            Defenses { email_dedup: true, puzzle_difficulty: config.puzzle_difficulty },
            config.weeks,
        ),
        run_arm(
            config,
            "D: + community trust maturity",
            Defenses { email_dedup: true, puzzle_difficulty: config.puzzle_difficulty },
            config.weeks * 2,
        ),
    ];

    // Vote flooding against arm-B conditions: one account, many ballots.
    let mut flood_harness = build_community(config, 0, 1);
    let attempts = 200.min(config.attacker_accounts * 5);
    let (accepted, final_count) = run_vote_flood(&mut flood_harness, 0, attempts);

    let mut table = TextTable::new(
        format!(
            "D3 — Sybil discrediting campaign (attacker wants {} accounts, {} e-mails, {} hash budget)",
            config.attacker_accounts, config.attacker_emails, config.attacker_hash_budget
        ),
        &["arm", "sybil accounts", "hash cost", "mean |Δ rating| on targets"],
    );
    for arm in &arms {
        table.row(vec![
            arm.label.clone(),
            arm.accounts.to_string(),
            arm.hash_cost.to_string(),
            fmt_opt(arm.mean_distortion),
        ]);
    }
    table
        .note("one-vote-per-user and the +5/week trust cap are structural and active in every arm");

    let mut flood_table = TextTable::new(
        "D3 — vote flooding (single account)",
        &["submissions", "accepted as replacements", "ballots in database"],
    );
    flood_table.row(vec![attempts.to_string(), accepted.to_string(), final_count.to_string()]);
    flood_table.note("the (software, user) composite key makes flooding a no-op (§2.1)");

    let transport_flood = run_transport_flood(config);
    let mut transport_table = TextTable::new(
        format!(
            "D3 — transport flood (reconnect per request from one IP, burst capacity {})",
            config.transport_flood_capacity
        ),
        &["requests", "throttled", "guard rejections", "identities tracked"],
    );
    transport_table.row(vec![
        transport_flood.requests.to_string(),
        transport_flood.throttled.to_string(),
        transport_flood.rejected.to_string(),
        transport_flood.identities.to_string(),
    ]);
    transport_table
        .note("the guard keys on the peer IP, so fresh connections (fresh ports) share one bucket");

    Result {
        arms,
        flood: (attempts, accepted, final_count),
        transport_flood,
        tables: vec![table, flood_table, transport_table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_dedup_cuts_sybil_accounts() {
        let result = run(&Config::quick());
        let open = &result.arms[0];
        let dedup = &result.arms[1];
        assert_eq!(open.accounts, 40, "open door admits everyone");
        assert_eq!(dedup.accounts, 8, "dedup caps accounts at the attacker's e-mail supply");
    }

    #[test]
    fn puzzles_charge_for_accounts() {
        let result = run(&Config::quick());
        assert_eq!(result.arms[1].hash_cost, 0);
        assert!(result.arms[2].hash_cost > 0, "puzzle arm must cost hashes");
    }

    #[test]
    fn defended_arms_distort_less() {
        let result = run(&Config::quick());
        let open = result.arms[0].mean_distortion.unwrap_or(0.0);
        let defended = result.arms[2].mean_distortion.unwrap_or(0.0);
        assert!(
            defended <= open + 1e-9,
            "defences must not increase distortion: open {open:.3}, defended {defended:.3}"
        );
    }

    #[test]
    fn vote_flooding_is_structurally_neutralised() {
        let result = run(&Config::quick());
        let (_, _, final_count) = result.flood;
        assert_eq!(final_count, 1);
    }

    #[test]
    fn reconnect_flooding_is_throttled_at_the_transport() {
        let config = Config::quick();
        let flood = run_transport_flood(&config);
        assert_eq!(flood.requests, config.transport_flood_requests);
        assert_eq!(
            flood.identities, 1,
            "all reconnects come from 127.0.0.1 and must share one bucket"
        );
        // Burst capacity passes, everything after is throttled — and the
        // client-observed count agrees with the server-side counter.
        let expected = config.transport_flood_requests - config.transport_flood_capacity as usize;
        assert_eq!(flood.throttled, expected);
        assert_eq!(flood.rejected, expected as u64);
    }
}
