#!/usr/bin/env bash
# The full verification gauntlet, in increasing order of cost:
#
#   1. cargo fmt --check            formatting
#   2. cargo clippy -D warnings     compiler-adjacent lints, all targets
#   3. softrep-lint                 the workspace's own invariant pass
#                                   (no-panic request path, clock
#                                   discipline, trust bounds, Request
#                                   exhaustiveness, plus the dataflow
#                                   passes: privacy taint, lock order,
#                                   guard-across-I/O, suppression audit —
#                                   see DESIGN.md §7 and §11). Runs in
#                                   JSON mode against the committed
#                                   baseline and fails on any NEW
#                                   diagnostic. After deliberately
#                                   accepting a finding, regenerate with
#                                   SOFTREP_LINT_BASELINE=regen.
#   4. cargo build --release        tier-1 build
#   5. cargo test                   the whole workspace
#   6. loom shards                  race detection on the server's
#                                   concurrent structures and the storage
#                                   engine's group-commit/striping protocols
#   7. crash-matrix shard           the deterministic fault-injection
#                                   harness (DESIGN.md §13): enumerate
#                                   every durable-effect site of the
#                                   canonical workload and re-recover at
#                                   each one, fixed seed first, then one
#                                   randomized-seed exploration (the seed
#                                   is echoed so failures replay exactly)
#   8. concurrency bench smoke      the store_concurrent/group-commit
#                                   benches at a tiny workload — a
#                                   does-it-run check, not a measurement
#   9. /metrics endpoint smoke      boots the release serverd on
#                                   ephemeral ports and asserts the
#                                   Prometheus exposition is well formed
#                                   and carries the key series
#  10. replication shard           the WAL-shipping differential suite
#                                   (fault proxy + replica restart →
#                                   byte-identical stores), a randomized
#                                   run of the gapless-prefix property,
#                                   and a binary-level primary+2-replica
#                                   topology probed over real sockets
#                                   (not-primary redirects, repl metrics)
#  11. ThreadSanitizer shard        opt-in: CI_TSAN=1 and a nightly
#                                   toolchain; skipped otherwise
#
# Usage: ./ci.sh            (from the workspace root)
#        CI_TSAN=1 ./ci.sh  (also run the sanitizer shard)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==== %s ====\n' "$*"; }

step "1/13 cargo fmt --check"
cargo fmt --all -- --check

step "2/13 cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

step "3/13 softrep-lint (baseline diff)"
# Fails on diagnostics not present in lint-baseline.json. To accept a
# finding on purpose (rare; prefer an inline reasoned suppression):
#   SOFTREP_LINT_BASELINE=regen cargo run -q -p softrep-lint -- . --baseline lint-baseline.json
cargo run --offline -q -p softrep-lint -- . --format json --baseline lint-baseline.json --stats

step "4/13 cargo build --release"
cargo build --offline --release

step "5/13 cargo test (workspace)"
cargo test --offline -q --workspace

step "6/13 epoll front-end shard (transport + chaos under the reactor)"
# The workspace run already exercises both front ends; this shard pins
# the socket-level suites to the epoll reactor alone so a regression in
# the event loop cannot hide behind a thread-pool pass (the differential
# sweep inside chaos.rs still compares both).
SOFTREP_FRONTEND=epoll cargo test --offline -q -p softrep-server \
    --test transport --test chaos

step "7/13 property shard (fixed + randomized seed)"
# Fixed seed: reproduces the checked-in baseline exactly.
SOFTREP_PROP_SEED=0x5eedcafe SOFTREP_PROP_CASES=200 \
    cargo test --offline -q --test properties
# Randomized seed: each CI run explores fresh workloads. The harness
# prints the seed on failure, so any counterexample is replayable.
PROP_SEED="$(date +%s)"
printf 'property shard randomized seed: %s\n' "$PROP_SEED"
SOFTREP_PROP_SEED="$PROP_SEED" SOFTREP_PROP_CASES=100 \
    cargo test --offline -q --test properties

step "8/13 loom race-detection shards (server + storage)"
cargo test --offline -q -p softrep-server --features loom --test loom
cargo test --offline -q -p softrep-storage --features loom --test loom

step "9/13 crash-matrix shard (fixed + randomized seed)"
# Fixed seed: the canonical schedule, byte-for-byte reproducible. Time-
# budgeted: the whole matrix is sub-second, so a multi-minute run means a
# recovery loop is wedged — fail fast rather than eat the CI budget.
timeout 300 env SOFTREP_CRASH_SEED=0xC0FFEE \
    cargo test --offline -q --test crash_matrix
# Randomized seed: every CI run explores a fresh workload shape. The seed
# is printed here and baked into every assertion message, so a failure is
# replayable with SOFTREP_CRASH_SEED=<seed>.
CRASH_SEED="$(date +%s)"
printf 'crash-matrix randomized seed: %s\n' "$CRASH_SEED"
timeout 300 env SOFTREP_CRASH_SEED="$CRASH_SEED" \
    cargo test --offline -q --test crash_matrix randomized

step "10/13 concurrency bench smoke"
# Tiny workload: proves the mixed reader/writer and group-commit benches
# still run, without spending CI minutes on real measurements.
SOFTREP_BENCH_SMOKE=1 cargo bench --offline -p softrep-bench --bench storage_bench \
    | grep -E 'store_concurrent|store_group_commit' || {
        echo "concurrency benches produced no output"; exit 1; }

step "11/13 /metrics endpoint smoke"
# Boot the real binary on ephemeral ports, fetch /metrics over a raw
# socket (no curl dependency), and assert the exposition is well formed
# and carries the key series (DESIGN.md §12). Uses the release binary
# from step 4.
SMOKE_DATA="$(mktemp -d)"
./target/release/softrep-serverd --data "$SMOKE_DATA" --pepper ci-smoke \
    --puzzle-difficulty 0 --frontend epoll --proto 127.0.0.1:0 --web 127.0.0.1:0 \
    >"$SMOKE_DATA/serverd.log" 2>&1 &
SMOKE_PID=$!
cleanup_smoke() { kill "$SMOKE_PID" 2>/dev/null || true; rm -rf "$SMOKE_DATA"; }
trap cleanup_smoke EXIT
WEB_ADDR=""
for _ in $(seq 1 50); do
    WEB_ADDR="$(sed -n 's#.*web       http://##p' "$SMOKE_DATA/serverd.log" | head -n1)"
    [ -n "$WEB_ADDR" ] && break
    sleep 0.2
done
[ -n "$WEB_ADDR" ] || {
    echo "serverd never announced its web address:"
    cat "$SMOKE_DATA/serverd.log"; exit 1; }
exec 3<>"/dev/tcp/${WEB_ADDR%:*}/${WEB_ADDR##*:}"
printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\n\r\n' "$WEB_ADDR" >&3
METRICS="$(cat <&3)"
exec 3<&- 3>&-
printf '%s\n' "$METRICS" | head -n1 | grep -q '200 OK' || {
    echo "/metrics did not answer 200:"; printf '%s\n' "$METRICS" | head -n5; exit 1; }
printf '%s\n' "$METRICS" | grep -q 'Content-Type: text/plain; version=0.0.4' || {
    echo "/metrics served the wrong content type"; exit 1; }
for series in \
    softrep_request_latency_us_p99 \
    softrep_store_fsync_us_count \
    softrep_store_group_commit_depth_count \
    softrep_agg_lag_seconds \
    softrep_flood_rejected_total \
    softrep_flood_evicted_total \
    softrep_server_requests_served_total \
    softrep_reactor_open_connections \
    softrep_reactor_wakeups_total \
    softrep_reactor_ready_events_count \
    softrep_reactor_dispatch_us_count \
    softrep_repl_lag_entries \
    softrep_repl_lag_bytes \
    softrep_repl_applied_seq \
    softrep_repl_reconnects_total; do
    printf '%s\n' "$METRICS" | grep -q "^$series " || {
        echo "/metrics is missing series $series"; exit 1; }
done
# Every body line is `# comment` or `name numeric-value`.
printf '%s\n' "$METRICS" | sed '1,/^\r*$/d' | tr -d '\r' | awk '
    /^#/ || /^$/ { next }
    NF != 2 || $2 !~ /^[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
        print "malformed exposition line: " $0; bad = 1 }
    END { exit bad }' || exit 1
cleanup_smoke
trap - EXIT
echo "/metrics smoke passed ($WEB_ADDR)"

step "12/13 replication shard (fault sweep + primary/2-replica topology)"
# Half one: the in-process differential suite — 10k mixed writes through
# a byte-cutting fault proxy plus a replica restart must converge to
# byte-identical stores (DESIGN.md §15) — and a randomized-seed run of
# the gapless-prefix property (the fixed-seed run is in step 7).
cargo test --offline -q -p softrep-server --test repl
REPL_SEED="$(date +%s)"
printf 'replication property randomized seed: %s\n' "$REPL_SEED"
SOFTREP_PROP_SEED="$REPL_SEED" SOFTREP_PROP_CASES=40 \
    cargo test --offline -q --test properties replica_watermark

# Half two: the release binary in both roles. Boot a primary and two
# replicas on ephemeral ports, then assert over the real sockets that
# (a) each replica redirects the write path with `not-primary` naming
# the primary, (b) the primary still serves it, and (c) each replica's
# /metrics carries all four softrep_repl_* series.
REPL_DATA="$(mktemp -d)"
REPL_PIDS=()
cleanup_repl() {
    for pid in "${REPL_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$REPL_DATA"
}
trap cleanup_repl EXIT

boot_serverd() { # name, extra args...
    local name="$1"; shift
    mkdir -p "$REPL_DATA/$name"
    ./target/release/softrep-serverd --data "$REPL_DATA/$name" --pepper ci-repl \
        --puzzle-difficulty 0 --proto 127.0.0.1:0 --web 127.0.0.1:0 "$@" \
        >"$REPL_DATA/$name.log" 2>&1 &
    REPL_PIDS+=("$!")
}

serverd_addr() { # name, column (protocol|web)
    local addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n "s#.*$2  *##p" "$REPL_DATA/$1.log" | sed 's#^http://##' | head -n1)"
        [ -n "$addr" ] && break
        sleep 0.2
    done
    [ -n "$addr" ] || {
        echo "serverd '$1' never announced its $2 address:" >&2
        cat "$REPL_DATA/$1.log" >&2; exit 1; }
    printf '%s' "$addr"
}

# One framed protocol round trip: u32 BE length + UTF-8 XML, by hand.
proto_call() { # addr, xml-body → response body on stdout
    local addr="$1" body="$2" len b0 b1 b2 b3 rlen
    len=${#body}
    exec 4<>"/dev/tcp/${addr%:*}/${addr##*:}"
    printf "$(printf '\\%03o\\%03o\\%03o\\%03o' \
        $((len >> 24 & 255)) $((len >> 16 & 255)) $((len >> 8 & 255)) $((len & 255)))" >&4
    printf '%s' "$body" >&4
    # dd bs=1 reads exactly N bytes from the socket; head -c may over-read
    # into its stdio buffer and eat the start of the body.
    read -r b0 b1 b2 b3 <<<"$(dd bs=1 count=4 2>/dev/null <&4 | od -An -tu1 | tr -s ' ')" || true
    rlen=$((b0 * 16777216 + b1 * 65536 + b2 * 256 + b3))
    [ "$rlen" -gt 0 ] && [ "$rlen" -le 1048576 ] || {
        echo "bogus response frame length $rlen from $addr" >&2; exit 1; }
    dd bs=1 count="$rlen" 2>/dev/null <&4
    exec 4<&- 4>&-
}

GET_PUZZLE='<?xml version="1.0" encoding="UTF-8"?><request type="get-puzzle"/>'
boot_serverd primary
PRIMARY_PROTO="$(serverd_addr primary protocol)"
boot_serverd replica1 --replica-of "$PRIMARY_PROTO"
boot_serverd replica2 --replica-of "$PRIMARY_PROTO"

proto_call "$PRIMARY_PROTO" "$GET_PUZZLE" | grep -q 'status="puzzle"' || {
    echo "primary did not serve the write path"; exit 1; }
for name in replica1 replica2; do
    RADDR="$(serverd_addr "$name" protocol)"
    RESP="$(proto_call "$RADDR" "$GET_PUZZLE")"
    printf '%s' "$RESP" | grep -q 'status="not-primary"' || {
        echo "$name did not redirect the write path: $RESP"; exit 1; }
    printf '%s' "$RESP" | grep -qF "$PRIMARY_PROTO" || {
        echo "$name's redirect does not name the primary: $RESP"; exit 1; }
    RWEB="$(serverd_addr "$name" web)"
    exec 4<>"/dev/tcp/${RWEB%:*}/${RWEB##*:}"
    printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\n\r\n' "$RWEB" >&4
    RMETRICS="$(cat <&4)"
    exec 4<&- 4>&-
    for series in softrep_repl_lag_entries softrep_repl_lag_bytes \
        softrep_repl_applied_seq softrep_repl_reconnects_total; do
        printf '%s\n' "$RMETRICS" | grep -q "^$series " || {
            echo "$name /metrics is missing series $series"; exit 1; }
    done
done
cleanup_repl
trap - EXIT
echo "replication shard passed (primary + 2 replicas at $PRIMARY_PROTO)"

nightly_has_tsan_deps() {
    rustup toolchain list 2>/dev/null | grep -q nightly \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src.*(installed)'
}

if [ "${CI_TSAN:-0}" = "1" ]; then
    if nightly_has_tsan_deps; then
        step "13/13 ThreadSanitizer shard (nightly)"
        # TSan needs the std rebuilt with the sanitizer; restrict to the
        # concurrent server structures to keep the shard's runtime sane.
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test --offline -q -p softrep-server \
            -Z build-std --target x86_64-unknown-linux-gnu \
            session flood puzzle_gate pool stats
    else
        step "13/13 ThreadSanitizer shard SKIPPED (needs nightly + rust-src for -Z build-std)"
    fi
else
    step "13/13 ThreadSanitizer shard SKIPPED (set CI_TSAN=1 to enable)"
fi

printf '\nci.sh: all enabled shards passed\n'
