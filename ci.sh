#!/usr/bin/env bash
# The full verification gauntlet, in increasing order of cost:
#
#   1. cargo fmt --check            formatting
#   2. cargo clippy -D warnings     compiler-adjacent lints, all targets
#   3. softrep-lint                 the workspace's own invariant pass
#                                   (no-panic request path — handler,
#                                   TCP front end, pool, stats — clock
#                                   discipline, trust bounds, Request
#                                   exhaustiveness — see DESIGN.md §7)
#   4. cargo build --release        tier-1 build
#   5. cargo test                   the whole workspace
#   6. loom shard                   race detection on the server's
#                                   concurrent structures
#   7. ThreadSanitizer shard        opt-in: CI_TSAN=1 and a nightly
#                                   toolchain; skipped otherwise
#
# Usage: ./ci.sh            (from the workspace root)
#        CI_TSAN=1 ./ci.sh  (also run the sanitizer shard)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==== %s ====\n' "$*"; }

step "1/8 cargo fmt --check"
cargo fmt --all -- --check

step "2/8 cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

step "3/8 softrep-lint"
cargo run --offline -q -p softrep-lint

step "4/8 cargo build --release"
cargo build --offline --release

step "5/8 cargo test (workspace)"
cargo test --offline -q --workspace

step "6/8 property shard (fixed + randomized seed)"
# Fixed seed: reproduces the checked-in baseline exactly.
SOFTREP_PROP_SEED=0x5eedcafe SOFTREP_PROP_CASES=200 \
    cargo test --offline -q --test properties
# Randomized seed: each CI run explores fresh workloads. The harness
# prints the seed on failure, so any counterexample is replayable.
PROP_SEED="$(date +%s)"
printf 'property shard randomized seed: %s\n' "$PROP_SEED"
SOFTREP_PROP_SEED="$PROP_SEED" SOFTREP_PROP_CASES=100 \
    cargo test --offline -q --test properties

step "7/8 loom race-detection shard"
cargo test --offline -q -p softrep-server --features loom --test loom

nightly_has_tsan_deps() {
    rustup toolchain list 2>/dev/null | grep -q nightly \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src.*(installed)'
}

if [ "${CI_TSAN:-0}" = "1" ]; then
    if nightly_has_tsan_deps; then
        step "8/8 ThreadSanitizer shard (nightly)"
        # TSan needs the std rebuilt with the sanitizer; restrict to the
        # concurrent server structures to keep the shard's runtime sane.
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test --offline -q -p softrep-server \
            -Z build-std --target x86_64-unknown-linux-gnu \
            session flood puzzle_gate pool stats
    else
        step "8/8 ThreadSanitizer shard SKIPPED (needs nightly + rust-src for -Z build-std)"
    fi
else
    step "8/8 ThreadSanitizer shard SKIPPED (set CI_TSAN=1 to enable)"
fi

printf '\nci.sh: all enabled shards passed\n'
