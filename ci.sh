#!/usr/bin/env bash
# The full verification gauntlet, in increasing order of cost:
#
#   1. cargo fmt --check            formatting
#   2. cargo clippy -D warnings     compiler-adjacent lints, all targets
#   3. softrep-lint                 the workspace's own invariant pass
#                                   (no-panic request path, clock
#                                   discipline, trust bounds, Request
#                                   exhaustiveness, plus the dataflow
#                                   passes: privacy taint, lock order,
#                                   guard-across-I/O, suppression audit —
#                                   see DESIGN.md §7 and §11). Runs in
#                                   JSON mode against the committed
#                                   baseline and fails on any NEW
#                                   diagnostic. After deliberately
#                                   accepting a finding, regenerate with
#                                   SOFTREP_LINT_BASELINE=regen.
#   4. cargo build --release        tier-1 build
#   5. cargo test                   the whole workspace
#   6. loom shards                  race detection on the server's
#                                   concurrent structures and the storage
#                                   engine's group-commit/striping protocols
#   7. concurrency bench smoke      the store_concurrent/group-commit
#                                   benches at a tiny workload — a
#                                   does-it-run check, not a measurement
#   8. ThreadSanitizer shard        opt-in: CI_TSAN=1 and a nightly
#                                   toolchain; skipped otherwise
#
# Usage: ./ci.sh            (from the workspace root)
#        CI_TSAN=1 ./ci.sh  (also run the sanitizer shard)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==== %s ====\n' "$*"; }

step "1/9 cargo fmt --check"
cargo fmt --all -- --check

step "2/9 cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

step "3/9 softrep-lint (baseline diff)"
# Fails on diagnostics not present in lint-baseline.json. To accept a
# finding on purpose (rare; prefer an inline reasoned suppression):
#   SOFTREP_LINT_BASELINE=regen cargo run -q -p softrep-lint -- . --baseline lint-baseline.json
cargo run --offline -q -p softrep-lint -- . --format json --baseline lint-baseline.json --stats

step "4/9 cargo build --release"
cargo build --offline --release

step "5/9 cargo test (workspace)"
cargo test --offline -q --workspace

step "6/9 property shard (fixed + randomized seed)"
# Fixed seed: reproduces the checked-in baseline exactly.
SOFTREP_PROP_SEED=0x5eedcafe SOFTREP_PROP_CASES=200 \
    cargo test --offline -q --test properties
# Randomized seed: each CI run explores fresh workloads. The harness
# prints the seed on failure, so any counterexample is replayable.
PROP_SEED="$(date +%s)"
printf 'property shard randomized seed: %s\n' "$PROP_SEED"
SOFTREP_PROP_SEED="$PROP_SEED" SOFTREP_PROP_CASES=100 \
    cargo test --offline -q --test properties

step "7/9 loom race-detection shards (server + storage)"
cargo test --offline -q -p softrep-server --features loom --test loom
cargo test --offline -q -p softrep-storage --features loom --test loom

step "8/9 concurrency bench smoke"
# Tiny workload: proves the mixed reader/writer and group-commit benches
# still run, without spending CI minutes on real measurements.
SOFTREP_BENCH_SMOKE=1 cargo bench --offline -p softrep-bench --bench storage_bench \
    | grep -E 'store_concurrent|store_group_commit' || {
        echo "concurrency benches produced no output"; exit 1; }

nightly_has_tsan_deps() {
    rustup toolchain list 2>/dev/null | grep -q nightly \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src.*(installed)'
}

if [ "${CI_TSAN:-0}" = "1" ]; then
    if nightly_has_tsan_deps; then
        step "9/9 ThreadSanitizer shard (nightly)"
        # TSan needs the std rebuilt with the sanitizer; restrict to the
        # concurrent server structures to keep the shard's runtime sane.
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test --offline -q -p softrep-server \
            -Z build-std --target x86_64-unknown-linux-gnu \
            session flood puzzle_gate pool stats
    else
        step "9/9 ThreadSanitizer shard SKIPPED (needs nightly + rust-src for -Z build-std)"
    fi
else
    step "9/9 ThreadSanitizer shard SKIPPED (set CI_TSAN=1 to enable)"
fi

printf '\nci.sh: all enabled shards passed\n'
