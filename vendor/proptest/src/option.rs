//! `Option` strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Strategy for `Option<T>`; see [`of`].
pub struct OptionStrategy<S>(S);

/// Generate `None` about a quarter of the time and `Some` otherwise,
/// mirroring `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_generates_both_variants() {
        let mut rng = TestRng::for_test("option-of");
        let strategy = of(0u8..10);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                None => saw_none = true,
                Some(v) => {
                    assert!(v < 10);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }
}
