//! Sampling strategies over concrete collections.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::TestRng;
use rand::seq::index;

/// Strategy yielding order-preserving subsequences; see [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

/// Pick a random subsequence of `values` (order preserved) whose length is
/// in `size`, mirroring `proptest::sample::subsequence`.
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence { values, size: size.into() }
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let want = self.size.pick(rng).min(self.values.len());
        let mut picked = index::sample(rng, self.values.len(), want).into_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequence_preserves_order_and_uniqueness() {
        let mut rng = TestRng::for_test("sample-subsequence");
        let values: Vec<u32> = (0..10).collect();
        let strategy = subsequence(values, 0..7);
        for _ in 0..100 {
            let sub = strategy.generate(&mut rng);
            assert!(sub.len() < 7);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "not ordered: {sub:?}");
        }
    }
}
