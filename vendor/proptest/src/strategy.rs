//! The [`Strategy`] trait and combinators (generate-only; no shrinking).

use crate::TestRng;
use rand::Rng;

/// How many times a filtered strategy retries before giving up.
const FILTER_RETRIES: usize = 10_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `reason` labels give-up panics.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erase for heterogeneous composition (e.g. [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after {FILTER_RETRIES} rejections: {}", self.reason);
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait ObjStrategy<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjStrategy<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn ObjStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Weighted choice among boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one nonzero weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return arm.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll exceeded total weight");
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals act as regex-subset strategies generating matching
/// strings, mirroring proptest's `&str` strategy.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-unit-tests")
    }

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = rng();
        let strategy = (1u8..10, 0usize..=3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = rng();
        let strategy = crate::prop_oneof![
            1 => Just(0u8),
            0 => Just(1u8),
        ];
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut rng), 0);
        }
    }

    #[test]
    fn filter_retries_until_satisfied() {
        let mut rng = rng();
        let strategy = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn regex_literal_generates_matching_strings() {
        let mut rng = rng();
        let strategy = "[a-z]{2,4}";
        for _ in 0..100 {
            let s = strategy.generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad chars: {s:?}");
        }
    }
}
