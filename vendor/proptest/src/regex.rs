//! Generator for the regex subset used by string-literal strategies.
//!
//! Supported syntax: literal characters, `\x` escapes, character classes
//! `[...]` with ranges (`a-z`) and escapes (a trailing or leading `-` is a
//! literal), and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded
//! forms cap at 8 repetitions). Groups, alternation and anchors are not
//! supported — the workspace's patterns don't use them — and an
//! unsupported pattern panics loudly rather than generating junk.

use crate::TestRng;
use rand::Rng;

/// One generatable unit: a set of candidate chars plus a repetition range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Cap for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_CAP: usize = 8;

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}"));
                i += 1;
                vec![unescape(c)]
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex construct {:?} in strategy {pattern:?}", chars[i])
            }
            '.' => {
                i += 1;
                // Any printable ASCII is a faithful-enough universe for `.`.
                (0x20u8..0x7f).map(char::from).collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Parse the body of a `[...]` class starting at `start` (past the `[`).
/// Returns the candidate set and the index just past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], start: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    let mut i = start;
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are not supported in regex strategy {pattern:?}"
    );
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}")),
            )
        } else {
            chars[i]
        };
        // `a-z` range, unless the `-` is the final char of the class.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
            let hi = chars[i + 2];
            assert!(c <= hi, "inverted range {c}-{hi} in regex strategy {pattern:?}");
            for v in c..=hi {
                set.push(v);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated class in regex strategy {pattern:?}");
    assert!(!set.is_empty(), "empty class in regex strategy {pattern:?}");
    (set, i + 1)
}

/// Parse an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close =
                chars[i..].iter().position(|&c| c == '}').unwrap_or_else(|| {
                    panic!("unterminated quantifier in regex strategy {pattern:?}")
                }) + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in regex strategy {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("regex-unit-tests")
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z0-9.:-]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".:-".contains(c)));
        }
    }

    #[test]
    fn literal_tail_after_class() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching("[a-z]{1,12}@[a-z]{1,8}\\.com", &mut rng);
            let (local, rest) = s.split_once('@').expect("has @");
            assert!(!local.is_empty() && local.len() <= 12);
            assert!(rest.ends_with(".com"));
        }
    }

    #[test]
    fn exact_repetition() {
        let mut rng = rng();
        for _ in 0..50 {
            assert_eq!(generate_matching("[a-f0-9]{8}", &mut rng).len(), 8);
        }
    }

    #[test]
    fn quote_class_from_robustness_suite() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z0-9<>&\"' ]{1,24}", &mut rng);
            assert!(!s.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn groups_are_rejected() {
        let mut rng = rng();
        generate_matching("(ab)+", &mut rng);
    }
}
