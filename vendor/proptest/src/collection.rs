//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Element-count range for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length falls in `size`, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Generate maps with up to `size` entries (duplicate generated keys
/// coalesce, exactly as upstream), mirroring
/// `proptest::collection::btree_map`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = std::collections::BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = TestRng::for_test("collection-vec");
        let strategy = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_respects_bound() {
        let mut rng = TestRng::for_test("collection-map");
        let strategy = btree_map(0u8..50, any::<bool>(), 0..10);
        for _ in 0..100 {
            let m = strategy.generate(&mut rng);
            assert!(m.len() < 10);
        }
    }
}
