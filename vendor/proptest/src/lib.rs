//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset of proptest that its test suites use: the [`proptest!`]
//! macro (both `name: Type` and `name in strategy` parameter forms, plus
//! `#![proptest_config(..)]`), `prop_assert*`/`prop_assume!`,
//! [`prop_oneof!`], `any::<T>()`, tuple/range/regex-literal strategies,
//! `prop_map`/`prop_filter`, and the `collection`/`option`/`sample`
//! strategy modules.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (SipHash with fixed keys), so failures reproduce exactly;
//!   set `PROPTEST_SEED_OFFSET` to explore different streams and
//!   `PROPTEST_CASES` to override the case count globally.
//! * Regex strategies support the subset used here: character classes with
//!   ranges and escapes, literals, and `{m}`/`{m,n}`/`?`/`*`/`+` repetition.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;

mod regex;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Items `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Random source threaded through every strategy.
pub struct TestRng(StdRng);

impl TestRng {
    fn for_test(name: &str) -> TestRng {
        use std::hash::{Hash, Hasher};
        // DefaultHasher uses fixed keys, so the seed — and therefore the
        // whole generated stream — is stable across runs and machines.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        let offset: u64 =
            std::env::var("PROPTEST_SEED_OFFSET").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
        TestRng(StdRng::seed_from_u64(hasher.finish() ^ offset))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection (`prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Build a failure (`prop_assert*`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-case outcome used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Knobs for a `proptest!` block, mirroring `proptest::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drive one property: generate cases until `config.cases` succeed.
///
/// Called by the expansion of [`proptest!`]; not part of upstream's public
/// API surface but harmless to expose.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases);
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cases.saturating_mul(20).max(1024),
                    "proptest '{name}': too many rejected cases ({rejected}) — \
                     prop_assume! condition is almost never satisfied"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing cases: {msg}");
            }
        }
    }
}

/// Property-test entry macro; see the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expand each `fn` inside a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run($cfg, stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let mut __proptest_case = || -> $crate::TestCaseResult {
                    { $body }
                    ::core::result::Result::Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Internal: bind one `proptest!` parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident in $strategy:expr) => {
        let mut $name = $crate::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident, mut $name:ident in $strategy:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident: $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident, $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident: $ty:ty) => {
        let mut $name = $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident, mut $name:ident: $ty:ty, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// immediately) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, reporting both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, reporting the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Choose among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(({ $weight } as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}
