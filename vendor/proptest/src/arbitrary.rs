//! `any::<T>()`: the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Mix uniform bits with boundary values so off-by-one bugs
                // surface without shrinking support.
                match rng.gen_range(0u8..8) {
                    0 => 0 as $ty,
                    1 => <$ty>::MAX,
                    2 => <$ty>::MIN,
                    3 => 1 as $ty,
                    _ => rng.gen::<$ty>(),
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.gen::<u128>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.gen_range(0u8..10) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            // Raw bit patterns cover subnormals and extreme exponents.
            6 | 7 => f64::from_bits(rng.gen::<u64>()),
            _ => (rng.gen::<f64>() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        rng.gen::<char>()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..32);
        (0..len).map(|_| rng.gen::<char>()).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.gen_range(0usize..64);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_hits_boundary_values() {
        let mut rng = TestRng::for_test("arbitrary-boundaries");
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..200 {
            let v: u32 = any::<u32>().generate(&mut rng);
            saw_zero |= v == 0;
            saw_max |= v == u32::MAX;
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn arbitrary_strings_are_valid_unicode() {
        let mut rng = TestRng::for_test("arbitrary-strings");
        for _ in 0..100 {
            let s = String::arbitrary(&mut rng);
            assert!(s.chars().count() <= 32);
        }
    }
}
