//! Offline vendored stand-in for the `bytes` crate: the subset the storage
//! codec uses. `Bytes` here is an immutable `Vec<u8>` wrapper (upstream's
//! refcounted zero-copy slicing is not needed by this workspace), and
//! `Buf`/`BufMut` carry only the integer/slice accessors the codec calls.

use std::ops::Deref;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(std::sync::Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(std::sync::Arc::new(self.0))
    }

    /// Reserve at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advance past `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side append operations over a growable sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
