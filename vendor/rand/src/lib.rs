//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and an empty registry cache,
//! so the workspace vendors the *API subset it actually uses* of each
//! external crate. This crate mirrors `rand 0.8`'s surface — `RngCore`,
//! `Rng`, `SeedableRng`, `StdRng`, `OsRng`, slice/sequence helpers and the
//! weighted-index distribution — backed by a xoshiro256++ generator. It is
//! a faithful-enough reimplementation for simulations and tests; it is not
//! the upstream crate and makes no cryptographic claims (the workspace's
//! own `softrep-crypto` primitives never rely on it for secrecy).

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Fill `dest` with random data (byte slices only in this stand-in).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        random_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform f64 in [0, 1) from 53 random mantissa bits.
pub(crate) fn random_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in [0, bound) via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + random_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty inclusive range");
        start + random_f64(rng) * (end - start)
    }
}

/// Generators constructible from a fixed seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
