//! Concrete generators: the seedable [`StdRng`] and the entropy-backed
//! [`OsRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — fast, high-quality, and seedable; the workspace's default
/// deterministic generator (upstream `StdRng` is ChaCha12; simulations here
/// only need statistical quality plus reproducibility, not a CSPRNG).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn step(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAB0E_9B89_83F9_19CF, 0x5]
        }
        StdRng { s }
    }
}

/// Operating-system entropy source.
///
/// Upstream reads `getrandom`; this stand-in derives entropy from the
/// standard library's `RandomState` (which itself is OS-entropy seeded) and
/// then streams xoshiro output from it. Statistically random, per-process
/// unique, not cryptographically hardened — which matches how the workspace
/// uses it (salts, registration tokens in tests and the demo binary).
#[derive(Clone, Copy, Debug, Default)]
pub struct OsRng;

impl RngCore for OsRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        use std::cell::RefCell;
        use std::hash::{BuildHasher, Hasher};

        thread_local! {
            static STATE: RefCell<StdRng> = RefCell::new({
                // Two independent RandomState instances give 128 bits of
                // OS-seeded entropy to expand into the full xoshiro state.
                let a = std::collections::hash_map::RandomState::new().build_hasher().finish();
                let b = std::collections::hash_map::RandomState::new().build_hasher().finish();
                StdRng::seed_from_u64(a ^ b.rotate_left(32))
            });
        }
        STATE.with(|s| s.borrow_mut().next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_rng_produces_varied_output() {
        let mut rng = OsRng;
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
