//! Distributions: the [`Standard`] uniform distribution behind `Rng::gen`
//! and the weighted categorical [`WeightedIndex`].

use crate::Rng;

/// Types that can be sampled given a generator.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for a type (`Rng::gen`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<char> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> char {
        // Uniform over Unicode scalar values: skip the surrogate gap.
        loop {
            let v = (rng.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

/// Error building a [`WeightedIndex`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// Every weight was zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Categorical distribution over indices `0..n`, each drawn with
/// probability proportional to its weight.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from an iterator of non-negative weights.
    pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.into_weight();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let target: f64 = crate::random_f64(rng) * self.total;
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&target).expect("finite")) {
            // Exact hit on a cumulative boundary belongs to the next bucket.
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Weight types accepted by [`WeightedIndex::new`].
pub trait IntoWeight {
    /// Convert to `f64` mass.
    fn into_weight(self) -> f64;
}

macro_rules! impl_into_weight {
    ($($ty:ty),*) => {$(
        impl IntoWeight for $ty {
            fn into_weight(self) -> f64 {
                self as f64
            }
        }
        impl IntoWeight for &$ty {
            fn into_weight(self) -> f64 {
                *self as f64
            }
        }
    )*};
}
impl_into_weight!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_respects_mass() {
        let dist = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert_eq!(WeightedIndex::new(Vec::<f64>::new()).unwrap_err(), WeightedError::NoItem);
        assert_eq!(WeightedIndex::new([-1.0]).unwrap_err(), WeightedError::InvalidWeight);
        assert_eq!(WeightedIndex::new([0.0, 0.0]).unwrap_err(), WeightedError::AllWeightsZero);
    }

    #[test]
    fn weighted_index_covers_all_buckets() {
        let dist = WeightedIndex::new([1u32, 1, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
