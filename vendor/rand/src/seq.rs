//! Sequence helpers: random choice, shuffling, and index sampling without
//! replacement.

use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Pick up to `amount` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::SampleRange::sample_single(0..self.len(), rng)])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        let picked = index::sample(rng, self.len(), amount);
        picked.into_vec().into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, crate::SampleRange::sample_single(0..=i, rng));
        }
    }
}

/// Index sampling, mirroring `rand::seq::index`.
pub mod index {
    use crate::RngCore;

    /// A set of sampled indices.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consume into a plain `Vec<usize>`.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterate the sampled indices.
        pub fn iter(&self) -> std::slice::Iter<'_, usize> {
            self.0.iter()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when nothing was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Sample `amount` distinct indices from `0..length`, uniformly.
    ///
    /// Panics if `amount > length`, matching upstream behaviour.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} indices from a range of length {length}");
        // Partial Fisher–Yates over an index table; O(length) memory is fine
        // at the population sizes the simulations use.
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = crate::SampleRange::sample_single(i..length, rng);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        IndexVec(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        let picked = index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let picked: Vec<&i32> = v.choose_multiple(&mut rng, 10).collect();
        assert_eq!(picked.len(), 3);
    }
}
