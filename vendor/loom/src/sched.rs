//! The cooperative scheduler behind [`model`](crate::model).
//!
//! One OS thread per model thread, but only ONE is ever runnable: every
//! participant blocks on a condvar until the scheduler hands it the run
//! token. At each yield point (injected by the vendored `parking_lot`
//! before lock acquisition and after release, and callable explicitly) the
//! running thread picks the next runnable thread with a seeded PRNG and
//! parks itself. Re-running the closure under many seeds explores many
//! distinct interleavings; the decision trace of each run is recorded so
//! callers can assert how many schedules were actually distinct.
//!
//! This is bounded randomized systematic testing, not loom's exhaustive
//! DPOR exploration — the honest trade-off for a network-less build
//! environment. Racy outcomes still differ across seeds, which is what the
//! race-detection tests assert on.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on scheduling decisions per run; beyond this we declare a
/// livelock rather than hang the test suite.
const MAX_STEPS: usize = 1_000_000;

/// Idle sentinel: no thread currently holds the run token.
const NOBODY: usize = usize::MAX;

thread_local! {
    static CTX: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
}

pub(crate) struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

struct State {
    /// `true` while the thread is registered and not yet finished.
    alive: Vec<bool>,
    current: usize,
    rng: u64,
    trace: Vec<usize>,
    steps: usize,
}

impl Shared {
    fn new(seed: u64) -> Self {
        Shared {
            state: Mutex::new(State {
                alive: Vec::new(),
                current: NOBODY,
                // splitmix64 of the seed so consecutive seeds diverge fast.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E_ED0F_1CE5,
                trace: Vec::new(),
                steps: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register(&self) -> usize {
        let mut st = self.locked();
        st.alive.push(true);
        st.alive.len() - 1
    }

    /// Pick the next runnable thread and wake it. Must hold the lock.
    fn dispatch(&self, st: &mut State) {
        let runnable: Vec<usize> =
            st.alive.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| i).collect();
        if runnable.is_empty() {
            st.current = NOBODY;
            return;
        }
        // xorshift step of the schedule PRNG.
        let mut x = st.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        st.rng = x;
        let next = runnable[(x % runnable.len() as u64) as usize];
        st.current = next;
        st.trace.push(next);
        st.steps += 1;
        assert!(
            st.steps < MAX_STEPS,
            "loom model exceeded {MAX_STEPS} scheduling steps: likely livelock"
        );
        self.cv.notify_all();
    }

    /// Give up the run token and block until it comes back to `me`.
    fn yield_from(&self, me: usize) {
        let mut st = self.locked();
        debug_assert!(st.alive[me], "finished thread yielded");
        self.dispatch(&mut st);
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block until the scheduler first selects `me`.
    fn wait_until_scheduled(&self, me: usize) {
        let mut st = self.locked();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Mark `me` finished and hand the token to someone else.
    fn finish(&self, me: usize) {
        let mut st = self.locked();
        st.alive[me] = false;
        self.dispatch(&mut st);
    }

    fn is_finished(&self, id: usize) -> bool {
        !self.locked().alive[id]
    }

    fn live_count(&self) -> usize {
        self.locked().alive.iter().filter(|&&a| a).count()
    }
}

/// Current thread's model context, if it is participating in one.
fn ctx() -> Option<(Arc<Shared>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread runs under an active model.
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Scheduling point: under a model, hand the token to a (seeded-) randomly
/// chosen runnable thread. Outside a model this is a no-op.
pub fn yield_point() {
    if let Some((shared, me)) = ctx() {
        shared.yield_from(me);
    }
}

/// Model-thread handle, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    shared: Arc<Shared>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// Wait (cooperatively) for the thread to finish and take its result.
    pub fn join(self) -> std::thread::Result<T> {
        let me = ctx().map(|(_, id)| id);
        while !self.shared.is_finished(self.id) {
            match me {
                Some(_) => yield_point(),
                None => std::thread::yield_now(),
            }
        }
        self.inner.join()
    }
}

/// Spawn a thread that participates in the ambient model.
///
/// Panics when called outside [`model`]; mirrors `loom::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (shared, _) = ctx().expect("loom::thread::spawn called outside loom::model");
    let id = shared.register();
    let shared_child = Arc::clone(&shared);
    let inner = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared_child), id)));
            shared_child.wait_until_scheduled(id);
            let result = catch_unwind(AssertUnwindSafe(f));
            CTX.with(|c| *c.borrow_mut() = None);
            shared_child.finish(id);
            match result {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
        .expect("spawn loom model thread");
    // Branch point: the child may run before the spawner continues.
    yield_point();
    JoinHandle { inner, shared, id }
}

/// Summary of one [`model_with_stats`] exploration.
#[derive(Clone, Debug)]
pub struct ModelStats {
    /// Number of seeds (schedules) executed.
    pub schedules: usize,
    /// Number of distinct scheduling-decision traces observed.
    pub distinct_schedules: usize,
}

fn configured_schedules() -> usize {
    std::env::var("LOOM_SCHEDULES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Run `f` under many seeded schedules. Panics propagate (failing the
/// test), mirroring `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with_stats(f);
}

/// [`model`], but also report how many distinct interleavings were seen.
pub fn model_with_stats<F>(f: F) -> ModelStats
where
    F: Fn(),
{
    assert!(!is_active(), "nested loom::model is not supported");
    let schedules = configured_schedules();
    let mut traces: BTreeSet<Vec<usize>> = BTreeSet::new();
    for seed in 0..schedules as u64 {
        let shared = Arc::new(Shared::new(seed));
        let me = shared.register();
        {
            let mut st = shared.locked();
            st.current = me;
        }
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), me)));
        let result = catch_unwind(AssertUnwindSafe(&f));
        // Drain stragglers so their OS threads exit before the next seed;
        // on panic we still drain to avoid leaking blocked threads.
        while shared.live_count() > 1 {
            shared.yield_from(me);
        }
        shared.finish(me);
        CTX.with(|c| *c.borrow_mut() = None);
        if let Err(payload) = result {
            resume_unwind(payload);
        }
        traces.insert(shared.locked().trace.clone());
    }
    ModelStats { schedules, distinct_schedules: traces.len() }
}
