//! Offline vendored stand-in for `loom`: bounded randomized exploration of
//! thread interleavings.
//!
//! Real loom exhaustively enumerates interleavings with DPOR; that crate is
//! unavailable in this network-less build environment, so this stand-in
//! implements the next best thing — a cooperative scheduler that fully
//! serialises model threads and re-runs the body under many seeds, forcing
//! a different interleaving each time. The vendored `parking_lot` calls
//! [`hook::yield_point`] around every lock operation, so production
//! structures (session table, flood guard, puzzle gate, WAL) get
//! scheduling points injected without any code changes.
//!
//! ```ignore
//! loom::model(|| {
//!     let table = Arc::new(SessionTable::new(...));
//!     let a = loom::thread::spawn({ let t = table.clone(); move || t.insert(...) });
//!     a.join().unwrap();
//!     assert!(table.invariant_holds());
//! });
//! ```

mod sched;

pub use sched::{model, model_with_stats, ModelStats};

/// Instrumentation hooks used by the vendored sync primitives.
pub mod hook {
    /// True when the calling thread is running inside [`crate::model`].
    pub use crate::sched::is_active;
    /// Scheduling point; no-op outside a model.
    pub use crate::sched::yield_point;
}

/// Model-aware threading, mirroring `loom::thread`.
pub mod thread {
    pub use crate::sched::{spawn, JoinHandle};

    /// Explicit scheduling point, mirroring `loom::thread::yield_now`.
    pub fn yield_now() {
        crate::sched::yield_point();
    }
}

/// Model-aware sync primitives, mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Mutex whose lock operations are scheduling points.
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// New unlocked mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire, yielding to the scheduler while contended.
        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            if crate::hook::is_active() {
                loop {
                    crate::hook::yield_point();
                    match self.0.try_lock() {
                        Ok(guard) => return Ok(guard),
                        Err(std::sync::TryLockError::Poisoned(p)) => return Err(p),
                        Err(std::sync::TryLockError::WouldBlock) => continue,
                    }
                }
            }
            self.0.lock()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_body_under_every_seed() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let stats = super::model_with_stats(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), stats.schedules);
    }

    #[test]
    fn two_increment_threads_explore_distinct_schedules() {
        let stats = super::model_with_stats(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        super::thread::yield_now();
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
        assert!(
            stats.distinct_schedules >= 3,
            "expected >=3 distinct interleavings, saw {}",
            stats.distinct_schedules
        );
    }

    #[test]
    fn model_mutex_serialises_critical_sections() {
        super::model(|| {
            let shared = Arc::new(super::sync::Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let s = Arc::clone(&shared);
                    super::thread::spawn(move || {
                        let mut guard = s.lock().unwrap();
                        *guard += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*shared.lock().unwrap(), 3);
        });
    }
}
