//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, throughput annotation, `black_box`
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! calibrated wall-clock measurement loop instead of upstream's full
//! statistical pipeline. Good enough to compare hot paths release-to-
//! release on the same machine; not a replacement for real criterion's
//! outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings and sink; the `c` in `fn bench(c: &mut Criterion)`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, self.sample_size, self.measurement_time, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// Work-rate annotation attached to measurements.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of related benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Override the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// End the group (upstream flushes reports here; we report per-bench).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that runs long enough to measure.
    let mut iterations = 1u64;
    loop {
        let mut b = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iterations >= 1 << 24 {
            break;
        }
        iterations = iterations.saturating_mul(4);
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut samples = 0u32;
    while samples < sample_size as u32 && total < measurement_time {
        let mut b = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
        samples += 1;
    }
    let per_iter_ns = best.as_nanos() as f64 / iterations as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            format!(" ({:.1} MiB/s)", bytes as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / (per_iter_ns / 1e9))
        }
    });
    println!(
        "bench {id:<50} {per_iter_ns:>12.1} ns/iter{} [{} samples x {} iters]",
        rate.unwrap_or_default(),
        samples,
        iterations
    );
}

/// Collect benchmark functions into a named group, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 2, measurement_time: Duration::from_millis(5) };
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Bytes(64));
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
