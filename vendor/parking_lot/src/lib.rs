//! Offline vendored stand-in for `parking_lot`.
//!
//! Mirrors the `parking_lot 0.12` API subset the workspace uses: `Mutex`
//! and `RwLock` that return guards directly (no `Result`, no poisoning).
//! Backed by `std::sync`; a panicked holder's poison flag is swallowed,
//! matching parking_lot's no-poisoning semantics.
//!
//! Every lock operation is also a scheduling point for the vendored `loom`
//! model checker: before each acquisition attempt and after each release
//! the thread yields to the model scheduler (a no-op outside
//! `loom::model`). That lets the race-detection tests in
//! `crates/server/tests/loom.rs` interleave production structures without
//! any `#[cfg(loom)]` forks in the production code itself.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(ManuallyDrop<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if loom::hook::is_active() {
            loop {
                loom::hook::yield_point();
                match self.0.try_lock() {
                    Ok(guard) => return MutexGuard(ManuallyDrop::new(guard)),
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return MutexGuard(ManuallyDrop::new(p.into_inner()))
                    }
                    Err(std::sync::TryLockError::WouldBlock) => continue,
                }
            }
        }
        MutexGuard(ManuallyDrop::new(self.0.lock().unwrap_or_else(|p| p.into_inner())))
    }

    /// Acquire only if free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        loom::hook::yield_point();
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(ManuallyDrop::new(guard))),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard(ManuallyDrop::new(p.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release first, then yield: the post-release state becomes visible
        // to whichever thread the model scheduler picks next.
        // SAFETY: the inner guard is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.0) };
        loom::hook::yield_point();
    }
}

/// Reader-writer lock; `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>);

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if loom::hook::is_active() {
            loop {
                loom::hook::yield_point();
                match self.0.try_read() {
                    Ok(guard) => return RwLockReadGuard(ManuallyDrop::new(guard)),
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return RwLockReadGuard(ManuallyDrop::new(p.into_inner()))
                    }
                    Err(std::sync::TryLockError::WouldBlock) => continue,
                }
            }
        }
        RwLockReadGuard(ManuallyDrop::new(self.0.read().unwrap_or_else(|p| p.into_inner())))
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if loom::hook::is_active() {
            loop {
                loom::hook::yield_point();
                match self.0.try_write() {
                    Ok(guard) => return RwLockWriteGuard(ManuallyDrop::new(guard)),
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return RwLockWriteGuard(ManuallyDrop::new(p.into_inner()))
                    }
                    Err(std::sync::TryLockError::WouldBlock) => continue,
                }
            }
        }
        RwLockWriteGuard(ManuallyDrop::new(self.0.write().unwrap_or_else(|p| p.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the inner guard is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.0) };
        loom::hook::yield_point();
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the inner guard is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.0) };
        loom::hook::yield_point();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
