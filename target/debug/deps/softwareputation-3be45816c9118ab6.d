/root/repo/target/debug/deps/softwareputation-3be45816c9118ab6.d: src/lib.rs

/root/repo/target/debug/deps/softwareputation-3be45816c9118ab6: src/lib.rs

src/lib.rs:
