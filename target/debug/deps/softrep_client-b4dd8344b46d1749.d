/root/repo/target/debug/deps/softrep_client-b4dd8344b46d1749.d: crates/client/src/lib.rs crates/client/src/client.rs crates/client/src/connector.rs crates/client/src/lists.rs crates/client/src/os.rs crates/client/src/prompt.rs crates/client/src/signature.rs

/root/repo/target/debug/deps/libsoftrep_client-b4dd8344b46d1749.rlib: crates/client/src/lib.rs crates/client/src/client.rs crates/client/src/connector.rs crates/client/src/lists.rs crates/client/src/os.rs crates/client/src/prompt.rs crates/client/src/signature.rs

/root/repo/target/debug/deps/libsoftrep_client-b4dd8344b46d1749.rmeta: crates/client/src/lib.rs crates/client/src/client.rs crates/client/src/connector.rs crates/client/src/lists.rs crates/client/src/os.rs crates/client/src/prompt.rs crates/client/src/signature.rs

crates/client/src/lib.rs:
crates/client/src/client.rs:
crates/client/src/connector.rs:
crates/client/src/lists.rs:
crates/client/src/os.rs:
crates/client/src/prompt.rs:
crates/client/src/signature.rs:
