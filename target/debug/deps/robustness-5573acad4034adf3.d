/root/repo/target/debug/deps/robustness-5573acad4034adf3.d: crates/server/tests/robustness.rs

/root/repo/target/debug/deps/robustness-5573acad4034adf3: crates/server/tests/robustness.rs

crates/server/tests/robustness.rs:
