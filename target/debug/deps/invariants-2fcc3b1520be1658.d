/root/repo/target/debug/deps/invariants-2fcc3b1520be1658.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-2fcc3b1520be1658: tests/invariants.rs

tests/invariants.rs:
