/root/repo/target/debug/deps/softrep_crypto-0f7337b3a9bfde64.d: crates/crypto/src/lib.rs crates/crypto/src/bignum.rs crates/crypto/src/digest.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/ots.rs crates/crypto/src/puzzle.rs crates/crypto/src/rsa.rs crates/crypto/src/salted.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/stream.rs

/root/repo/target/debug/deps/libsoftrep_crypto-0f7337b3a9bfde64.rlib: crates/crypto/src/lib.rs crates/crypto/src/bignum.rs crates/crypto/src/digest.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/ots.rs crates/crypto/src/puzzle.rs crates/crypto/src/rsa.rs crates/crypto/src/salted.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/stream.rs

/root/repo/target/debug/deps/libsoftrep_crypto-0f7337b3a9bfde64.rmeta: crates/crypto/src/lib.rs crates/crypto/src/bignum.rs crates/crypto/src/digest.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/ots.rs crates/crypto/src/puzzle.rs crates/crypto/src/rsa.rs crates/crypto/src/salted.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/stream.rs

crates/crypto/src/lib.rs:
crates/crypto/src/bignum.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/ots.rs:
crates/crypto/src/puzzle.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/salted.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/stream.rs:
