/root/repo/target/debug/deps/pseudonyms-e9219e24658e7219.d: tests/pseudonyms.rs

/root/repo/target/debug/deps/pseudonyms-e9219e24658e7219: tests/pseudonyms.rs

tests/pseudonyms.rs:
