/root/repo/target/debug/deps/model-9a42fa3be22cc308.d: crates/storage/tests/model.rs

/root/repo/target/debug/deps/model-9a42fa3be22cc308: crates/storage/tests/model.rs

crates/storage/tests/model.rs:
