/root/repo/target/debug/deps/softrep_proto-4ef1c0b871f5c115.d: crates/proto/src/lib.rs crates/proto/src/framing.rs crates/proto/src/message.rs crates/proto/src/xml.rs

/root/repo/target/debug/deps/softrep_proto-4ef1c0b871f5c115: crates/proto/src/lib.rs crates/proto/src/framing.rs crates/proto/src/message.rs crates/proto/src/xml.rs

crates/proto/src/lib.rs:
crates/proto/src/framing.rs:
crates/proto/src/message.rs:
crates/proto/src/xml.rs:
