/root/repo/target/debug/deps/durability-9c17a61fe1a362b4.d: tests/durability.rs

/root/repo/target/debug/deps/durability-9c17a61fe1a362b4: tests/durability.rs

tests/durability.rs:
