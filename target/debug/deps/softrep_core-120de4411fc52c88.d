/root/repo/target/debug/deps/softrep_core-120de4411fc52c88.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bootstrap.rs crates/core/src/clock.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/extensions.rs crates/core/src/identity.rs crates/core/src/model.rs crates/core/src/moderation.rs crates/core/src/taxonomy.rs crates/core/src/trust.rs

/root/repo/target/debug/deps/softrep_core-120de4411fc52c88: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bootstrap.rs crates/core/src/clock.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/extensions.rs crates/core/src/identity.rs crates/core/src/model.rs crates/core/src/moderation.rs crates/core/src/taxonomy.rs crates/core/src/trust.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/bootstrap.rs:
crates/core/src/clock.rs:
crates/core/src/db.rs:
crates/core/src/error.rs:
crates/core/src/extensions.rs:
crates/core/src/identity.rs:
crates/core/src/model.rs:
crates/core/src/moderation.rs:
crates/core/src/taxonomy.rs:
crates/core/src/trust.rs:
