/root/repo/target/debug/deps/concurrency-e779ca18358b8ac7.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-e779ca18358b8ac7: tests/concurrency.rs

tests/concurrency.rs:
