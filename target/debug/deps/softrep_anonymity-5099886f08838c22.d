/root/repo/target/debug/deps/softrep_anonymity-5099886f08838c22.d: crates/anonymity/src/lib.rs crates/anonymity/src/circuit.rs crates/anonymity/src/directory.rs crates/anonymity/src/network.rs crates/anonymity/src/relay.rs

/root/repo/target/debug/deps/softrep_anonymity-5099886f08838c22: crates/anonymity/src/lib.rs crates/anonymity/src/circuit.rs crates/anonymity/src/directory.rs crates/anonymity/src/network.rs crates/anonymity/src/relay.rs

crates/anonymity/src/lib.rs:
crates/anonymity/src/circuit.rs:
crates/anonymity/src/directory.rs:
crates/anonymity/src/network.rs:
crates/anonymity/src/relay.rs:
