/root/repo/target/debug/deps/softrep_baseline-54f94d447dd06ceb.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs crates/baseline/src/lab.rs crates/baseline/src/legal.rs crates/baseline/src/signature_db.rs

/root/repo/target/debug/deps/libsoftrep_baseline-54f94d447dd06ceb.rlib: crates/baseline/src/lib.rs crates/baseline/src/engine.rs crates/baseline/src/lab.rs crates/baseline/src/legal.rs crates/baseline/src/signature_db.rs

/root/repo/target/debug/deps/libsoftrep_baseline-54f94d447dd06ceb.rmeta: crates/baseline/src/lib.rs crates/baseline/src/engine.rs crates/baseline/src/lab.rs crates/baseline/src/legal.rs crates/baseline/src/signature_db.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
crates/baseline/src/lab.rs:
crates/baseline/src/legal.rs:
crates/baseline/src/signature_db.rs:
