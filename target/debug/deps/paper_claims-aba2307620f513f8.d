/root/repo/target/debug/deps/paper_claims-aba2307620f513f8.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-aba2307620f513f8: tests/paper_claims.rs

tests/paper_claims.rs:
