/root/repo/target/debug/deps/softrep_storage-408df43300c26bc2.d: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/codec.rs crates/storage/src/crc.rs crates/storage/src/error.rs crates/storage/src/index.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/softrep_storage-408df43300c26bc2: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/codec.rs crates/storage/src/crc.rs crates/storage/src/error.rs crates/storage/src/index.rs crates/storage/src/store.rs crates/storage/src/table.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/batch.rs:
crates/storage/src/codec.rs:
crates/storage/src/crc.rs:
crates/storage/src/error.rs:
crates/storage/src/index.rs:
crates/storage/src/store.rs:
crates/storage/src/table.rs:
crates/storage/src/wal.rs:
