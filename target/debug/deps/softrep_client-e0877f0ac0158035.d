/root/repo/target/debug/deps/softrep_client-e0877f0ac0158035.d: crates/client/src/lib.rs crates/client/src/client.rs crates/client/src/connector.rs crates/client/src/lists.rs crates/client/src/os.rs crates/client/src/prompt.rs crates/client/src/signature.rs

/root/repo/target/debug/deps/softrep_client-e0877f0ac0158035: crates/client/src/lib.rs crates/client/src/client.rs crates/client/src/connector.rs crates/client/src/lists.rs crates/client/src/os.rs crates/client/src/prompt.rs crates/client/src/signature.rs

crates/client/src/lib.rs:
crates/client/src/client.rs:
crates/client/src/connector.rs:
crates/client/src/lists.rs:
crates/client/src/os.rs:
crates/client/src/prompt.rs:
crates/client/src/signature.rs:
