/root/repo/target/debug/deps/softrep_baseline-1b9cd13ca8fffcd3.d: crates/baseline/src/lib.rs crates/baseline/src/engine.rs crates/baseline/src/lab.rs crates/baseline/src/legal.rs crates/baseline/src/signature_db.rs

/root/repo/target/debug/deps/softrep_baseline-1b9cd13ca8fffcd3: crates/baseline/src/lib.rs crates/baseline/src/engine.rs crates/baseline/src/lab.rs crates/baseline/src/legal.rs crates/baseline/src/signature_db.rs

crates/baseline/src/lib.rs:
crates/baseline/src/engine.rs:
crates/baseline/src/lab.rs:
crates/baseline/src/legal.rs:
crates/baseline/src/signature_db.rs:
