/root/repo/target/debug/deps/softwareputation-5475ad591163d057.d: src/lib.rs

/root/repo/target/debug/deps/libsoftwareputation-5475ad591163d057.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoftwareputation-5475ad591163d057.rmeta: src/lib.rs

src/lib.rs:
