/root/repo/target/debug/deps/softrep_analysis-64e09df822c2012b.d: crates/analysis/src/lib.rs crates/analysis/src/markers.rs crates/analysis/src/sandbox.rs crates/analysis/src/service.rs

/root/repo/target/debug/deps/softrep_analysis-64e09df822c2012b: crates/analysis/src/lib.rs crates/analysis/src/markers.rs crates/analysis/src/sandbox.rs crates/analysis/src/service.rs

crates/analysis/src/lib.rs:
crates/analysis/src/markers.rs:
crates/analysis/src/sandbox.rs:
crates/analysis/src/service.rs:
