/root/repo/target/debug/deps/softrep_server-bdb6c1e2a715624e.d: crates/server/src/lib.rs crates/server/src/flood.rs crates/server/src/handler.rs crates/server/src/puzzle_gate.rs crates/server/src/session.rs crates/server/src/tcp.rs crates/server/src/web.rs

/root/repo/target/debug/deps/softrep_server-bdb6c1e2a715624e: crates/server/src/lib.rs crates/server/src/flood.rs crates/server/src/handler.rs crates/server/src/puzzle_gate.rs crates/server/src/session.rs crates/server/src/tcp.rs crates/server/src/web.rs

crates/server/src/lib.rs:
crates/server/src/flood.rs:
crates/server/src/handler.rs:
crates/server/src/puzzle_gate.rs:
crates/server/src/session.rs:
crates/server/src/tcp.rs:
crates/server/src/web.rs:
