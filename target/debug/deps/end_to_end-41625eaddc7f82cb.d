/root/repo/target/debug/deps/end_to_end-41625eaddc7f82cb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-41625eaddc7f82cb: tests/end_to_end.rs

tests/end_to_end.rs:
