/root/repo/target/debug/deps/softrep_analysis-4aa9d0f0bb289e35.d: crates/analysis/src/lib.rs crates/analysis/src/markers.rs crates/analysis/src/sandbox.rs crates/analysis/src/service.rs

/root/repo/target/debug/deps/libsoftrep_analysis-4aa9d0f0bb289e35.rlib: crates/analysis/src/lib.rs crates/analysis/src/markers.rs crates/analysis/src/sandbox.rs crates/analysis/src/service.rs

/root/repo/target/debug/deps/libsoftrep_analysis-4aa9d0f0bb289e35.rmeta: crates/analysis/src/lib.rs crates/analysis/src/markers.rs crates/analysis/src/sandbox.rs crates/analysis/src/service.rs

crates/analysis/src/lib.rs:
crates/analysis/src/markers.rs:
crates/analysis/src/sandbox.rs:
crates/analysis/src/service.rs:
