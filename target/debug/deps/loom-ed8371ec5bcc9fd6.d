/root/repo/target/debug/deps/loom-ed8371ec5bcc9fd6.d: vendor/loom/src/lib.rs vendor/loom/src/sched.rs

/root/repo/target/debug/deps/libloom-ed8371ec5bcc9fd6.rlib: vendor/loom/src/lib.rs vendor/loom/src/sched.rs

/root/repo/target/debug/deps/libloom-ed8371ec5bcc9fd6.rmeta: vendor/loom/src/lib.rs vendor/loom/src/sched.rs

vendor/loom/src/lib.rs:
vendor/loom/src/sched.rs:
