/root/repo/target/debug/deps/softrep_bench-2e08ad2f777d2fa4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsoftrep_bench-2e08ad2f777d2fa4.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsoftrep_bench-2e08ad2f777d2fa4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
