/root/repo/target/debug/deps/loom-4ee3f3840c9bddbc.d: vendor/loom/src/lib.rs vendor/loom/src/sched.rs

/root/repo/target/debug/deps/loom-4ee3f3840c9bddbc: vendor/loom/src/lib.rs vendor/loom/src/sched.rs

vendor/loom/src/lib.rs:
vendor/loom/src/sched.rs:
