/root/repo/target/debug/deps/softrep_proto-22096d46e2bf6b7a.d: crates/proto/src/lib.rs crates/proto/src/framing.rs crates/proto/src/message.rs crates/proto/src/xml.rs

/root/repo/target/debug/deps/libsoftrep_proto-22096d46e2bf6b7a.rlib: crates/proto/src/lib.rs crates/proto/src/framing.rs crates/proto/src/message.rs crates/proto/src/xml.rs

/root/repo/target/debug/deps/libsoftrep_proto-22096d46e2bf6b7a.rmeta: crates/proto/src/lib.rs crates/proto/src/framing.rs crates/proto/src/message.rs crates/proto/src/xml.rs

crates/proto/src/lib.rs:
crates/proto/src/framing.rs:
crates/proto/src/message.rs:
crates/proto/src/xml.rs:
