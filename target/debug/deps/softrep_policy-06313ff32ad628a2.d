/root/repo/target/debug/deps/softrep_policy-06313ff32ad628a2.d: crates/policy/src/lib.rs crates/policy/src/ast.rs crates/policy/src/eval.rs crates/policy/src/lexer.rs crates/policy/src/parser.rs

/root/repo/target/debug/deps/softrep_policy-06313ff32ad628a2: crates/policy/src/lib.rs crates/policy/src/ast.rs crates/policy/src/eval.rs crates/policy/src/lexer.rs crates/policy/src/parser.rs

crates/policy/src/lib.rs:
crates/policy/src/ast.rs:
crates/policy/src/eval.rs:
crates/policy/src/lexer.rs:
crates/policy/src/parser.rs:
