/root/repo/target/debug/deps/softrep_bench-b080199c381c7ca9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/softrep_bench-b080199c381c7ca9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
