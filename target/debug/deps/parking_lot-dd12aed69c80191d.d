/root/repo/target/debug/deps/parking_lot-dd12aed69c80191d.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dd12aed69c80191d.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dd12aed69c80191d.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
