/root/repo/target/debug/deps/parking_lot-863e8aec0447d6f6.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-863e8aec0447d6f6: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
