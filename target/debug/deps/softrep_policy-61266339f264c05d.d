/root/repo/target/debug/deps/softrep_policy-61266339f264c05d.d: crates/policy/src/lib.rs crates/policy/src/ast.rs crates/policy/src/eval.rs crates/policy/src/lexer.rs crates/policy/src/parser.rs

/root/repo/target/debug/deps/libsoftrep_policy-61266339f264c05d.rlib: crates/policy/src/lib.rs crates/policy/src/ast.rs crates/policy/src/eval.rs crates/policy/src/lexer.rs crates/policy/src/parser.rs

/root/repo/target/debug/deps/libsoftrep_policy-61266339f264c05d.rmeta: crates/policy/src/lib.rs crates/policy/src/ast.rs crates/policy/src/eval.rs crates/policy/src/lexer.rs crates/policy/src/parser.rs

crates/policy/src/lib.rs:
crates/policy/src/ast.rs:
crates/policy/src/eval.rs:
crates/policy/src/lexer.rs:
crates/policy/src/parser.rs:
