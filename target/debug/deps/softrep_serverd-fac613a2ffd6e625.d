/root/repo/target/debug/deps/softrep_serverd-fac613a2ffd6e625.d: src/bin/softrep_serverd.rs

/root/repo/target/debug/deps/softrep_serverd-fac613a2ffd6e625: src/bin/softrep_serverd.rs

src/bin/softrep_serverd.rs:
