/root/repo/target/debug/deps/softrep_server-a7595e652cd010b3.d: crates/server/src/lib.rs crates/server/src/flood.rs crates/server/src/handler.rs crates/server/src/puzzle_gate.rs crates/server/src/session.rs crates/server/src/tcp.rs crates/server/src/web.rs

/root/repo/target/debug/deps/libsoftrep_server-a7595e652cd010b3.rlib: crates/server/src/lib.rs crates/server/src/flood.rs crates/server/src/handler.rs crates/server/src/puzzle_gate.rs crates/server/src/session.rs crates/server/src/tcp.rs crates/server/src/web.rs

/root/repo/target/debug/deps/libsoftrep_server-a7595e652cd010b3.rmeta: crates/server/src/lib.rs crates/server/src/flood.rs crates/server/src/handler.rs crates/server/src/puzzle_gate.rs crates/server/src/session.rs crates/server/src/tcp.rs crates/server/src/web.rs

crates/server/src/lib.rs:
crates/server/src/flood.rs:
crates/server/src/handler.rs:
crates/server/src/puzzle_gate.rs:
crates/server/src/session.rs:
crates/server/src/tcp.rs:
crates/server/src/web.rs:
