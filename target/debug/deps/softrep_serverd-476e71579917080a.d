/root/repo/target/debug/deps/softrep_serverd-476e71579917080a.d: src/bin/softrep_serverd.rs

/root/repo/target/debug/deps/softrep_serverd-476e71579917080a: src/bin/softrep_serverd.rs

src/bin/softrep_serverd.rs:
