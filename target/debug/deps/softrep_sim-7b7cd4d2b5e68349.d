/root/repo/target/debug/deps/softrep_sim-7b7cd4d2b5e68349.d: crates/sim/src/lib.rs crates/sim/src/attack.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/d1_coldstart.rs crates/sim/src/experiments/d2_trust_weighting.rs crates/sim/src/experiments/d3_attacks.rs crates/sim/src/experiments/d4_trust_growth.rs crates/sim/src/experiments/d5_interruption.rs crates/sim/src/experiments/d6_baseline.rs crates/sim/src/experiments/d7_identity.rs crates/sim/src/experiments/d8_privacy.rs crates/sim/src/experiments/d9_policy.rs crates/sim/src/experiments/t1_taxonomy.rs crates/sim/src/experiments/t2_transform.rs crates/sim/src/experiments/x1_evidence.rs crates/sim/src/experiments/x2_feeds.rs crates/sim/src/experiments/x3_pseudonyms.rs crates/sim/src/harness.rs crates/sim/src/metrics.rs crates/sim/src/population.rs crates/sim/src/report.rs crates/sim/src/universe.rs

/root/repo/target/debug/deps/libsoftrep_sim-7b7cd4d2b5e68349.rlib: crates/sim/src/lib.rs crates/sim/src/attack.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/d1_coldstart.rs crates/sim/src/experiments/d2_trust_weighting.rs crates/sim/src/experiments/d3_attacks.rs crates/sim/src/experiments/d4_trust_growth.rs crates/sim/src/experiments/d5_interruption.rs crates/sim/src/experiments/d6_baseline.rs crates/sim/src/experiments/d7_identity.rs crates/sim/src/experiments/d8_privacy.rs crates/sim/src/experiments/d9_policy.rs crates/sim/src/experiments/t1_taxonomy.rs crates/sim/src/experiments/t2_transform.rs crates/sim/src/experiments/x1_evidence.rs crates/sim/src/experiments/x2_feeds.rs crates/sim/src/experiments/x3_pseudonyms.rs crates/sim/src/harness.rs crates/sim/src/metrics.rs crates/sim/src/population.rs crates/sim/src/report.rs crates/sim/src/universe.rs

/root/repo/target/debug/deps/libsoftrep_sim-7b7cd4d2b5e68349.rmeta: crates/sim/src/lib.rs crates/sim/src/attack.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/d1_coldstart.rs crates/sim/src/experiments/d2_trust_weighting.rs crates/sim/src/experiments/d3_attacks.rs crates/sim/src/experiments/d4_trust_growth.rs crates/sim/src/experiments/d5_interruption.rs crates/sim/src/experiments/d6_baseline.rs crates/sim/src/experiments/d7_identity.rs crates/sim/src/experiments/d8_privacy.rs crates/sim/src/experiments/d9_policy.rs crates/sim/src/experiments/t1_taxonomy.rs crates/sim/src/experiments/t2_transform.rs crates/sim/src/experiments/x1_evidence.rs crates/sim/src/experiments/x2_feeds.rs crates/sim/src/experiments/x3_pseudonyms.rs crates/sim/src/harness.rs crates/sim/src/metrics.rs crates/sim/src/population.rs crates/sim/src/report.rs crates/sim/src/universe.rs

crates/sim/src/lib.rs:
crates/sim/src/attack.rs:
crates/sim/src/experiments/mod.rs:
crates/sim/src/experiments/d1_coldstart.rs:
crates/sim/src/experiments/d2_trust_weighting.rs:
crates/sim/src/experiments/d3_attacks.rs:
crates/sim/src/experiments/d4_trust_growth.rs:
crates/sim/src/experiments/d5_interruption.rs:
crates/sim/src/experiments/d6_baseline.rs:
crates/sim/src/experiments/d7_identity.rs:
crates/sim/src/experiments/d8_privacy.rs:
crates/sim/src/experiments/d9_policy.rs:
crates/sim/src/experiments/t1_taxonomy.rs:
crates/sim/src/experiments/t2_transform.rs:
crates/sim/src/experiments/x1_evidence.rs:
crates/sim/src/experiments/x2_feeds.rs:
crates/sim/src/experiments/x3_pseudonyms.rs:
crates/sim/src/harness.rs:
crates/sim/src/metrics.rs:
crates/sim/src/population.rs:
crates/sim/src/report.rs:
crates/sim/src/universe.rs:
