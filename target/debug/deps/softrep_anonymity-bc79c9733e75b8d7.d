/root/repo/target/debug/deps/softrep_anonymity-bc79c9733e75b8d7.d: crates/anonymity/src/lib.rs crates/anonymity/src/circuit.rs crates/anonymity/src/directory.rs crates/anonymity/src/network.rs crates/anonymity/src/relay.rs

/root/repo/target/debug/deps/libsoftrep_anonymity-bc79c9733e75b8d7.rlib: crates/anonymity/src/lib.rs crates/anonymity/src/circuit.rs crates/anonymity/src/directory.rs crates/anonymity/src/network.rs crates/anonymity/src/relay.rs

/root/repo/target/debug/deps/libsoftrep_anonymity-bc79c9733e75b8d7.rmeta: crates/anonymity/src/lib.rs crates/anonymity/src/circuit.rs crates/anonymity/src/directory.rs crates/anonymity/src/network.rs crates/anonymity/src/relay.rs

crates/anonymity/src/lib.rs:
crates/anonymity/src/circuit.rs:
crates/anonymity/src/directory.rs:
crates/anonymity/src/network.rs:
crates/anonymity/src/relay.rs:
