/root/repo/target/debug/deps/fuzz-8c79b0b2be6f0aee.d: crates/proto/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-8c79b0b2be6f0aee: crates/proto/tests/fuzz.rs

crates/proto/tests/fuzz.rs:
