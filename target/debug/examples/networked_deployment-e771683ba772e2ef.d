/root/repo/target/debug/examples/networked_deployment-e771683ba772e2ef.d: examples/networked_deployment.rs

/root/repo/target/debug/examples/networked_deployment-e771683ba772e2ef: examples/networked_deployment.rs

examples/networked_deployment.rs:
