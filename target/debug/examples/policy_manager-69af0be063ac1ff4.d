/root/repo/target/debug/examples/policy_manager-69af0be063ac1ff4.d: examples/policy_manager.rs

/root/repo/target/debug/examples/policy_manager-69af0be063ac1ff4: examples/policy_manager.rs

examples/policy_manager.rs:
