/root/repo/target/debug/examples/attack_and_defense-b8774c1cffb4cae4.d: examples/attack_and_defense.rs

/root/repo/target/debug/examples/attack_and_defense-b8774c1cffb4cae4: examples/attack_and_defense.rs

examples/attack_and_defense.rs:
