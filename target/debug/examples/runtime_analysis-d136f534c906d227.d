/root/repo/target/debug/examples/runtime_analysis-d136f534c906d227.d: examples/runtime_analysis.rs

/root/repo/target/debug/examples/runtime_analysis-d136f534c906d227: examples/runtime_analysis.rs

examples/runtime_analysis.rs:
