/root/repo/target/debug/examples/_d6probe-5c36565b787c4c73.d: examples/_d6probe.rs

/root/repo/target/debug/examples/_d6probe-5c36565b787c4c73: examples/_d6probe.rs

examples/_d6probe.rs:
