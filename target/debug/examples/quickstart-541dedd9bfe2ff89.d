/root/repo/target/debug/examples/quickstart-541dedd9bfe2ff89.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-541dedd9bfe2ff89: examples/quickstart.rs

examples/quickstart.rs:
