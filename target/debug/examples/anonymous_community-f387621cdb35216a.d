/root/repo/target/debug/examples/anonymous_community-f387621cdb35216a.d: examples/anonymous_community.rs

/root/repo/target/debug/examples/anonymous_community-f387621cdb35216a: examples/anonymous_community.rs

examples/anonymous_community.rs:
